//! A std-only scoped work-stealing thread pool.
//!
//! The parallel checking runtime needs exactly three things from a pool:
//!
//! * **scoped tasks** that may borrow the caller's stack (trajectories,
//!   propagators, output slices), joined before the scope returns;
//! * **work stealing**, because checking workloads are irregular — one
//!   formula of a batch may cost a hundred times the others, and a blocked
//!   Kolmogorov integration spawns column blocks of uneven sparsity;
//! * **determinism-friendly dispatch**: the pool never merges results
//!   itself. Tasks write to disjoint, pre-indexed slots, so the caller's
//!   merge order is fixed regardless of execution order and the output is
//!   bitwise independent of the thread count.
//!
//! No external dependencies: the workspace must build offline. The
//! implementation is a classic design — one deque per worker, LIFO pop on
//! the owner, FIFO steal by everyone else, a single condvar for sleep and
//! scope-completion signalling — plus an inline fast path: a pool built
//! with `threads <= 1` executes every task on the calling thread at spawn
//! time, so the serial path runs the *same code* in the same order with no
//! synchronization at all.
//!
//! The scope-owning thread is itself an execution lane: while waiting for
//! its tasks it pops and steals like a worker ("helping"), which is what
//! makes nested scopes (a pool task opening another scope on the same
//! pool) deadlock-free.
//!
//! [`PoolStats`] counts executed tasks per lane and total busy time, which
//! the CLI surfaces behind `--stats`.

pub mod shard;

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A heap task with its lifetime erased; see [`Scope::spawn`] for why this
/// is sound.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// `(pool id, worker index)` of the pool worker running this thread,
    /// if any. Lets spawns and helpers find their home deque, and keeps
    /// two coexisting pools from pushing into each other's queues.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

struct Shared {
    /// One deque per worker thread.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Queued-but-not-yet-claimed task count (wakeup hint).
    ready: AtomicUsize,
    /// Round-robin cursor for spawns from non-worker threads.
    next_queue: AtomicUsize,
    /// Guards the shutdown flag; paired with `cv` for sleeping workers and
    /// waiting scope owners.
    sleep: Mutex<bool>,
    cv: Condvar,
    /// Tasks executed per lane: slot 0 is the caller lane (scope owners
    /// helping), slots 1.. are the workers.
    lane_tasks: Vec<AtomicU64>,
    /// Nanoseconds spent executing tasks, per lane (same layout).
    lane_busy_ns: Vec<AtomicU64>,
}

impl Shared {
    fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Queue slot of the current thread if it is a worker of this pool.
    fn home(self: &Arc<Self>) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((pool, idx)) if pool == self.id() => Some(idx),
            _ => None,
        })
    }

    fn push(self: &Arc<Self>, task: Task) {
        let idx = self
            .home()
            .unwrap_or_else(|| self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len());
        self.queues[idx].lock().unwrap().push_back(task);
        self.ready.fetch_add(1, Ordering::SeqCst);
        // Notify under the sleep lock so a worker checking `ready` before
        // waiting cannot miss the signal.
        let _guard = self.sleep.lock().unwrap();
        self.cv.notify_all();
    }

    /// Pops from the home deque (LIFO) or steals from the others (FIFO).
    fn find_task(&self, home: Option<usize>) -> Option<Task> {
        if let Some(h) = home {
            if let Some(task) = self.queues[h].lock().unwrap().pop_back() {
                self.ready.fetch_sub(1, Ordering::SeqCst);
                return Some(task);
            }
        }
        let n = self.queues.len();
        let start = home.map_or(0, |h| h + 1);
        for off in 0..n {
            let q = (start + off) % n;
            if Some(q) == home {
                continue;
            }
            if let Some(task) = self.queues[q].lock().unwrap().pop_front() {
                self.ready.fetch_sub(1, Ordering::SeqCst);
                return Some(task);
            }
        }
        None
    }

    /// Runs one task, attributing it to the given stats lane.
    fn run_task(&self, lane: usize, task: Task) {
        let start = Instant::now();
        task();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.lane_busy_ns[lane].fetch_add(ns, Ordering::Relaxed);
        self.lane_tasks[lane].fetch_add(1, Ordering::Relaxed);
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.id(), index))));
    loop {
        if let Some(task) = shared.find_task(Some(index)) {
            shared.run_task(index + 1, task);
            continue;
        }
        let guard = shared.sleep.lock().unwrap();
        if *guard {
            return;
        }
        if shared.ready.load(Ordering::SeqCst) > 0 {
            continue;
        }
        let guard = shared.cv.wait(guard).unwrap();
        if *guard {
            return;
        }
    }
}

/// Bookkeeping of one [`ThreadPool::scope`] invocation.
struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap();
        slot.get_or_insert(payload);
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
///
/// Mirrors [`std::thread::scope`]: tasks may borrow anything that outlives
/// the scope and are guaranteed to have finished when `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    /// Invariance over 'scope, exactly as in `std::thread::Scope`.
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on the pool. With no workers (a pool built for one
    /// thread) the task runs inline, immediately, on the calling thread —
    /// the serial reference path.
    ///
    /// A panicking task does not abort its siblings: the first payload is
    /// kept and re-thrown from [`ThreadPool::scope`] after every task of
    /// the scope has finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let state = Arc::clone(&self.state);
        if self.pool.workers == 0 {
            let lane_start = Instant::now();
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.store_panic(payload);
            }
            let shared = &self.pool.shared;
            let ns = u64::try_from(lane_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shared.lane_busy_ns[0].fetch_add(ns, Ordering::Relaxed);
            shared.lane_tasks[0].fetch_add(1, Ordering::Relaxed);
            return;
        }
        state.pending.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.pool.shared);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.store_panic(payload);
            }
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last task of the scope: wake the waiting owner.
                let _guard = shared.sleep.lock().unwrap();
                shared.cv.notify_all();
            }
        });
        // SAFETY: only the lifetime is erased. The task is guaranteed to
        // run before `ThreadPool::scope` returns — the owner waits for
        // `pending == 0` even when its closure panics — so every borrow
        // with lifetime 'scope outlives the task.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task)
        };
        self.pool.shared.push(task);
    }
}

/// Snapshot of a pool's execution counters; see [`ThreadPool::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolStats {
    /// Execution lanes: workers plus the scope-owning caller.
    pub threads: usize,
    /// Tasks executed per lane. Slot 0 is the caller lane (inline spawns
    /// and scope owners helping while they wait); slots 1.. are workers.
    pub tasks_per_thread: Vec<u64>,
    /// Total tasks executed.
    pub total_tasks: u64,
    /// Total time lanes spent executing tasks.
    pub busy: Duration,
    /// Wall-clock age of the pool.
    pub elapsed: Duration,
    /// `busy / (threads × elapsed)`: the fraction of the pool's capacity
    /// that actually ran tasks.
    pub utilization: f64,
}

/// A scoped work-stealing thread pool. See the [module docs](self).
///
/// # Example
///
/// ```
/// let pool = mfcsl_pool::ThreadPool::new(4);
/// let mut squares = vec![0u64; 32];
/// pool.scope(|s| {
///     for (i, slot) in squares.iter_mut().enumerate() {
///         s.spawn(move || *slot = (i as u64) * (i as u64));
///     }
/// });
/// assert_eq!(squares[7], 49);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    created: Instant,
}

impl ThreadPool {
    /// Creates a pool with `threads` execution lanes in total: the calling
    /// thread plus `threads - 1` workers. `threads <= 1` creates no
    /// workers at all — every task then runs inline at its spawn site.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let lanes = threads.max(1);
        let workers = lanes - 1;
        let shared = Arc::new(Shared {
            queues: (0..workers.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            ready: AtomicUsize::new(0),
            next_queue: AtomicUsize::new(0),
            sleep: Mutex::new(false),
            cv: Condvar::new(),
            lane_tasks: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            lane_busy_ns: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mfcsl-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawning pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            workers,
            created: Instant::now(),
        }
    }

    /// Creates a pool sized to the machine's available parallelism.
    #[must_use]
    pub fn with_default_parallelism() -> Self {
        ThreadPool::new(default_parallelism())
    }

    /// Total execution lanes (workers + the scope-owning caller); the `N`
    /// of `--threads N`.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers + 1
    }

    /// Runs `f` with a [`Scope`] whose tasks may borrow the surrounding
    /// stack, and returns only once every spawned task has finished.
    ///
    /// The calling thread helps execute tasks while it waits. If any task
    /// panicked, the first payload is re-thrown here (after all tasks
    /// completed); a panic in `f` itself is re-thrown likewise.
    pub fn scope<'env, F, T>(&'env self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
            }),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait_scope(&scope.state);
        if let Some(payload) = scope.state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Maps `f` over `0..n` on the pool and collects results in index
    /// order. The merge order is fixed by construction, so the output is
    /// identical at any thread count (given `f` is a pure function of its
    /// index).
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        self.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let f = &f;
                s.spawn(move || *slot = Some(f(i)));
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("scope joined every task"))
            .collect()
    }

    /// Splits `data` into chunks of `chunk` elements and runs
    /// `f(start_index, chunk)` for each on the pool. Chunks are disjoint
    /// `&mut` slices, so tasks cannot observe each other regardless of
    /// execution order.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk = chunk.max(1);
        self.scope(|s| {
            for (b, slice) in data.chunks_mut(chunk).enumerate() {
                let f = &f;
                s.spawn(move || f(b * chunk, slice));
            }
        });
    }

    /// Helps execute tasks until the scope's pending count reaches zero.
    fn wait_scope(&self, state: &ScopeState) {
        let shared = &self.shared;
        let home = shared.home();
        while state.pending.load(Ordering::SeqCst) > 0 {
            if let Some(task) = shared.find_task(home) {
                // Attribute helped tasks to the caller lane, or to the
                // worker's own lane for nested scopes on a worker thread.
                shared.run_task(home.map_or(0, |h| h + 1), task);
                continue;
            }
            let guard = shared.sleep.lock().unwrap();
            if state.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            if shared.ready.load(Ordering::SeqCst) > 0 {
                continue;
            }
            // Timed wait as a belt-and-braces guard: completion is
            // signalled by the last task, the timeout only bounds the cost
            // of any spurious miss.
            let _unused = shared
                .cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }
    }

    /// A snapshot of per-lane task counts and utilization.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let tasks_per_thread: Vec<u64> = self
            .shared
            .lane_tasks
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total_tasks = tasks_per_thread.iter().sum();
        let busy_ns: u64 = self
            .shared
            .lane_busy_ns
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        let busy = Duration::from_nanos(busy_ns);
        let elapsed = self.created.elapsed();
        let capacity = self.threads() as f64 * elapsed.as_secs_f64();
        let utilization = if capacity > 0.0 {
            (busy.as_secs_f64() / capacity).min(1.0)
        } else {
            0.0
        };
        PoolStats {
            threads: self.threads(),
            tasks_per_thread,
            total_tasks,
            busy,
            elapsed,
            utilization,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut guard = self.shared.sleep.lock().unwrap();
            *guard = true;
            self.shared.cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _unused = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads())
            .finish_non_exhaustive()
    }
}

/// The machine's available parallelism (1 if it cannot be queried).
#[must_use]
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn empty_scope_returns_immediately() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.scope(|_| 42);
            assert_eq!(out, 42);
            assert_eq!(pool.stats().total_tasks, 0);
        }
    }

    #[test]
    fn empty_task_set_helpers() {
        let pool = ThreadPool::new(4);
        let out: Vec<u32> = pool.map_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
        let mut data: [u8; 0] = [];
        pool.for_each_chunk(&mut data, 8, |_, _| unreachable!());
    }

    #[test]
    fn tasks_borrow_the_stack() {
        let pool = ThreadPool::new(4);
        let input = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let mut doubled = vec![0u64; input.len()];
        pool.scope(|s| {
            for (slot, &x) in doubled.iter_mut().zip(&input) {
                s.spawn(move || *slot = 2 * x);
            }
        });
        assert_eq!(doubled, vec![6, 2, 8, 2, 10, 18, 4, 12]);
    }

    #[test]
    fn map_indexed_is_ordered_at_any_thread_count() {
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.map_indexed(100, |i| i * i), expect);
        }
    }

    #[test]
    fn nested_scopes() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    // A task opening a scope on the same pool must not
                    // deadlock: the owner helps while it waits.
                    pool.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn nested_scopes_inline_pool() {
        let pool = ThreadPool::new(1);
        let counter = AtomicU32::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                pool.scope(|inner| {
                    inner.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panic_propagates_after_all_tasks_finish() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let done = AtomicU32::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for i in 0..16 {
                        let done = &done;
                        s.spawn(move || {
                            if i == 3 {
                                panic!("boom {i}");
                            }
                            done.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }));
            let payload = result.expect_err("scope must rethrow the task panic");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert_eq!(msg, "boom 3");
            // Siblings were not cancelled.
            assert_eq!(done.load(Ordering::SeqCst), 15, "threads = {threads}");
        }
    }

    #[test]
    fn panic_in_scope_closure_propagates() {
        let pool = ThreadPool::new(2);
        let ran = AtomicU32::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
                panic!("owner");
            });
        }));
        assert!(result.is_err());
        // The spawned task still completed before the panic resumed.
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stats_count_every_task() {
        let pool = ThreadPool::new(3);
        pool.scope(|s| {
            for _ in 0..50 {
                s.spawn(|| {
                    std::hint::black_box(0u64);
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.tasks_per_thread.len(), 3);
        assert_eq!(stats.total_tasks, 50);
        assert_eq!(stats.tasks_per_thread.iter().sum::<u64>(), 50);
        assert!(stats.utilization >= 0.0 && stats.utilization <= 1.0);
    }

    #[test]
    fn inline_pool_runs_on_caller_lane_in_spawn_order() {
        let pool = ThreadPool::new(1);
        let mut slots = vec![0usize; 5];
        pool.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i + 1);
            }
        });
        assert_eq!(slots, vec![1, 2, 3, 4, 5]);
        let stats = pool.stats();
        assert_eq!(stats.tasks_per_thread[0], 5);
        assert_eq!(stats.total_tasks, 5);
    }

    #[test]
    fn two_pools_do_not_cross_feed() {
        let a = ThreadPool::new(4);
        let b = ThreadPool::new(4);
        let counter = AtomicU32::new(0);
        a.scope(|sa| {
            for _ in 0..8 {
                sa.spawn(|| {
                    b.scope(|sb| {
                        for _ in 0..4 {
                            sb.spawn(|| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn heavy_fan_out_completes() {
        let pool = ThreadPool::new(8);
        let sum = AtomicU64::new(0);
        pool.scope(|s| {
            for i in 0..10_000u64 {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }
}
