//! Sharded reader–writer hash maps for the shared memo caches.
//!
//! The checking stack's caches are read-mostly once warm: a batch of
//! formulas interns a few dozen subformulas and then hits the same memo
//! entries from every pool task. A single `RwLock<HashMap>` would make
//! every insert a stop-the-world event; [`ShardedMap`] splits the key
//! space over independent locks by hash, so writers only contend with
//! writers of the same shard and concurrent readers proceed on all other
//! shards.
//!
//! Values are handed out by clone — callers store `Arc`s, which makes a
//! lookup a reference-count bump and keeps no lock held while the caller
//! uses the value.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::RwLock;

/// Number of independent locks. Plenty for the pool sizes the runtime
/// targets; a power of two so the hash folds cheaply.
const SHARDS: usize = 16;

/// A concurrent hash map sharded over [`SHARDS`] reader–writer locks.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Box<[RwLock<HashMap<K, V>>]>,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }
}

impl<K: Eq + Hash, V> ShardedMap<K, V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        ShardedMap::default()
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Clones the value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shard(key).read().unwrap().get(key).cloned()
    }

    /// Inserts `value` under `key`, returning the previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).write().unwrap().insert(key, value)
    }

    /// Returns the value under `key`, computing and storing it first if
    /// absent. The shard's write lock is held while `make` runs, so
    /// concurrent callers with the same key compute at most once — `make`
    /// must not touch this map (same-shard re-entry would deadlock).
    pub fn get_or_insert_with<F>(&self, key: K, make: F) -> V
    where
        V: Clone,
        F: FnOnce() -> V,
    {
        let shard = self.shard(&key);
        if let Some(value) = shard.read().unwrap().get(&key) {
            return value.clone();
        }
        let mut guard = shard.write().unwrap();
        guard.entry(key).or_insert_with(make).clone()
    }

    /// Removes the value under `key`.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).write().unwrap().remove(key)
    }

    /// Total number of entries (sums shard sizes; a snapshot, not an
    /// atomic observation).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.write().unwrap().clear();
        }
    }

    /// Calls `f` on every entry, shard by shard. The shard being visited
    /// is read-locked during the call.
    pub fn for_each<F>(&self, mut f: F)
    where
        F: FnMut(&K, &V),
    {
        for shard in self.shards.iter() {
            for (k, v) in shard.read().unwrap().iter() {
                f(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn basic_ops() {
        let map: ShardedMap<u64, Arc<String>> = ShardedMap::new();
        assert!(map.is_empty());
        assert!(map.get(&7).is_none());
        map.insert(7, Arc::new("seven".into()));
        assert_eq!(map.get(&7).unwrap().as_str(), "seven");
        assert_eq!(map.len(), 1);
        assert!(map.remove(&7).is_some());
        assert!(map.is_empty());
    }

    #[test]
    fn get_or_insert_computes_once() {
        let map: ShardedMap<u32, u32> = ShardedMap::new();
        let calls = AtomicU32::new(0);
        for _ in 0..3 {
            let v = map.get_or_insert_with(5, || {
                calls.fetch_add(1, Ordering::SeqCst);
                55
            });
            assert_eq!(v, 55);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let map: Arc<ShardedMap<u32, u32>> = Arc::new(ShardedMap::new());
        let pool = crate::ThreadPool::new(8);
        let mut results = vec![0u32; 64];
        pool.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                let map = &map;
                s.spawn(move || {
                    *slot = map.get_or_insert_with((i % 4) as u32, || (i % 4) as u32 * 100);
                });
            }
        });
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, (i % 4) as u32 * 100);
        }
        assert_eq!(map.len(), 4);
    }

    #[test]
    fn for_each_and_clear() {
        let map: ShardedMap<u32, u32> = ShardedMap::new();
        for i in 0..100 {
            map.insert(i, i * 2);
        }
        let mut sum = 0u64;
        map.for_each(|_, v| sum += u64::from(*v));
        assert_eq!(sum, (0..100u64).map(|i| i * 2).sum());
        map.clear();
        assert!(map.is_empty());
    }
}
