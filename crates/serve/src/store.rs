//! Warm session reuse: the daemon's `(model, params, tolerances)` →
//! [`CheckSession`] store.
//!
//! A [`CheckSession`] borrows its [`LocalModel`], which works for the CLI
//! (one model, one invocation) but not for a daemon whose sessions must
//! outlive any single request. [`WarmSession`] closes that gap: it owns the
//! instantiated model in an [`Arc`] (stable heap address, no aliasing claims
//! on moves) and pairs it with a session whose lifetime is unsafely erased
//! to `'static`. The pairing is sound because the session is dropped
//! strictly before the model (field declaration order) and because
//! `WarmSession` only ever exposes delegating methods — the `'static`
//! session can never be observed or moved out, so no reference outlives the
//! allocation.
//!
//! The store is bounded: at most `max_sessions` warm sessions are retained,
//! with least-recently-used eviction, so clients posting ever-new parameter
//! values cannot grow daemon memory without limit.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use mfcsl_core::mfcsl::{
    CheckSession, Checker, EngineStats, MfFormula, SessionEntryExport, Verdict,
};
use mfcsl_core::{CoreError, FaultPlan, LocalModel, Occupancy};
use mfcsl_csl::{SatCacheExport, Tolerances};
use mfcsl_ode::{SolveStats, Trajectory};
use mfcsl_pool::ThreadPool;
use mfcsl_smc::SmcSession;

use crate::metrics::SnapshotCounters;
use crate::registry::ModelRegistry;
use crate::snapshot::{file_name, fnv1a64, RegimeSnapshot, SessionSnapshot, SnapshotEntry};

/// Consecutive engine failures after which a session is quarantined:
/// dropped from the store so the next request rebuilds it from scratch
/// with fresh caches.
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// The statistical-lane arm of a [`SessionKey`]: a `"mode": "simulate"`
/// request is keyed by its finite population and sampling parameters, so a
/// simulated session can never alias — or borrow the caches of — the
/// mean-field session for the same model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimKey {
    /// Finite population size `N`.
    pub population: u64,
    /// Requested replication count (the fixed-sample batch size).
    pub replications: u64,
    /// Base seed of the deterministic per-replication seed stream.
    pub seed: u64,
}

/// Identity of a warm session: which model, at which parameter values,
/// under which tolerance preset.
///
/// Parameter values are keyed by their `f64` bit patterns — the same
/// convention the engine uses for occupancy keys — so `0.1` and a value
/// that merely prints like `0.1` are distinct keys and results stay
/// bitwise reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Registry name of the model.
    pub model: String,
    /// Sorted `(name, value bits)` parameter overrides.
    pub params: Vec<(String, u64)>,
    /// Fast (loose) tolerance preset instead of the default.
    pub fast: bool,
    /// Seeded fault-injection plan (chaos testing only). Part of the key so
    /// a faulted request can never poison — or borrow the caches of — a
    /// healthy session for the same model.
    pub fault: Option<FaultPlan>,
    /// Statistical-lane parameters (`"mode": "simulate"` requests only).
    /// `None` for mean-field sessions.
    pub sim: Option<SimKey>,
}

impl SessionKey {
    /// Builds the key for a mean-field request.
    #[must_use]
    pub fn new(
        model: &str,
        overrides: &BTreeMap<String, f64>,
        fast: bool,
        fault: Option<FaultPlan>,
    ) -> SessionKey {
        SessionKey {
            model: model.to_string(),
            params: overrides
                .iter()
                .map(|(k, v)| (k.clone(), v.to_bits()))
                .collect(),
            fast,
            fault,
            sim: None,
        }
    }
}

/// An owned model plus a checking session over it, safe to keep warm across
/// requests and to share between worker threads.
///
/// # Safety invariants
///
/// * `session` is declared before `_model`, so it drops first;
/// * the model lives in an [`Arc`] allocation whose address is stable and —
///   unlike a `Box`, which asserts unique (`noalias`) access to its payload
///   every time it moves — carries no aliasing claims when the `Arc` handle
///   itself is moved, so the derived `'static` reference stays valid even as
///   the struct moves;
/// * the model is never mutated or replaced, and the `Arc` is never cloned
///   out of the struct;
/// * no method returns the session (or anything borrowing it with the
///   erased lifetime) — only owned results cross the boundary.
pub struct WarmSession {
    backend: Backend,
    _model: Arc<LocalModel>,
}

/// Which checking engine a warm session drives: the mean-field limit
/// (memoizing [`CheckSession`]) or the finite-`N` statistical lane
/// (sampled-batch [`SmcSession`]). Both borrow the owned model under the
/// same erased-lifetime invariants.
enum Backend {
    MeanField(Box<CheckSession<'static>>),
    Simulate(Box<SmcSession<'static>>),
}

impl std::fmt::Debug for WarmSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmSession").finish_non_exhaustive()
    }
}

impl WarmSession {
    /// Builds a warm session over an owned model, optionally wired with a
    /// fault-injection plan (chaos testing only).
    #[must_use]
    pub fn new(
        model: LocalModel,
        fast: bool,
        fault: Option<FaultPlan>,
        pool: Arc<ThreadPool>,
    ) -> WarmSession {
        let model = Arc::new(model);
        // SAFETY: the Arc's allocation outlives the session (drop order:
        // `session` first) and is never moved out of or mutated, and moving
        // the Arc handle makes no aliasing claims on the payload; see the
        // struct-level invariants.
        let model_ref: &'static LocalModel = unsafe { &*Arc::as_ptr(&model) };
        let tolerances = if fast {
            Tolerances::fast()
        } else {
            Tolerances::default()
        };
        let mut checker = Checker::with_tolerances(model_ref, tolerances);
        if let Some(plan) = fault {
            checker = checker.with_fault_plan(plan);
        }
        let session = CheckSession::from_checker(checker).with_pool(pool);
        WarmSession {
            backend: Backend::MeanField(Box::new(session)),
            _model: model,
        }
    }

    /// Builds a warm statistical (SMC) session over an owned model: the
    /// `"mode": "simulate"` counterpart of [`WarmSession::new`], keeping its
    /// memoized sampled-path batches warm across requests under the same
    /// erased-lifetime invariants.
    ///
    /// # Errors
    ///
    /// Propagates [`SmcSession::new`]'s option validation.
    pub fn new_simulating(
        model: LocalModel,
        options: mfcsl_smc::SmcOptions,
    ) -> Result<WarmSession, CoreError> {
        let model = Arc::new(model);
        // SAFETY: same invariants as `new` — the Arc's allocation outlives
        // the session and is never moved out of or mutated.
        let model_ref: &'static LocalModel = unsafe { &*Arc::as_ptr(&model) };
        let session = SmcSession::new(model_ref, options)?;
        Ok(WarmSession {
            backend: Backend::Simulate(Box::new(session)),
            _model: model,
        })
    }

    /// The mean-field engine, or a structured error on a simulate session
    /// (unreachable through the daemon: routing is by key, and a `sim` key
    /// always dispatches to [`WarmSession::simulate_all`]).
    fn meanfield(&self) -> Result<&CheckSession<'static>, CoreError> {
        match &self.backend {
            Backend::MeanField(session) => Ok(session),
            Backend::Simulate(_) => Err(CoreError::InvalidArgument(
                "this session is a statistical (simulate) session".into(),
            )),
        }
    }

    /// Checks a batch of formulas against one initial occupancy, sharing
    /// the session's caches. Delegates to [`CheckSession::check_all`], so a
    /// batch posted to the daemon follows the exact same horizon discipline
    /// as the offline `mfcsl check` command — verdicts are bitwise
    /// identical.
    ///
    /// # Errors
    ///
    /// Propagates checking failures.
    pub fn check_all(
        &self,
        psis: &[MfFormula],
        m0: &Occupancy,
    ) -> Result<Vec<Verdict>, CoreError> {
        self.meanfield()?.check_all(psis, m0)
    }

    /// Estimates a batch of formulas at finite `N` on the statistical
    /// backend, reusing the session's memoized sampled-path batches.
    /// Delegates to [`SmcSession::check_all`], so daemon simulate verdicts
    /// are bitwise identical to the offline `mfcsl simulate` command.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures, and rejects mean-field sessions.
    pub fn simulate_all(
        &self,
        psis: &[MfFormula],
        m0: &Occupancy,
    ) -> Result<Vec<mfcsl_smc::SmcVerdict>, CoreError> {
        match &self.backend {
            Backend::Simulate(session) => session.check_all(psis, m0),
            Backend::MeanField(_) => Err(CoreError::InvalidArgument(
                "this session is a mean-field session".into(),
            )),
        }
    }

    /// The statistical backend's counters, when this is a simulate session.
    #[must_use]
    pub fn smc_stats(&self) -> Option<mfcsl_smc::SmcStats> {
        match &self.backend {
            Backend::Simulate(session) => Some(session.stats()),
            Backend::MeanField(_) => None,
        }
    }

    /// Solves the trajectories for a sweep of initial occupancies with one
    /// batched Dopri5 drive, so later checks find their trajectory warm.
    /// Delegates to [`CheckSession::prewarm`]; the per-lane batch controller
    /// keeps every cached trajectory bitwise identical to scalar solving,
    /// so prewarmed daemon verdicts stay bitwise identical to offline ones.
    /// Returns the number of trajectory entries created (owned data only —
    /// nothing borrows the erased-lifetime session).
    ///
    /// # Errors
    ///
    /// Propagates engine failures; individual diverging lanes are skipped,
    /// not errors.
    pub fn prewarm(&self, m0s: &[Occupancy], horizon: f64) -> Result<usize, CoreError> {
        self.meanfield()?.prewarm(m0s, horizon)
    }

    /// Snapshot of the session's engine counters (zero for simulate
    /// sessions, whose counters live in [`WarmSession::smc_stats`]).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        match &self.backend {
            Backend::MeanField(session) => session.stats(),
            Backend::Simulate(_) => EngineStats::default(),
        }
    }

    /// Owned copies of every base trajectory entry, for snapshot
    /// persistence. Delegates to [`CheckSession::export_trajectories`]
    /// (owned data only — nothing borrows the erased-lifetime session).
    #[must_use]
    pub fn export_trajectories(&self) -> Vec<(Occupancy, Trajectory)> {
        match &self.backend {
            Backend::MeanField(session) => session.export_trajectories(),
            Backend::Simulate(_) => Vec::new(),
        }
    }

    /// Owned copies of every warm entry — trajectory, stationary regime,
    /// sat-cache — for snapshot persistence. Delegates to
    /// [`CheckSession::export_entries`] (owned data only).
    #[must_use]
    pub fn export_entries(&self) -> Vec<SessionEntryExport> {
        match &self.backend {
            Backend::MeanField(session) => session.export_entries(),
            Backend::Simulate(_) => Vec::new(),
        }
    }

    /// Installs a snapshot-restored trajectory as the warm entry for `m0`.
    /// Delegates to [`CheckSession::restore_trajectory`], which enforces
    /// the dimension/origin/first-knot bitwise checks.
    ///
    /// # Errors
    ///
    /// Propagates the engine's integrity-check failures.
    pub fn restore_trajectory(
        &self,
        m0: &Occupancy,
        trajectory: Trajectory,
    ) -> Result<bool, CoreError> {
        self.meanfield()?.restore_trajectory(m0, trajectory)
    }

    /// Installs a snapshot-restored entry (trajectory plus sat-cache) as
    /// the warm entry for `m0`. Delegates to [`CheckSession::restore_entry`].
    ///
    /// # Errors
    ///
    /// Propagates the engine's integrity-check failures.
    pub fn restore_entry(
        &self,
        m0: &Occupancy,
        trajectory: Trajectory,
        cache: &SatCacheExport,
    ) -> Result<bool, CoreError> {
        self.meanfield()?.restore_entry(m0, trajectory, cache)
    }

    /// Installs a snapshot-restored stationary regime for `m0`, rebuilding
    /// the frozen chain from the model. Delegates to
    /// [`CheckSession::restore_regime`].
    ///
    /// # Errors
    ///
    /// Propagates the engine's validation failures.
    pub fn restore_regime(
        &self,
        m0: &Occupancy,
        distribution: &[f64],
        settle_time: Option<f64>,
    ) -> Result<bool, CoreError> {
        self.meanfield()?.restore_regime(m0, distribution, settle_time)
    }
}

/// One retained session plus its recency stamp for LRU eviction.
#[derive(Debug)]
struct Entry {
    session: Arc<WarmSession>,
    last_used: u64,
    /// Consecutive engine failures observed on this session; any success
    /// resets it. Reaching [`QUARANTINE_THRESHOLD`] quarantines the session.
    consecutive_failures: u32,
    /// Fingerprint of the session's warm state as of the last snapshot
    /// write (0 = never written). Gates the write-behind in
    /// [`SessionStore::record_success`]: cache-hit requests leave the
    /// counters — and therefore the fingerprint — untouched, so only
    /// requests that actually grew the warm state pay a serialization.
    saved_fingerprint: u64,
}

/// Fingerprint of the warm state a snapshot would capture: the engine
/// counters that move exactly when the persisted artifacts (trajectories,
/// regimes, sat-cache) change. Checked cheaply on every success instead of
/// diffing the artifacts themselves.
fn warm_fingerprint(stats: &EngineStats) -> u64 {
    let mut bytes = [0u8; 72];
    for (slot, v) in [
        stats.trajectory_solves,
        stats.trajectory_extensions,
        stats.trajectory_restores,
        stats.regime_solves,
        stats.batch_prewarmed,
        stats.cache.set_misses,
        stats.cache.curve_misses,
        stats.cache.cached_sets as u64,
        stats.cache.cached_curves as u64,
    ]
    .into_iter()
    .enumerate()
    {
        bytes[slot * 8..slot * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
    // 0 is the "never written" sentinel; FNV of any input is nonzero in
    // practice, but clamp anyway so a pathological collision can't disable
    // persistence for a session.
    fnv1a64(&bytes).max(1)
}

/// Everything guarded by the store's one mutex.
#[derive(Debug, Default)]
struct StoreInner {
    sessions: HashMap<SessionKey, Entry>,
    /// Monotonic logical clock stamping `last_used`.
    clock: u64,
    /// Sessions evicted so far.
    evicted: u64,
    /// Sessions quarantined (dropped after repeated engine failures).
    quarantined: u64,
    /// Engine counters of evicted sessions, folded in at eviction time so
    /// `/metrics` totals stay monotonic across evictions.
    retired: EngineStats,
    /// Warm-state persistence counters for `/metrics`.
    snapshots: SnapshotCounters,
}

/// The daemon-wide session store. `get_or_create` is the only entry point;
/// it reports whether the request hit a warm session. The store holds at
/// most `max_sessions` sessions, evicting the least recently used one to
/// make room — in-flight requests keep their `Arc` to an evicted session,
/// so eviction never invalidates a running check.
#[derive(Debug)]
pub struct SessionStore {
    inner: Mutex<StoreInner>,
    pool: Arc<ThreadPool>,
    max_sessions: usize,
    /// Warm-state snapshot directory. When set, sessions are persisted on
    /// eviction and on [`SessionStore::save_all`] (graceful drain), and
    /// [`SessionStore::load_state_dir`] restores them at startup.
    state_dir: Option<PathBuf>,
}

impl SessionStore {
    /// Creates an empty store whose sessions all share `pool`, retaining at
    /// most `max_sessions` warm sessions (a value of `0` is treated as 1).
    /// With a `state_dir`, warm state persists across restarts (the
    /// directory is created if missing; creation failure just disables
    /// persistence — serving must not die over a read-only disk).
    #[must_use]
    pub fn new(
        pool: Arc<ThreadPool>,
        max_sessions: usize,
        state_dir: Option<PathBuf>,
    ) -> SessionStore {
        let state_dir = state_dir.filter(|dir| std::fs::create_dir_all(dir).is_ok());
        SessionStore {
            inner: Mutex::new(StoreInner::default()),
            pool,
            max_sessions: max_sessions.max(1),
            state_dir,
        }
    }

    /// Fetches the warm session for `key`, instantiating the model (with
    /// the key's parameter overrides) on first use. The second component is
    /// `true` when the session was already warm.
    ///
    /// Instantiation happens under the store lock: it only compiles rate
    /// expressions (no solving), and holding the lock means concurrent
    /// first requests for one key cannot race two cold sessions into
    /// existence — all but the first would waste their trajectory caches.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for unknown models or bad
    /// parameter overrides.
    pub fn get_or_create(
        &self,
        registry: &ModelRegistry,
        key: &SessionKey,
    ) -> Result<(Arc<WarmSession>, bool), CoreError> {
        let mut inner = self.lock();
        inner.clock += 1;
        let now = inner.clock;
        if let Some(existing) = inner.sessions.get_mut(key) {
            existing.last_used = now;
            return Ok((Arc::clone(&existing.session), true));
        }
        let file = registry.get(&key.model).ok_or_else(|| {
            CoreError::InvalidArgument(format!("unknown model `{}`", key.model))
        })?;
        let overrides: BTreeMap<String, f64> = key
            .params
            .iter()
            .map(|(k, bits)| (k.clone(), f64::from_bits(*bits)))
            .collect();
        let model = file.instantiate_with(&overrides)?;
        let session = match key.sim {
            None => Arc::new(WarmSession::new(
                model,
                key.fast,
                key.fault,
                Arc::clone(&self.pool),
            )),
            Some(sim) => {
                let mut options = mfcsl_smc::SmcOptions::new(
                    usize::try_from(sim.population).unwrap_or(usize::MAX),
                );
                options.replications =
                    usize::try_from(sim.replications).unwrap_or(usize::MAX);
                options.seed = sim.seed;
                // Replications fan out over the pool's lane count; the
                // per-index seed stream keeps verdicts identical at any
                // thread count, so this is a throughput knob only.
                options.threads = self.pool.stats().threads.max(1);
                Arc::new(WarmSession::new_simulating(model, options)?)
            }
        };
        if inner.sessions.len() >= self.max_sessions {
            self.evict_lru(&mut inner);
        }
        inner.sessions.insert(
            key.clone(),
            Entry {
                session: Arc::clone(&session),
                last_used: now,
                consecutive_failures: 0,
                saved_fingerprint: 0,
            },
        );
        Ok((session, false))
    }

    /// Records an engine failure on `key`'s session. After
    /// [`QUARANTINE_THRESHOLD`] consecutive failures the session is
    /// quarantined: removed from the store (its counters fold into the
    /// retired totals) so the next request for the same key rebuilds it
    /// with fresh caches. Returns `true` when this call quarantined it.
    pub fn record_failure(&self, key: &SessionKey) -> bool {
        let mut inner = self.lock();
        let Some(entry) = inner.sessions.get_mut(key) else {
            return false;
        };
        entry.consecutive_failures += 1;
        if entry.consecutive_failures < QUARANTINE_THRESHOLD {
            return false;
        }
        if let Some(entry) = inner.sessions.remove(key) {
            inner.retired.merge(&entry.session.stats());
            inner.quarantined += 1;
        }
        // A quarantined session's caches are suspect; its snapshot must not
        // resurrect them on the next start.
        if let Some(dir) = &self.state_dir {
            let _ = std::fs::remove_file(dir.join(file_name(key)));
        }
        true
    }

    /// Records a successful check on `key`'s session, resetting its
    /// consecutive-failure count — and, with persistence enabled,
    /// write-behind snapshotting the session when this request grew its
    /// warm state. The write happens synchronously (before the response
    /// reaches the client) but outside the store lock, so a SIGKILLed
    /// shard restarts warm for every key it ever answered, at zero cost
    /// for cache-hit traffic (the fingerprint gate skips those).
    pub fn record_success(&self, key: &SessionKey) {
        let session = {
            let mut inner = self.lock();
            let Some(entry) = inner.sessions.get_mut(key) else {
                return;
            };
            entry.consecutive_failures = 0;
            // Same exclusions as write_snapshot; checked here so excluded
            // sessions don't pay the fingerprint on every request.
            if self.state_dir.is_none() || key.fault.is_some() || key.sim.is_some() {
                return;
            }
            let fingerprint = warm_fingerprint(&entry.session.stats());
            if fingerprint == entry.saved_fingerprint {
                return;
            }
            // The marker advances even if the write below fails: retrying
            // an unwritable disk on every request would turn a full disk
            // into a per-request latency tax. The next state growth (or
            // eviction, or drain) retries naturally.
            entry.saved_fingerprint = fingerprint;
            Arc::clone(&entry.session)
        };
        if self.write_snapshot(key, &session) {
            self.lock().snapshots.saved += 1;
        }
    }

    /// Drops the least recently used session, folding its engine counters
    /// into the retired totals. With persistence enabled, the victim's warm
    /// trajectories are snapshotted first (write-on-evict), so an evicted
    /// key that comes back after a restart still starts warm.
    fn evict_lru(&self, inner: &mut StoreInner) {
        let Some(victim) = inner
            .sessions
            .iter()
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(key, _)| key.clone())
        else {
            return;
        };
        if let Some(entry) = inner.sessions.remove(&victim) {
            if self.write_snapshot(&victim, &entry.session) {
                inner.snapshots.saved += 1;
            }
            inner.retired.merge(&entry.session.stats());
            inner.evicted += 1;
        }
    }

    /// Persists every live session (graceful drain). Returns how many
    /// snapshots were written.
    pub fn save_all(&self) -> u64 {
        let mut inner = self.lock();
        let keys: Vec<SessionKey> = inner.sessions.keys().cloned().collect();
        let mut saved = 0;
        for key in keys {
            let Some(entry) = inner.sessions.get(&key) else {
                continue;
            };
            if self.write_snapshot(&key, &entry.session) {
                saved += 1;
            }
        }
        inner.snapshots.saved += saved;
        saved
    }

    /// Restores previously persisted sessions, eagerly instantiating their
    /// models so the first request after a restart is a genuine warm hit.
    /// Corrupt, truncated, wrong-version, or stale (model no longer in the
    /// registry, entries that fail the engine's bitwise integrity checks)
    /// snapshots are skipped and counted, never trusted partially.
    pub fn load_state_dir(&self, registry: &ModelRegistry) {
        let Some(dir) = &self.state_dir else {
            return;
        };
        let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
            Ok(iter) => iter
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "snap"))
                .collect(),
            Err(_) => return,
        };
        paths.sort();
        for path in paths {
            let mut inner = self.lock();
            if inner.sessions.len() >= self.max_sessions {
                break; // respect the cap; remaining snapshots stay on disk
            }
            drop(inner);
            let restored = self.restore_file(registry, &path);
            inner = self.lock();
            match restored {
                Ok((key, session)) => {
                    inner.clock += 1;
                    let now = inner.clock;
                    inner.snapshots.loaded += 1;
                    // The snapshot on disk captures exactly the state just
                    // restored, so mark it saved — a cache-hit first
                    // request after restart must not rewrite it.
                    let saved_fingerprint = warm_fingerprint(&session.stats());
                    inner.sessions.entry(key).or_insert(Entry {
                        session,
                        last_used: now,
                        consecutive_failures: 0,
                        saved_fingerprint,
                    });
                }
                Err(_) => inner.snapshots.rejected += 1,
            }
        }
    }

    /// Decodes one snapshot file into a warm session, enforcing every
    /// integrity check along the way.
    fn restore_file(
        &self,
        registry: &ModelRegistry,
        path: &std::path::Path,
    ) -> Result<(SessionKey, Arc<WarmSession>), String> {
        let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
        let snapshot = SessionSnapshot::decode(&bytes).map_err(|e| e.to_string())?;
        let key = snapshot.key();
        let file = registry
            .get(&key.model)
            .ok_or_else(|| format!("model `{}` no longer registered", key.model))?;
        let overrides: BTreeMap<String, f64> = key
            .params
            .iter()
            .map(|(k, bits)| (k.clone(), f64::from_bits(*bits)))
            .collect();
        let model = file.instantiate_with(&overrides).map_err(|e| e.to_string())?;
        let session = Arc::new(WarmSession::new(
            model,
            key.fast,
            None,
            Arc::clone(&self.pool),
        ));
        for entry in &snapshot.entries {
            let m0 = Occupancy::new(
                entry.m0_bits.iter().map(|&b| f64::from_bits(b)).collect(),
            )
            .map_err(|e| e.to_string())?;
            let dim = entry.m0_bits.len();
            let stats = SolveStats {
                accepted: usize::try_from(entry.stats[0]).unwrap_or(usize::MAX),
                rejected: usize::try_from(entry.stats[1]).unwrap_or(usize::MAX),
                rhs_evals: usize::try_from(entry.stats[2]).unwrap_or(usize::MAX),
                recoveries: usize::try_from(entry.stats[3]).unwrap_or(usize::MAX),
                stiff_fallbacks: usize::try_from(entry.stats[4]).unwrap_or(usize::MAX),
            };
            let trajectory = Trajectory::from_flat(
                dim,
                entry.ts_bits.iter().map(|&b| f64::from_bits(b)).collect(),
                entry.ys_bits.iter().map(|&b| f64::from_bits(b)).collect(),
                entry.ds_bits.iter().map(|&b| f64::from_bits(b)).collect(),
                stats,
            )
            .map_err(|e| e.to_string())?;
            session
                .restore_entry(&m0, trajectory, &entry.cache)
                .map_err(|e| e.to_string())?;
            if let Some(regime) = &entry.regime {
                let distribution: Vec<f64> = regime
                    .distribution_bits
                    .iter()
                    .map(|&b| f64::from_bits(b))
                    .collect();
                let settle_time = regime.settle_bits.map(f64::from_bits);
                session
                    .restore_regime(&m0, &distribution, settle_time)
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok((key, session))
    }

    /// Serializes and atomically writes one session's snapshot. Returns
    /// whether a file was written. Faulted sessions are never persisted
    /// (their caches are deliberately poisoned test state); simulate
    /// sessions aren't either — their sampled batches regenerate bitwise
    /// from the seed stream, so there is nothing worth a disk format.
    fn write_snapshot(&self, key: &SessionKey, session: &WarmSession) -> bool {
        let Some(dir) = &self.state_dir else {
            return false;
        };
        if key.fault.is_some() || key.sim.is_some() {
            return false;
        }
        let entries: Vec<SnapshotEntry> = session
            .export_entries()
            .into_iter()
            .map(|entry| {
                let (_, ts, ys, ds, stats) = entry.trajectory.to_flat();
                SnapshotEntry {
                    m0_bits: entry.m0.as_slice().iter().map(|x| x.to_bits()).collect(),
                    ts_bits: ts.iter().map(|x| x.to_bits()).collect(),
                    ys_bits: ys.iter().map(|x| x.to_bits()).collect(),
                    ds_bits: ds.iter().map(|x| x.to_bits()).collect(),
                    stats: [
                        stats.accepted as u64,
                        stats.rejected as u64,
                        stats.rhs_evals as u64,
                        stats.recoveries as u64,
                        stats.stiff_fallbacks as u64,
                    ],
                    regime: entry.regime.map(|r| RegimeSnapshot {
                        distribution_bits: r
                            .distribution
                            .iter()
                            .map(|x| x.to_bits())
                            .collect(),
                        settle_bits: r.settle_time.map(f64::to_bits),
                    }),
                    cache: entry.cache,
                }
            })
            .collect();
        let engine = session.stats();
        let snapshot = SessionSnapshot {
            model: key.model.clone(),
            params: key.params.clone(),
            fast: key.fast,
            entries,
            cached_sets: engine.cache.cached_sets as u64,
            cached_curves: engine.cache.cached_curves as u64,
        };
        let final_path = dir.join(file_name(key));
        let tmp_path = final_path.with_extension("snap.tmp");
        // Write-then-rename: a crash mid-write leaves a `.tmp` orphan, never
        // a torn `.snap` (and a torn file would fail its checksum anyway).
        if std::fs::write(&tmp_path, snapshot.encode()).is_err() {
            return false;
        }
        std::fs::rename(&tmp_path, &final_path).is_ok()
    }

    /// Current warm-state persistence counters.
    #[must_use]
    pub fn snapshot_counters(&self) -> SnapshotCounters {
        self.lock().snapshots
    }

    /// Number of sessions currently warm.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().sessions.len()
    }

    /// Whether the store holds no sessions yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sessions evicted since startup.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }

    /// Number of sessions quarantined since startup.
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.lock().quarantined
    }

    /// Merged engine counters over every warm session plus every evicted
    /// one (for `/metrics`; totals stay monotonic across evictions).
    #[must_use]
    pub fn merged_stats(&self) -> EngineStats {
        let inner = self.lock();
        let mut total = inner.retired.clone();
        for entry in inner.sessions.values() {
            total.merge(&entry.session.stats());
        }
        total
    }

    /// Acquires the store mutex. The guarded state is a cache of plain
    /// counters and `Arc`s with no invariants that a panic mid-update could
    /// break, so a poisoned lock is recovered rather than propagated — the
    /// daemon must not die because one handler thread panicked.
    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_core::mfcsl::parse_formula;

    fn sis_model() -> LocalModel {
        mfcsl_modelfile::ModelFile::parse(
            "state s : healthy\nstate i : infected\nparam beta = 2\n\
             rate s -> i : beta * m[i]\nrate i -> s : 1\n",
        )
        .unwrap()
        .instantiate()
        .unwrap()
    }

    #[test]
    fn warm_session_checks_and_survives_moves() {
        let pool = Arc::new(ThreadPool::new(2));
        let warm = WarmSession::new(sis_model(), false, None, pool);
        // Move the struct (heap model address must stay valid).
        let warm = Box::new(warm);
        let warm = *warm;
        let psi = parse_formula("E{<0.4}[ infected ]").unwrap();
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let verdicts = warm.check_all(std::slice::from_ref(&psi), &m0).unwrap();
        assert!(verdicts[0].holds());
        assert_eq!(warm.stats().trajectory_solves, 1);
    }

    #[test]
    fn warm_session_is_shared_across_threads() {
        let pool = Arc::new(ThreadPool::new(2));
        let warm = Arc::new(WarmSession::new(sis_model(), false, None, pool));
        let psi = parse_formula("E{<0.4}[ infected ]").unwrap();
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let warm = Arc::clone(&warm);
                let psi = psi.clone();
                let m0 = m0.clone();
                std::thread::spawn(move || {
                    warm.check_all(std::slice::from_ref(&psi), &m0).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap()[0].holds());
        }
        // All four checks shared one trajectory.
        assert_eq!(warm.stats().trajectory_solves, 1);
    }

    #[test]
    fn store_evicts_least_recently_used_session() {
        let dir = std::env::temp_dir().join(format!("mfcsl-store-lru-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("sis.mf"),
            "state s : healthy\nstate i : infected\nparam beta = 2\n\
             rate s -> i : beta * m[i]\nrate i -> s : 1\n",
        )
        .unwrap();
        let reg = ModelRegistry::load(std::slice::from_ref(&dir)).unwrap();
        let pool = Arc::new(ThreadPool::new(1));
        let store = SessionStore::new(pool, 2, None);
        let key = |beta: f64| {
            SessionKey::new(
                "sis",
                &[("beta".to_string(), beta)].into_iter().collect(),
                false,
                None,
            )
        };

        let (first, warm) = store.get_or_create(&reg, &key(1.0)).unwrap();
        assert!(!warm);
        // Give the first session some engine history so eviction has
        // counters to retire.
        let psi = parse_formula("E{<0.9}[ infected ]").unwrap();
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        first.check_all(std::slice::from_ref(&psi), &m0).unwrap();

        assert!(!store.get_or_create(&reg, &key(2.0)).unwrap().1);
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(store.get_or_create(&reg, &key(1.0)).unwrap().1);
        assert!(!store.get_or_create(&reg, &key(3.0)).unwrap().1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.evicted(), 1);
        // Key 2 was evicted, key 1 stayed warm.
        assert!(store.get_or_create(&reg, &key(1.0)).unwrap().1);
        assert!(!store.get_or_create(&reg, &key(2.0)).unwrap().1);
        assert_eq!(store.evicted(), 2);
        // Push key 1 out entirely: its engine counters must survive in the
        // retired totals merged into `merged_stats`.
        assert!(!store.get_or_create(&reg, &key(4.0)).unwrap().1);
        assert!(!store.get_or_create(&reg, &key(5.0)).unwrap().1);
        assert_eq!(store.len(), 2);
        assert!(store.merged_stats().trajectory_solves >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_keys_distinguish_params_and_tolerances() {
        let base = SessionKey::new("sis", &BTreeMap::new(), false, None);
        let fast = SessionKey::new("sis", &BTreeMap::new(), true, None);
        let tweaked = SessionKey::new(
            "sis",
            &[("beta".to_string(), 3.0)].into_iter().collect(),
            false,
            None,
        );
        let faulted = SessionKey::new(
            "sis",
            &BTreeMap::new(),
            false,
            Some(FaultPlan::new(mfcsl_core::FaultMode::Nan, 1, 7)),
        );
        assert_ne!(base, fast);
        assert_ne!(base, tweaked);
        assert_ne!(base, faulted, "a faulted request must never share a healthy session");
        assert_eq!(base, SessionKey::new("sis", &BTreeMap::new(), false, None));
    }

    #[test]
    fn repeated_failures_quarantine_and_rebuild_a_session() {
        let dir = std::env::temp_dir().join(format!("mfcsl-store-qrt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("sis.mf"),
            "state s : healthy\nstate i : infected\nparam beta = 2\n\
             rate s -> i : beta * m[i]\nrate i -> s : 1\n",
        )
        .unwrap();
        let reg = ModelRegistry::load(std::slice::from_ref(&dir)).unwrap();
        let pool = Arc::new(ThreadPool::new(1));
        let store = SessionStore::new(pool, 4, None);
        let key = SessionKey::new("sis", &BTreeMap::new(), false, None);

        let (_, warm) = store.get_or_create(&reg, &key).unwrap();
        assert!(!warm);
        // Successes keep resetting the consecutive-failure count.
        assert!(!store.record_failure(&key));
        store.record_success(&key);
        assert!(!store.record_failure(&key));
        assert!(!store.record_failure(&key));
        assert_eq!(store.quarantined(), 0);
        // The third *consecutive* failure quarantines.
        assert!(store.record_failure(&key));
        assert_eq!(store.quarantined(), 1);
        assert_eq!(store.len(), 0);
        // A failure on an already-quarantined (absent) key is a no-op.
        assert!(!store.record_failure(&key));
        assert_eq!(store.quarantined(), 1);
        // The next request rebuilds the session cold.
        let (_, warm) = store.get_or_create(&reg, &key).unwrap();
        assert!(!warm, "quarantined session must be rebuilt, not reused");
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
