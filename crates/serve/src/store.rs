//! Warm session reuse: the daemon's `(model, params, tolerances)` →
//! [`CheckSession`] store.
//!
//! A [`CheckSession`] borrows its [`LocalModel`], which works for the CLI
//! (one model, one invocation) but not for a daemon whose sessions must
//! outlive any single request. [`WarmSession`] closes that gap: it owns the
//! instantiated model in a [`Box`] (stable heap address) and pairs it with a
//! session whose lifetime is unsafely erased to `'static`. The pairing is
//! sound because the session is dropped strictly before the model (field
//! declaration order) and because `WarmSession` only ever exposes delegating
//! methods — the `'static` session can never be observed or moved out, so no
//! reference outlives the box.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mfcsl_core::mfcsl::{CheckSession, EngineStats, MfFormula, Verdict};
use mfcsl_core::{CoreError, LocalModel, Occupancy};
use mfcsl_csl::Tolerances;
use mfcsl_pool::ThreadPool;

use crate::registry::ModelRegistry;

/// Identity of a warm session: which model, at which parameter values,
/// under which tolerance preset.
///
/// Parameter values are keyed by their `f64` bit patterns — the same
/// convention the engine uses for occupancy keys — so `0.1` and a value
/// that merely prints like `0.1` are distinct keys and results stay
/// bitwise reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Registry name of the model.
    pub model: String,
    /// Sorted `(name, value bits)` parameter overrides.
    pub params: Vec<(String, u64)>,
    /// Fast (loose) tolerance preset instead of the default.
    pub fast: bool,
}

impl SessionKey {
    /// Builds the key for a request.
    #[must_use]
    pub fn new(model: &str, overrides: &BTreeMap<String, f64>, fast: bool) -> SessionKey {
        SessionKey {
            model: model.to_string(),
            params: overrides
                .iter()
                .map(|(k, v)| (k.clone(), v.to_bits()))
                .collect(),
            fast,
        }
    }
}

/// An owned model plus a checking session over it, safe to keep warm across
/// requests and to share between worker threads.
///
/// # Safety invariants
///
/// * `session` is declared before `_model`, so it drops first;
/// * `_model` is boxed and never mutated or replaced, so the `'static`
///   reference inside `session` stays valid for the whole lifetime of the
///   struct even when the struct itself moves;
/// * no method returns the session (or anything borrowing it with the
///   erased lifetime) — only owned results cross the boundary.
pub struct WarmSession {
    session: CheckSession<'static>,
    _model: Box<LocalModel>,
}

impl std::fmt::Debug for WarmSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmSession").finish_non_exhaustive()
    }
}

impl WarmSession {
    /// Builds a warm session over an owned model.
    #[must_use]
    pub fn new(model: LocalModel, fast: bool, pool: Arc<ThreadPool>) -> WarmSession {
        let model = Box::new(model);
        // SAFETY: the box's allocation outlives the session (drop order:
        // `session` first) and is never moved out of or mutated; see the
        // struct-level invariants.
        let model_ref: &'static LocalModel =
            unsafe { &*std::ptr::from_ref::<LocalModel>(model.as_ref()) };
        let session = if fast {
            CheckSession::with_tolerances(model_ref, Tolerances::fast())
        } else {
            CheckSession::new(model_ref)
        }
        .with_pool(pool);
        WarmSession {
            session,
            _model: model,
        }
    }

    /// Checks a batch of formulas against one initial occupancy, sharing
    /// the session's caches. Delegates to [`CheckSession::check_all`], so a
    /// batch posted to the daemon follows the exact same horizon discipline
    /// as the offline `mfcsl check` command — verdicts are bitwise
    /// identical.
    ///
    /// # Errors
    ///
    /// Propagates checking failures.
    pub fn check_all(
        &self,
        psis: &[MfFormula],
        m0: &Occupancy,
    ) -> Result<Vec<Verdict>, CoreError> {
        self.session.check_all(psis, m0)
    }

    /// Snapshot of the session's engine counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.session.stats()
    }
}

/// The daemon-wide session store. `get_or_create` is the only entry point;
/// it reports whether the request hit a warm session.
#[derive(Debug)]
pub struct SessionStore {
    sessions: Mutex<HashMap<SessionKey, Arc<WarmSession>>>,
    pool: Arc<ThreadPool>,
}

impl SessionStore {
    /// Creates an empty store whose sessions all share `pool`.
    #[must_use]
    pub fn new(pool: Arc<ThreadPool>) -> SessionStore {
        SessionStore {
            sessions: Mutex::new(HashMap::new()),
            pool,
        }
    }

    /// Fetches the warm session for `key`, instantiating the model (with
    /// the key's parameter overrides) on first use. The second component is
    /// `true` when the session was already warm.
    ///
    /// Instantiation happens under the store lock: it only compiles rate
    /// expressions (no solving), and holding the lock means concurrent
    /// first requests for one key cannot race two cold sessions into
    /// existence — all but the first would waste their trajectory caches.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for unknown models or bad
    /// parameter overrides.
    pub fn get_or_create(
        &self,
        registry: &ModelRegistry,
        key: &SessionKey,
    ) -> Result<(Arc<WarmSession>, bool), CoreError> {
        let mut sessions = self.sessions.lock().expect("session store poisoned");
        if let Some(existing) = sessions.get(key) {
            return Ok((Arc::clone(existing), true));
        }
        let file = registry.get(&key.model).ok_or_else(|| {
            CoreError::InvalidArgument(format!("unknown model `{}`", key.model))
        })?;
        let overrides: BTreeMap<String, f64> = key
            .params
            .iter()
            .map(|(k, bits)| (k.clone(), f64::from_bits(*bits)))
            .collect();
        let model = file.instantiate_with(&overrides)?;
        let session = Arc::new(WarmSession::new(model, key.fast, Arc::clone(&self.pool)));
        sessions.insert(key.clone(), Arc::clone(&session));
        Ok((session, false))
    }

    /// Number of sessions currently warm.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.lock().expect("session store poisoned").len()
    }

    /// Whether the store holds no sessions yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merged engine counters over every warm session (for `/metrics`).
    #[must_use]
    pub fn merged_stats(&self) -> EngineStats {
        let sessions = self.sessions.lock().expect("session store poisoned");
        let mut total = EngineStats::default();
        for session in sessions.values() {
            total.merge(&session.stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_core::mfcsl::parse_formula;

    fn sis_model() -> LocalModel {
        mfcsl_modelfile::ModelFile::parse(
            "state s : healthy\nstate i : infected\nparam beta = 2\n\
             rate s -> i : beta * m[i]\nrate i -> s : 1\n",
        )
        .unwrap()
        .instantiate()
        .unwrap()
    }

    #[test]
    fn warm_session_checks_and_survives_moves() {
        let pool = Arc::new(ThreadPool::new(2));
        let warm = WarmSession::new(sis_model(), false, pool);
        // Move the struct (heap model address must stay valid).
        let warm = Box::new(warm);
        let warm = *warm;
        let psi = parse_formula("E{<0.4}[ infected ]").unwrap();
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let verdicts = warm.check_all(std::slice::from_ref(&psi), &m0).unwrap();
        assert!(verdicts[0].holds());
        assert_eq!(warm.stats().trajectory_solves, 1);
    }

    #[test]
    fn warm_session_is_shared_across_threads() {
        let pool = Arc::new(ThreadPool::new(2));
        let warm = Arc::new(WarmSession::new(sis_model(), false, pool));
        let psi = parse_formula("E{<0.4}[ infected ]").unwrap();
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let warm = Arc::clone(&warm);
                let psi = psi.clone();
                let m0 = m0.clone();
                std::thread::spawn(move || {
                    warm.check_all(std::slice::from_ref(&psi), &m0).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap()[0].holds());
        }
        // All four checks shared one trajectory.
        assert_eq!(warm.stats().trajectory_solves, 1);
    }

    #[test]
    fn session_keys_distinguish_params_and_tolerances() {
        let base = SessionKey::new("sis", &BTreeMap::new(), false);
        let fast = SessionKey::new("sis", &BTreeMap::new(), true);
        let tweaked =
            SessionKey::new("sis", &[("beta".to_string(), 3.0)].into_iter().collect(), false);
        assert_ne!(base, fast);
        assert_ne!(base, tweaked);
        assert_eq!(base, SessionKey::new("sis", &BTreeMap::new(), false));
    }
}
