//! A hand-rolled JSON encoder/decoder.
//!
//! The workspace builds offline and its vendored `serde` stub has no
//! serializer, so the daemon's wire format is implemented directly: a
//! [`Json`] value tree, a recursive-descent parser with byte-position
//! errors, and a renderer. Only what the protocol needs — no comments, no
//! trailing commas, objects keep insertion order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// A parse error with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the failing byte position.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.error("unexpected trailing input"));
        }
        Ok(v)
    }

    /// Renders the value as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_number(*v, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a field of an object (`None` for non-objects too).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An object's fields as a name → number map (for parameter tables).
    /// `None` if the value is not an object or any field is not a number.
    #[must_use]
    pub fn as_num_map(&self) -> Option<BTreeMap<String, f64>> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
                .collect(),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Renders a number: integers without a fraction, non-finite values as
/// `null` (JSON has no NaN/inf).
fn render_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else {
        // Rust's shortest-roundtrip formatting is valid JSON for finite
        // values ("1", "0.25", "1e-7", …).
        let _ = write!(out, "{v}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.eat(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let value = self.value()?;
                    if fields.iter().any(|(k, _)| *k == key) {
                        return Err(self.error(format!("duplicate key `{key}`")));
                    }
                    fields.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("bad \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.error("bad UTF-8"))?;
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.error("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(slice).map_err(|_| self.error("bad UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| {
            b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let text = r#"{"model":"virus","m0":[0.8,0.15,0.05],"fast":false,"n":3,"x":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("model").unwrap().as_str(), Some("virus"));
        assert_eq!(v.get("m0").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("fast").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn numbers_roundtrip_bitwise() {
        for x in [0.0, -0.0, 1.0, 0.1, 1e-9, 123_456_789.125, -2.5e300] {
            let rendered = Json::Num(x).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} vs {rendered}");
        }
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}π".into());
        let rendered = s.render();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\nd\\te\\u0001π\"");
        assert_eq!(Json::parse(&rendered).unwrap(), s);
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#"[{"a":[1,2,[3]]},{"b":{"c":true}}]"#).unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(
            a[0].get("a").unwrap().as_arr().unwrap()[2],
            Json::Arr(vec![Json::Num(3.0)])
        );
        assert_eq!(a[1].get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn num_map() {
        let v = Json::parse(r#"{"k1":0.9,"k2":0.1}"#).unwrap();
        let m = v.as_num_map().unwrap();
        assert_eq!(m["k1"], 0.9);
        assert_eq!(m.len(), 2);
        assert!(Json::parse(r#"{"k1":"x"}"#).unwrap().as_num_map().is_none());
    }

    #[test]
    fn parse_errors_carry_positions() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "\"abc", "1.2.3", "[1] x", "{\"a\":1,\"a\":2}"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.position <= bad.len(), "{bad}: {err}");
        }
    }
}
