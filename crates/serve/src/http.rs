//! A deliberately minimal HTTP/1.1 layer over `std::net`.
//!
//! No chunked encoding, bodies bounded by a caller-supplied limit. Two
//! server-side entry points share one grammar: [`read_request`] parses a
//! single request from a blocking stream (the legacy one-request-per-
//! connection daemon), and [`RequestParser`] is the same grammar as an
//! incremental push parser — bytes go in as they arrive from a non-blocking
//! socket, complete requests come out — which is what the epoll reactor's
//! per-connection state machines drive. Responses are built as [`Outcome`]
//! values and rendered to bytes by [`render_response`], with keep-alive
//! decided per request.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ….
    pub method: String,
    /// Request target, e.g. `/v1/check`.
    pub path: String,
    /// Headers, lowercased names.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// request. HTTP/1.1 defaults to keep-alive, so only an explicit
    /// `Connection: close` returns `true`.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A response as a value: status, headers, body, plus the control effects
/// the transport layer must apply after writing it. Handlers build
/// `Outcome`s; the blocking daemon and the epoll reactor both render them
/// with [`render_response`], which is what keeps verdicts (and error
/// bodies) bitwise identical across serving cores.
#[derive(Debug)]
pub struct Outcome {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers emitted verbatim (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// The handler initiated a drain (`POST /shutdown`): after this
    /// response is written the serving core must stop accepting and wind
    /// down.
    pub shutdown: bool,
    /// Close the connection after writing, regardless of what the request
    /// asked for (used for `429` rejections).
    pub close: bool,
}

impl Outcome {
    /// A plain `200`-style response.
    #[must_use]
    pub fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Outcome {
        Outcome {
            status,
            content_type,
            extra_headers: Vec::new(),
            body,
            shutdown: false,
            close: false,
        }
    }
}

/// The daemon's uniform error body, `{"error": message, "code": code}`, as
/// an [`Outcome`]. Every error path — handler, reactor loop, shard router —
/// renders through here so clients see one shape.
#[must_use]
pub fn error_outcome(status: u16, code: &str, message: &str) -> Outcome {
    let body = crate::json::Json::Obj(vec![
        ("error".into(), crate::json::Json::from(message)),
        ("code".into(), crate::json::Json::from(code)),
    ])
    .render();
    Outcome::new(status, "application/json", body.into_bytes())
}

/// An HTTP-layer error: either transport or malformed request.
#[derive(Debug)]
pub struct HttpError(pub String);

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for HttpError {}

impl HttpError {
    /// Whether this error came from a socket read/write timeout
    /// (`WouldBlock`/`TimedOut`) rather than a connect failure, reset, or
    /// protocol violation. The router uses this to tell "the shard is slow
    /// and my deadline ran out" (a `504`, breaker-neutral) apart from "the
    /// shard is gone" (a `503` that counts toward the breaker).
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        self.0.starts_with("i/o timeout:")
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        // The marker prefix is what `is_timeout` keys on; the kind itself
        // can't be carried without breaking the tuple-struct API.
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                HttpError(format!("i/o timeout: {e}"))
            }
            _ => HttpError(format!("i/o: {e}")),
        }
    }
}

/// Largest accepted request line or header line, in bytes. Without this
/// bound a client streaming an endless line (never sending `\n`) would make
/// the server buffer it all in memory.
const MAX_LINE: u64 = 8 * 1024;

/// Reads one `\n`-terminated line of at most [`MAX_LINE`] bytes. Returns an
/// empty string at EOF (mirroring `read_line`'s `Ok(0)`).
fn read_bounded_line<R: BufRead>(reader: &mut R, what: &str) -> Result<String, HttpError> {
    let mut line = String::new();
    let n = reader.by_ref().take(MAX_LINE).read_line(&mut line)?;
    if n as u64 >= MAX_LINE && !line.ends_with('\n') {
        return Err(HttpError(format!(
            "{what} exceeds the {MAX_LINE}-byte limit"
        )));
    }
    Ok(line)
}

/// Parses a request line (`GET /path HTTP/1.1`).
fn parse_request_line(line: &str) -> Result<(String, String), HttpError> {
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1") => {
            Ok((m.to_string(), p.to_string()))
        }
        _ => Err(HttpError(format!("bad request line `{}`", line.trim_end()))),
    }
}

/// Parses one `Name: value` header line into a lowercased pair.
fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError(format!("bad header `{line}`")));
    };
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// Extracts and validates the content length from parsed headers.
fn content_length_of(headers: &[(String, String)], max_body: usize) -> Result<usize, HttpError> {
    let mut content_length = 0usize;
    for (name, value) in headers {
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError(format!("bad content-length `{value}`")))?;
        }
    }
    if content_length > max_body {
        return Err(HttpError(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    Ok(content_length)
}

/// Reads one request from the stream.
///
/// # Errors
///
/// Fails on malformed or over-long request lines/headers, bodies larger
/// than `max_body`, or transport errors (including read timeouts configured
/// on the stream).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_bounded_line(&mut reader, "request line")?;
    let (method, path) = parse_request_line(&request_line)?;
    let mut headers = Vec::new();
    loop {
        let line = read_bounded_line(&mut reader, "header line")?;
        if line.is_empty() {
            return Err(HttpError("connection closed mid-headers".into()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        headers.push(parse_header_line(line)?);
    }
    let content_length = content_length_of(&headers, max_body)?;
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// A parsed-but-bodyless head waiting for its body bytes.
#[derive(Debug)]
struct PendingHead {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    content_length: usize,
}

/// An incremental HTTP/1.1 request parser: the per-connection state machine
/// of the epoll reactor. Push bytes in as the socket yields them, pull
/// complete [`Request`]s out; the same line/body bounds as [`read_request`]
/// apply, so a hostile connection cannot make the reactor buffer an endless
/// request line any more than it could the blocking daemon.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Byte offset scanning resumes from (start of the first unparsed line).
    scan_from: usize,
    /// Parsed head lines of the request currently being assembled.
    lines: Vec<String>,
    head: Option<PendingHead>,
}

impl RequestParser {
    /// Creates an empty parser.
    #[must_use]
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends bytes received from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a returned request.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to extract the next complete request.
    ///
    /// Returns `Ok(None)` when more bytes are needed. After an `Err` the
    /// parser is poisoned garbage and the connection must be closed (the
    /// reactor writes a `400` first).
    ///
    /// # Errors
    ///
    /// Fails on malformed or over-long request lines/headers and on bodies
    /// larger than `max_body`.
    pub fn next_request(&mut self, max_body: usize) -> Result<Option<Request>, HttpError> {
        if self.head.is_none() {
            // Consume complete lines until the blank line ends the head.
            loop {
                let rest = &self.buf[self.scan_from..];
                let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                    // No newline yet: enforce the line bound on the fragment.
                    if rest.len() as u64 >= MAX_LINE {
                        let what = if self.lines.is_empty() {
                            "request line"
                        } else {
                            "header line"
                        };
                        return Err(HttpError(format!(
                            "{what} exceeds the {MAX_LINE}-byte limit"
                        )));
                    }
                    return Ok(None);
                };
                if nl as u64 >= MAX_LINE {
                    let what = if self.lines.is_empty() {
                        "request line"
                    } else {
                        "header line"
                    };
                    return Err(HttpError(format!(
                        "{what} exceeds the {MAX_LINE}-byte limit"
                    )));
                }
                let line = String::from_utf8_lossy(&rest[..nl]).into_owned();
                self.scan_from += nl + 1;
                let line = line.trim_end_matches('\r');
                if line.is_empty() {
                    if self.lines.is_empty() {
                        // Tolerate stray blank lines between requests.
                        continue;
                    }
                    // Head complete: parse it.
                    let (method, path) = parse_request_line(&self.lines[0])?;
                    let headers = self.lines[1..]
                        .iter()
                        .map(|l| parse_header_line(l))
                        .collect::<Result<Vec<_>, _>>()?;
                    let content_length = content_length_of(&headers, max_body)?;
                    self.lines.clear();
                    self.head = Some(PendingHead {
                        method,
                        path,
                        headers,
                        content_length,
                    });
                    break;
                }
                self.lines.push(line.to_string());
            }
        }
        let Some(head) = &self.head else {
            return Ok(None);
        };
        if self.buf.len() - self.scan_from < head.content_length {
            return Ok(None);
        }
        let Some(head) = self.head.take() else {
            return Ok(None);
        };
        let body = self.buf[self.scan_from..self.scan_from + head.content_length].to_vec();
        // Drop everything consumed; keep any pipelined bytes that follow.
        self.buf.drain(..self.scan_from + head.content_length);
        self.scan_from = 0;
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            headers: head.headers,
            body,
        }))
    }
}

fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Status",
    }
}

/// Renders a full response (head + body) to bytes. `keep_alive` selects the
/// `Connection` header; the body always carries an explicit
/// `Content-Length`, so keep-alive clients know exactly where it ends.
#[must_use]
pub fn render_response(outcome: &Outcome, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        outcome.status,
        reason_of(outcome.status),
        outcome.content_type,
        outcome.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &outcome.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(&outcome.body);
    bytes
}

/// Writes one response and flushes, always closing semantics
/// (`Connection: close`). `extra_headers` are emitted verbatim (e.g.
/// `("Retry-After", "1")`).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &'static str,
    extra_headers: &[(&'static str, String)],
    body: &[u8],
) -> Result<(), HttpError> {
    let outcome = Outcome {
        status,
        content_type,
        extra_headers: extra_headers.to_vec(),
        body: body.to_vec(),
        shutdown: false,
        close: true,
    };
    stream.write_all(&render_response(&outcome, false))?;
    stream.flush()?;
    Ok(())
}

/// A response as seen by the client side.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the response (client side), asking the
/// server to close afterwards (`Connection: close`).
///
/// # Errors
///
/// Fails on transport errors or a malformed status line.
pub fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<Response, HttpError> {
    roundtrip_with(stream, method, path, body, true)
}

/// [`roundtrip`] with an explicit connection mode. With `close = false` the
/// request advertises keep-alive and the response body must carry a
/// `Content-Length` (mfcsld always sends one), so the stream stays usable
/// for the next request.
///
/// # Errors
///
/// Fails on transport errors, a malformed status line, or a keep-alive
/// response without `Content-Length`.
pub fn roundtrip_with(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
    close: bool,
) -> Result<Response, HttpError> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: mfcsld\r\nContent-Length: {}\r\n\
         Content-Type: application/json\r\nConnection: {}\r\n\r\n",
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    // One write for head + body: a split write behind Nagle stalls the
    // second (small) segment on the peer's delayed ACK — ~40ms added to
    // every keep-alive request.
    let mut request = Vec::with_capacity(head.len() + body.len());
    request.extend_from_slice(head.as_bytes());
    request.extend_from_slice(body);
    stream.write_all(&request)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError(format!("bad status line `{}`", status_line.trim_end())))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None if close => {
            reader.read_to_end(&mut body)?;
        }
        None => {
            return Err(HttpError(
                "keep-alive response without Content-Length".into(),
            ));
        }
    }
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{SocketAddr, TcpListener};

    /// Serves one connection with `read_request` while a client thread
    /// writes `payload`, returning the parse outcome.
    fn parse_payload(payload: Vec<u8>) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr: SocketAddr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            // The server may close mid-write once it hits a limit; that
            // write error is the expected signal, not a test failure.
            let _ = client.write_all(&payload);
            let _ = client.flush();
            client
        });
        let (mut stream, _) = listener.accept().unwrap();
        let outcome = read_request(&mut stream, 1 << 20);
        drop(stream);
        drop(writer.join());
        outcome
    }

    #[test]
    fn read_request_bounds_header_lines() {
        let mut payload = b"GET / HTTP/1.1\r\nx-junk: ".to_vec();
        payload.extend(std::iter::repeat_n(b'a', 16 * 1024));
        let err = parse_payload(payload).unwrap_err();
        assert!(err.to_string().contains("header line exceeds"), "{err}");
    }

    #[test]
    fn read_request_bounds_the_request_line() {
        let payload = vec![b'a'; 16 * 1024];
        let err = parse_payload(payload).unwrap_err();
        assert!(err.to_string().contains("request line exceeds"), "{err}");
    }

    #[test]
    fn read_request_accepts_ordinary_requests() {
        let request =
            parse_payload(b"POST /v1/check HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi".to_vec())
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/check");
        assert_eq!(request.header("content-length"), Some("2"));
        assert_eq!(request.body, b"hi");
    }

    #[test]
    fn incremental_parser_handles_split_deliveries() {
        let wire = b"POST /v1/check HTTP/1.1\r\nContent-Length: 5\r\nConnection: keep-alive\r\n\r\nhello";
        let mut parser = RequestParser::new();
        // Feed one byte at a time: a request must only pop out at the end.
        for (i, b) in wire.iter().enumerate() {
            parser.push(std::slice::from_ref(b));
            let got = parser.next_request(1 << 20).unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "request completed early at byte {i}");
            } else {
                let request = got.expect("complete request");
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/v1/check");
                assert_eq!(request.body, b"hello");
                assert!(!request.wants_close());
            }
        }
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn incremental_parser_handles_pipelined_requests() {
        let mut parser = RequestParser::new();
        parser.push(
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/check HTTP/1.1\r\nContent-Length: 2\r\nConnection: close\r\n\r\nhi",
        );
        let first = parser.next_request(1 << 20).unwrap().expect("first");
        assert_eq!(first.path, "/healthz");
        assert!(first.body.is_empty());
        let second = parser.next_request(1 << 20).unwrap().expect("second");
        assert_eq!(second.path, "/v1/check");
        assert_eq!(second.body, b"hi");
        assert!(second.wants_close());
        assert!(parser.next_request(1 << 20).unwrap().is_none());
    }

    #[test]
    fn incremental_parser_bounds_lines_and_bodies() {
        let mut parser = RequestParser::new();
        parser.push(&vec![b'a'; 16 * 1024]);
        let err = parser.next_request(1 << 20).unwrap_err();
        assert!(err.to_string().contains("request line exceeds"), "{err}");

        let mut parser = RequestParser::new();
        parser.push(b"GET / HTTP/1.1\r\nx-junk: ");
        parser.push(&vec![b'a'; 16 * 1024]);
        let err = parser.next_request(1 << 20).unwrap_err();
        assert!(err.to_string().contains("header line exceeds"), "{err}");

        let mut parser = RequestParser::new();
        parser.push(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n");
        let err = parser.next_request(10).unwrap_err();
        assert!(err.to_string().contains("exceeds the 10-byte limit"), "{err}");
    }

    #[test]
    fn render_response_picks_the_connection_header() {
        let outcome = Outcome::new(200, "text/plain", b"ok\n".to_vec());
        let keep = String::from_utf8(render_response(&outcome, true)).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"), "{keep}");
        assert!(keep.contains("Content-Length: 3\r\n"), "{keep}");
        let close = String::from_utf8(render_response(&outcome, false)).unwrap();
        assert!(close.contains("Connection: close\r\n"), "{close}");
        assert!(close.ends_with("ok\n"), "{close}");
    }
}
