//! A deliberately minimal HTTP/1.1 layer over `std::net`.
//!
//! One request per connection (`Connection: close`), no chunked encoding,
//! no keep-alive, bodies bounded by a caller-supplied limit. That is all
//! the daemon's wire protocol needs, and it keeps the server's state
//! machine trivial: accept → read one request → write one response → close.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ….
    pub method: String,
    /// Request target, e.g. `/v1/check`.
    pub path: String,
    /// Headers, lowercased names.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP-layer error: either transport or malformed request.
#[derive(Debug)]
pub struct HttpError(pub String);

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError(format!("i/o: {e}"))
    }
}

/// Largest accepted request line or header line, in bytes. Without this
/// bound a client streaming an endless line (never sending `\n`) would make
/// the server buffer it all in memory.
const MAX_LINE: u64 = 8 * 1024;

/// Reads one `\n`-terminated line of at most [`MAX_LINE`] bytes. Returns an
/// empty string at EOF (mirroring `read_line`'s `Ok(0)`).
fn read_bounded_line<R: BufRead>(reader: &mut R, what: &str) -> Result<String, HttpError> {
    let mut line = String::new();
    let n = reader.by_ref().take(MAX_LINE).read_line(&mut line)?;
    if n as u64 >= MAX_LINE && !line.ends_with('\n') {
        return Err(HttpError(format!(
            "{what} exceeds the {MAX_LINE}-byte limit"
        )));
    }
    Ok(line)
}

/// Reads one request from the stream.
///
/// # Errors
///
/// Fails on malformed or over-long request lines/headers, bodies larger
/// than `max_body`, or transport errors (including read timeouts configured
/// on the stream).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_bounded_line(&mut reader, "request line")?;
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1") => (m.to_string(), p.to_string()),
        _ => return Err(HttpError(format!("bad request line `{}`", request_line.trim_end()))),
    };
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_bounded_line(&mut reader, "header line")?;
        if line.is_empty() {
            return Err(HttpError("connection closed mid-headers".into()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError(format!("bad header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError(format!("bad content-length `{value}`")))?;
        }
        headers.push((name, value));
    }
    if content_length > max_body {
        return Err(HttpError(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Writes one response and flushes. `extra_headers` are emitted verbatim
/// (e.g. `("Retry-After", "1")`).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> Result<(), HttpError> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Status",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    Ok(())
}

/// A response as seen by the client side.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the response (client side).
///
/// # Errors
///
/// Fails on transport errors or a malformed status line.
pub fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<Response, HttpError> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: mfcsld\r\nContent-Length: {}\r\n\
         Content-Type: application/json\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError(format!("bad status line `{}`", status_line.trim_end())))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{SocketAddr, TcpListener};

    /// Serves one connection with `read_request` while a client thread
    /// writes `payload`, returning the parse outcome.
    fn parse_payload(payload: Vec<u8>) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr: SocketAddr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            // The server may close mid-write once it hits a limit; that
            // write error is the expected signal, not a test failure.
            let _ = client.write_all(&payload);
            let _ = client.flush();
            client
        });
        let (mut stream, _) = listener.accept().unwrap();
        let outcome = read_request(&mut stream, 1 << 20);
        drop(stream);
        drop(writer.join());
        outcome
    }

    #[test]
    fn read_request_bounds_header_lines() {
        let mut payload = b"GET / HTTP/1.1\r\nx-junk: ".to_vec();
        payload.extend(std::iter::repeat_n(b'a', 16 * 1024));
        let err = parse_payload(payload).unwrap_err();
        assert!(err.to_string().contains("header line exceeds"), "{err}");
    }

    #[test]
    fn read_request_bounds_the_request_line() {
        let payload = vec![b'a'; 16 * 1024];
        let err = parse_payload(payload).unwrap_err();
        assert!(err.to_string().contains("request line exceeds"), "{err}");
    }

    #[test]
    fn read_request_accepts_ordinary_requests() {
        let request =
            parse_payload(b"POST /v1/check HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi".to_vec())
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/check");
        assert_eq!(request.header("content-length"), Some("2"));
        assert_eq!(request.body, b"hi");
    }
}
