//! The `mfcsld` daemon: serving cores, request dispatch, and
//! drain-and-shutdown.
//!
//! Serving mechanics in one paragraph: every route is a pure function from a
//! parsed [`Request`] to an [`Outcome`] — `dispatch` below — so the same
//! handler code runs identically on both serving cores. The default core is
//! the epoll [`reactor`](crate::reactor): a small fixed pool of event-loop
//! threads multiplexing thousands of keep-alive connections, handing parsed
//! requests to worker threads. The original blocking core (one worker per
//! in-flight connection, accept-time admission control) remains available
//! via [`ServingCore::Blocking`]. Check requests resolve a warm
//! [`crate::store::WarmSession`] keyed by `(model, params, tolerances)` and
//! fan their formula batch out through `CheckSession::check_all`, which
//! keeps daemon verdicts bitwise identical to the offline CLI — on either
//! core. `POST /shutdown` flips a shared atomic flag; in-flight requests
//! drain before the daemon exits, and with a `state_dir` configured the
//! store persists every warm session on the way down.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use mfcsl_core::mfcsl::parse_formula;
use mfcsl_core::{CoreError, FaultMode, FaultPlan, Occupancy};
use mfcsl_pool::ThreadPool;

use crate::http::{error_outcome, read_request, render_response, write_response, Outcome, Request};
use crate::json::Json;
use crate::metrics::ServerMetrics;
use crate::reactor::{self, ReactorOptions, RequestHandler};
use crate::registry::ModelRegistry;
use crate::store::{SessionKey, SessionStore, SimKey};

/// Largest accepted request body, in bytes.
const MAX_BODY: usize = 1 << 20;

/// Per-connection socket read timeout (blocking core) and idle-connection
/// timeout (event-loop core): a stalled client cannot pin resources forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Granularity of the debug-sleep loop (which re-checks the deadline
/// between naps).
const SLEEP_SLICE: Duration = Duration::from_millis(5);

/// Upper bound on a request's `timeout_ms` (one hour). Client-supplied
/// values are clamped here before the `Duration` conversion, which panics
/// on overflow.
const MAX_TIMEOUT_MS: f64 = 3_600_000.0;

/// Upper bound on the debug `sleep_ms` field (one minute).
const MAX_SLEEP_MS: f64 = 60_000.0;

/// Most courtesy-rejection threads (writing `429` + draining) allowed at
/// once; connections rejected beyond this are dropped outright so sustained
/// overload cannot turn into unbounded thread churn.
const MAX_REJECTS_IN_FLIGHT: usize = 32;

/// Which serving core moves bytes for the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServingCore {
    /// Edge-triggered epoll event loops multiplexing many keep-alive
    /// connections onto a small fixed thread pool (the default).
    #[default]
    EventLoop,
    /// One worker thread per in-flight connection, close-per-request
    /// (the original core; kept for comparison benchmarks and as a
    /// fallback on kernels without epoll).
    Blocking,
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads popping the admission queue.
    pub workers: usize,
    /// Admission-queue capacity; requests beyond it get `429`.
    pub queue_capacity: usize,
    /// Checking-pool lanes shared by all sessions (`0` → the machine's
    /// available parallelism).
    pub threads: usize,
    /// Most warm sessions retained at once; beyond it the least recently
    /// used session is evicted.
    pub max_sessions: usize,
    /// Honor the debug `sleep_ms` request field (load tests only).
    pub allow_sleep: bool,
    /// Honor the `fault` request field (chaos tests only). Off by default:
    /// without the flag, fault requests get `400 faults_disabled`.
    pub allow_faults: bool,
    /// Which serving core moves bytes.
    pub core: ServingCore,
    /// Event-loop threads (event-loop core only; at least 1).
    pub event_loops: usize,
    /// Warm-state snapshot directory: sessions persist on eviction and on
    /// graceful drain, and are restored at startup, so a restarted daemon
    /// answers its first request warm.
    pub state_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            threads: 0,
            max_sessions: 64,
            allow_sleep: false,
            allow_faults: false,
            core: ServingCore::default(),
            event_loops: 2,
            state_dir: None,
        }
    }
}

/// One admitted connection waiting for a worker (blocking core).
struct Pending {
    stream: TcpStream,
    enqueued_at: Instant,
}

/// State shared by the serving core and the request handlers.
pub(crate) struct Shared {
    registry: ModelRegistry,
    store: SessionStore,
    pool: Arc<ThreadPool>,
    metrics: Arc<ServerMetrics>,
    config: ServerConfig,
    /// Blocking core's admission queue (unused by the event-loop core,
    /// whose bounded queue lives in the reactor).
    queue: Mutex<VecDeque<Pending>>,
    queue_signal: Condvar,
    shutdown: Arc<AtomicBool>,
    /// Event-loop core's live request-queue depth, exported for `/metrics`.
    reactor_depth: Arc<AtomicUsize>,
    /// Courtesy-rejection threads currently writing a `429` (blocking core).
    rejects_in_flight: AtomicUsize,
    local_addr: SocketAddr,
}

/// A bound-but-not-yet-running daemon. [`Server::bind`] then
/// [`Server::run`]; `run` blocks until a `POST /shutdown` drains the queue.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the shared state. With a `state_dir`
    /// configured, previously persisted sessions are restored here, before
    /// the first request can arrive.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(registry: ModelRegistry, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let pool = Arc::new(if config.threads == 0 {
            ThreadPool::with_default_parallelism()
        } else {
            ThreadPool::new(config.threads)
        });
        let store = SessionStore::new(
            Arc::clone(&pool),
            config.max_sessions,
            config.state_dir.clone(),
        );
        store.load_state_dir(&registry);
        let shared = Arc::new(Shared {
            registry,
            store,
            pool,
            metrics: Arc::new(ServerMetrics::new()),
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_signal: Condvar::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
            reactor_depth: Arc::new(AtomicUsize::new(0)),
            rejects_in_flight: AtomicUsize::new(0),
            local_addr,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Runs the daemon on the configured serving core until a
    /// `POST /shutdown` drains it, then persists warm state (when a
    /// `state_dir` is configured). Returns when the last in-flight request
    /// finished.
    ///
    /// # Errors
    ///
    /// Propagates transport and event-loop setup failures.
    pub fn run(self) -> std::io::Result<()> {
        match self.shared.config.core {
            ServingCore::EventLoop => self.run_reactor(),
            ServingCore::Blocking => self.run_blocking(),
        }
    }

    /// Event-loop core: hand the listener to the reactor; `dispatch` runs
    /// on its worker threads.
    fn run_reactor(self) -> std::io::Result<()> {
        let shared = Arc::clone(&self.shared);
        let handler: Arc<dyn RequestHandler> = Arc::new(DaemonHandler {
            shared: Arc::clone(&shared),
        });
        let options = ReactorOptions {
            event_loops: shared.config.event_loops,
            workers: shared.config.workers,
            queue_capacity: shared.config.queue_capacity,
            max_body: MAX_BODY,
            idle_timeout: READ_TIMEOUT,
            metrics: Arc::clone(&shared.metrics),
            shutdown: Arc::clone(&shared.shutdown),
            queue_depth: Arc::clone(&shared.reactor_depth),
        };
        reactor::run(self.listener, handler, options)?;
        shared.store.save_all();
        Ok(())
    }

    /// Blocking core: accept loop + admission queue + one worker thread per
    /// in-flight connection.
    fn run_blocking(self) -> std::io::Result<()> {
        let workers: Vec<_> = (0..self.shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("mfcsld-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<_>>()?;

        for incoming in self.listener.incoming() {
            let stream = match incoming {
                Ok(s) => s,
                // Transient accept errors (e.g. aborted handshakes) should
                // not take the daemon down.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                // The wakeup connection (or a late client); drop it and
                // stop accepting.
                drop(stream);
                break;
            }
            let _ = stream.set_nodelay(true);
            admit(&self.shared, stream);
        }

        // Drain: workers finish whatever is queued, then exit.
        self.shared.queue_signal.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        self.shared.store.save_all();
        Ok(())
    }
}

/// Adapts the daemon's dispatcher to the reactor's handler trait.
struct DaemonHandler {
    shared: Arc<Shared>,
}

impl RequestHandler for DaemonHandler {
    fn handle(&self, request: &Request, enqueued_at: Instant) -> Outcome {
        dispatch(&self.shared, request, enqueued_at)
    }
}

/// Acquires the admission queue's mutex. The queue holds plain connection
/// handles with no invariants a panic mid-update could break, so a poisoned
/// lock is recovered rather than propagated — one panicking handler must
/// never wedge every worker.
fn lock_queue(shared: &Shared) -> MutexGuard<'_, VecDeque<Pending>> {
    shared.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Accept-time admission control: queue the connection or `429` it
/// (blocking core).
fn admit(shared: &Arc<Shared>, stream: TcpStream) {
    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
    let mut queue = lock_queue(shared);
    if queue.len() >= shared.config.queue_capacity {
        drop(queue);
        shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        // Rejection runs off the accept loop so a slow client cannot stall
        // admission. After writing the 429 the request bytes are drained
        // until the client closes: dropping a socket with unread data
        // sends a TCP reset, which would destroy the in-flight response.
        // The courtesy threads are bounded: past the cap the connection is
        // shed outright (the client sees a reset), because spawning one
        // thread per rejection under sustained overload would amplify the
        // very resource pressure the 429 signals.
        if shared.rejects_in_flight.load(Ordering::Relaxed) >= MAX_REJECTS_IN_FLIGHT {
            drop(stream);
            return;
        }
        shared.rejects_in_flight.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let mut stream = stream;
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            let body = Json::Obj(vec![
                ("error".into(), Json::from("admission queue full, retry shortly")),
                ("code".into(), Json::from("queue_full")),
            ])
            .render();
            let _ = write_response(
                &mut stream,
                429,
                "application/json",
                &[("Retry-After", "1".to_string())],
                body.as_bytes(),
            );
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let mut sink = [0u8; 1024];
            while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
            shared.rejects_in_flight.fetch_sub(1, Ordering::Relaxed);
        });
        return;
    }
    shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
    queue.push_back(Pending {
        stream,
        enqueued_at: Instant::now(),
    });
    drop(queue);
    shared.queue_signal.notify_one();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let pending = {
            let mut queue = lock_queue(shared);
            loop {
                if let Some(p) = queue.pop_front() {
                    break Some(p);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .queue_signal
                    .wait_timeout(queue, Duration::from_millis(200))
                    .map(|(guard, _)| guard)
                    .unwrap_or_else(|poisoned| poisoned.into_inner().0);
            }
        };
        let Some(pending) = pending else {
            return; // shutdown with an empty queue: drained.
        };
        // A panicking handler must cost one connection, not the worker: an
        // unrecovered unwind here would silently shrink the worker pool
        // until the daemon accepts but never serves.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(shared, pending);
        }));
        if outcome.is_err() {
            shared.metrics.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Blocking core: parse one request, dispatch it, answer, close.
fn handle_connection(shared: &Arc<Shared>, pending: Pending) {
    let Pending {
        mut stream,
        enqueued_at,
    } = pending;
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match read_request(&mut stream, MAX_BODY) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut stream, 400, "bad_request", &e.to_string());
            return;
        }
    };
    let outcome = dispatch(shared, &request, enqueued_at);
    if outcome.shutdown {
        shared.shutdown.store(true, Ordering::SeqCst);
    }
    use std::io::Write as _;
    let _ = stream.write_all(&render_response(&outcome, false));
    if outcome.shutdown {
        // Wake the accept loop so it observes the flag, and every worker
        // waiting on the queue.
        let _ = TcpStream::connect(shared.local_addr);
        shared.queue_signal.notify_all();
    }
}

/// The routing table: one parsed request in, one response out. Pure with
/// respect to the transport, so both serving cores (and any test harness)
/// produce byte-identical response bodies.
fn dispatch(shared: &Arc<Shared>, request: &Request, enqueued_at: Instant) -> Outcome {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Outcome::new(200, "text/plain", b"ok\n".to_vec()),
        ("GET", "/metrics") => {
            let (depth, cap) = match shared.config.core {
                ServingCore::EventLoop => (
                    shared.reactor_depth.load(Ordering::Relaxed),
                    shared.config.queue_capacity,
                ),
                ServingCore::Blocking => {
                    let queue = lock_queue(shared);
                    (queue.len(), shared.config.queue_capacity)
                }
            };
            let body = shared.metrics.render(
                &shared.store.merged_stats(),
                &shared.pool.stats(),
                shared.store.len(),
                shared.store.evicted(),
                shared.store.quarantined(),
                depth,
                cap,
                &shared.store.snapshot_counters(),
            );
            Outcome::new(200, "text/plain", body.into_bytes())
        }
        ("GET", "/v1/models") => {
            let names = Json::Arr(
                shared
                    .registry
                    .names()
                    .into_iter()
                    .map(Json::from)
                    .collect(),
            );
            let body = Json::Obj(vec![("models".into(), names)]).render();
            Outcome::new(200, "application/json", body.into_bytes())
        }
        ("POST", "/shutdown") => {
            let body = Json::Obj(vec![("draining".into(), Json::Bool(true))]).render();
            let mut outcome = Outcome::new(200, "application/json", body.into_bytes());
            outcome.shutdown = true;
            outcome.close = true;
            outcome
        }
        ("POST", "/v1/check") => handle_check(shared, request, enqueued_at),
        ("POST", "/v1/prewarm") => handle_prewarm(shared, request),
        _ => {
            shared.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
            error_outcome(
                404,
                "not_found",
                &format!("no route {} {}", request.method, request.path),
            )
        }
    }
}

/// Bumps the client-error counter and builds the error response.
fn client_error(shared: &Shared, status: u16, code: &str, message: &str) -> Outcome {
    shared.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
    error_outcome(status, code, message)
}

/// First top-level field of `body` that the route does not know, if any. A
/// typo'd field name (`"poplation"`) must fail loudly with a structured
/// `400` naming the field, never be silently ignored — silently dropping
/// `"population"` would answer a statistical question with the mean-field
/// engine.
fn unknown_field<'a>(body: &'a Json, known: &[&str]) -> Option<&'a str> {
    match body {
        Json::Obj(fields) => fields
            .iter()
            .map(|(name, _)| name.as_str())
            .find(|name| !known.contains(name)),
        _ => None,
    }
}

/// Decodes an optional non-negative integer field (population sizes,
/// replication counts, seeds).
fn uint_field(body: &Json, name: &str) -> Result<Option<u64>, String> {
    match body.get(name) {
        None => Ok(None),
        Some(v) => match v.as_f64() {
            Some(n) if n.is_finite() && n >= 0.0 && n <= 2f64.powi(53) && n.fract() == 0.0 => {
                Ok(Some(n as u64))
            }
            _ => Err(format!("`{name}` must be a non-negative integer")),
        },
    }
}

/// `POST /v1/check`: one formula batch against one model/occupancy.
fn handle_check(shared: &Arc<Shared>, request: &Request, enqueued_at: Instant) -> Outcome {
    let body = match std::str::from_utf8(&request.body)
        .map_err(|e| e.to_string())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(e) => {
            return client_error(shared, 400, "bad_request", &format!("bad JSON body: {e}"))
        }
    };

    // -- decode ----------------------------------------------------------
    const KNOWN_FIELDS: &[&str] = &[
        "model",
        "m0",
        "formulas",
        "fast",
        "params",
        "fault",
        "timeout_ms",
        "sleep_ms",
        "mode",
        "population",
        "replications",
        "seed",
    ];
    if let Some(name) = unknown_field(&body, KNOWN_FIELDS) {
        return client_error(
            shared,
            400,
            "bad_request",
            &format!("unknown request field `{name}`"),
        );
    }
    let Some(model_name) = body.get("model").and_then(Json::as_str) else {
        return client_error(shared, 400, "bad_request", "missing string field `model`");
    };
    if shared.registry.get(model_name).is_none() {
        return client_error(
            shared,
            404,
            "unknown_model",
            &format!("unknown model `{model_name}`"),
        );
    }
    let Some(m0_values) = body.get("m0").and_then(Json::as_arr) else {
        return client_error(shared, 400, "bad_request", "missing array field `m0`");
    };
    let Some(formula_texts) = body.get("formulas").and_then(Json::as_arr) else {
        return client_error(shared, 400, "bad_request", "missing array field `formulas`");
    };
    let fast = body.get("fast").and_then(Json::as_bool).unwrap_or(false);
    let overrides = match body.get("params") {
        None => std::collections::BTreeMap::new(),
        Some(v) => match v.as_num_map() {
            Some(m) => m,
            None => {
                return client_error(shared, 400, "bad_request", "`params` must map names to numbers")
            }
        },
    };
    let fault = match parse_fault(&body, shared.config.allow_faults) {
        Ok(f) => f,
        Err((code, message)) => return client_error(shared, 400, code, &message),
    };
    let simulate = match body.get("mode") {
        None => false,
        Some(v) => match v.as_str() {
            Some("meanfield") => false,
            Some("simulate") => true,
            _ => {
                return client_error(
                    shared,
                    400,
                    "bad_request",
                    "`mode` must be \"meanfield\" or \"simulate\"",
                )
            }
        },
    };
    let mut sim_fields = [None; 3];
    for (slot, name) in sim_fields.iter_mut().zip(["population", "replications", "seed"]) {
        *slot = match uint_field(&body, name) {
            Ok(v) => v,
            Err(e) => return client_error(shared, 400, "bad_request", &e),
        };
        if !simulate && slot.is_some() {
            return client_error(
                shared,
                400,
                "bad_request",
                &format!("`{name}` requires \"mode\": \"simulate\""),
            );
        }
    }
    if simulate && fault.is_some() {
        return client_error(
            shared,
            400,
            "bad_request",
            "`fault` is not supported with \"mode\": \"simulate\"",
        );
    }
    let timeout_ms = match millis_field(&body, "timeout_ms", MAX_TIMEOUT_MS) {
        Ok(v) => v,
        Err(e) => return client_error(shared, 400, "bad_request", &e),
    };
    let deadline = timeout_ms.map(|ms| enqueued_at + Duration::from_secs_f64(ms / 1e3));
    let sleep_ms = match millis_field(&body, "sleep_ms", MAX_SLEEP_MS) {
        Ok(v) => v.unwrap_or(0.0),
        Err(e) => return client_error(shared, 400, "bad_request", &e),
    };

    // -- debug sleep (load tests), slice-wise so deadlines still fire ----
    if shared.config.allow_sleep && sleep_ms > 0.0 {
        let until = Instant::now() + Duration::from_secs_f64(sleep_ms / 1e3);
        while Instant::now() < until {
            if past(deadline) {
                return timeout(shared, enqueued_at);
            }
            std::thread::sleep(SLEEP_SLICE.min(until - Instant::now()));
        }
    }
    if past(deadline) {
        return timeout(shared, enqueued_at);
    }

    // -- validate against the engine's own types -------------------------
    let fractions: Option<Vec<f64>> = m0_values.iter().map(Json::as_f64).collect();
    let m0 = match fractions
        .ok_or_else(|| "`m0` must contain numbers".to_string())
        .and_then(|f| Occupancy::new(f).map_err(|e| e.to_string()))
    {
        Ok(m) => m,
        Err(e) => return client_error(shared, 400, "bad_request", &format!("bad `m0`: {e}")),
    };
    let texts: Option<Vec<&str>> = formula_texts.iter().map(Json::as_str).collect();
    let Some(texts) = texts else {
        return client_error(shared, 400, "bad_request", "`formulas` must contain strings");
    };
    if texts.is_empty() {
        return client_error(shared, 400, "bad_request", "`formulas` must not be empty");
    }
    let psis: Result<Vec<_>, _> = texts.iter().map(|t| parse_formula(t)).collect();
    let psis = match psis {
        Ok(p) => p,
        Err(e) => return client_error(shared, 400, "bad_request", &format!("bad formula: {e}")),
    };

    // -- resolve the warm session ----------------------------------------
    let mut key = SessionKey::new(model_name, &overrides, fast, fault);
    if simulate {
        key.sim = Some(SimKey {
            population: sim_fields[0].unwrap_or(100),
            replications: sim_fields[1].unwrap_or(200),
            seed: sim_fields[2].unwrap_or(0),
        });
    }
    let (session, warm) = match shared.store.get_or_create(&shared.registry, &key) {
        Ok(pair) => pair,
        Err(e) => {
            let (status, code) = if e.to_string().contains("unknown model") {
                (404, "unknown_model")
            } else {
                (400, "bad_request")
            };
            return client_error(shared, status, code, &e.to_string());
        }
    };
    if warm {
        shared.metrics.warm_hits.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.metrics.cold_starts.fetch_add(1, Ordering::Relaxed);
    }
    if past(deadline) {
        return timeout(shared, enqueued_at);
    }

    // -- check ------------------------------------------------------------
    let started = Instant::now();
    if let Some(sim) = key.sim {
        let verdicts = match session.simulate_all(&psis, &m0) {
            Ok(v) => {
                shared.store.record_success(&key);
                v
            }
            Err(e) => {
                let (status, code) = classify_engine_error(&e);
                if status >= 500 {
                    shared.metrics.engine_errors.fetch_add(1, Ordering::Relaxed);
                    shared.store.record_failure(&key);
                } else {
                    shared.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
                }
                return error_outcome(status, code, &e.to_string());
            }
        };
        let micros = started.elapsed().as_secs_f64() * 1e6;
        let batch = verdicts
            .iter()
            .map(|v| v.replications as u64)
            .max()
            .unwrap_or(0);
        let rendered: Vec<Json> = psis
            .iter()
            .zip(&verdicts)
            .map(|(psi, v)| {
                let estimates: Vec<Json> = v
                    .operators
                    .iter()
                    .map(|op| {
                        Json::Obj(vec![
                            ("operator".into(), Json::Str(op.operator.clone())),
                            ("mean".into(), Json::Num(op.estimate.mean)),
                            ("lo".into(), Json::Num(op.estimate.lo)),
                            ("hi".into(), Json::Num(op.estimate.hi)),
                            ("n".into(), Json::Num(op.estimate.n as f64)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("formula".into(), Json::Str(psi.to_string())),
                    ("holds".into(), Json::Bool(v.holds)),
                    ("marginal".into(), Json::Bool(v.marginal)),
                    ("estimates".into(), Json::Arr(estimates)),
                ])
            })
            .collect();
        let response = Json::Obj(vec![
            ("model".into(), Json::from(model_name)),
            ("m0".into(), Json::Str(m0.to_string())),
            ("mode".into(), Json::from("simulate")),
            ("population".into(), Json::Num(sim.population as f64)),
            ("replications".into(), Json::Num(batch as f64)),
            ("verdicts".into(), Json::Arr(rendered)),
            ("warm".into(), Json::Bool(warm)),
            ("micros".into(), Json::Num(micros)),
        ])
        .render();
        shared.metrics.simulate_requests.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .simulate_replications
            .fetch_add(batch, Ordering::Relaxed);
        shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
        shared.metrics.observe_latency(enqueued_at.elapsed());
        return Outcome::new(200, "application/json", response.into_bytes());
    }
    let verdicts = match session.check_all(&psis, &m0) {
        Ok(v) => {
            shared.store.record_success(&key);
            v
        }
        Err(e) => {
            // An engine failure on validated input is the daemon's problem,
            // not the client's: answer 500 with a machine-readable code (the
            // worker survives either way), and count the session toward
            // quarantine so a poisoned cache cannot keep failing forever.
            let (status, code) = classify_engine_error(&e);
            if status >= 500 {
                shared.metrics.engine_errors.fetch_add(1, Ordering::Relaxed);
                shared.store.record_failure(&key);
            } else {
                shared.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
            }
            return error_outcome(status, code, &e.to_string());
        }
    };
    let micros = started.elapsed().as_secs_f64() * 1e6;

    // Formulas are echoed back *rendered* (the parsed form's display), so
    // clients can print lines bitwise identical to `mfcsl check`.
    let rendered: Vec<Json> = psis
        .iter()
        .zip(&verdicts)
        .map(|(psi, v)| {
            let mut fields = vec![
                ("formula".into(), Json::Str(psi.to_string())),
                ("holds".into(), Json::Bool(v.holds())),
                ("marginal".into(), Json::Bool(v.is_marginal())),
            ];
            if let Some(r) = v.refinement() {
                fields.push((
                    "refinement".into(),
                    Json::Obj(vec![
                        ("rounds".into(), Json::Num(f64::from(r.rounds))),
                        ("final_margin".into(), Json::Num(r.final_margin)),
                        ("decided".into(), Json::Bool(r.decided)),
                    ]),
                ));
            }
            Json::Obj(fields)
        })
        .collect();
    let response = Json::Obj(vec![
        ("model".into(), Json::from(model_name)),
        ("m0".into(), Json::Str(m0.to_string())),
        ("fast".into(), Json::Bool(fast)),
        ("verdicts".into(), Json::Arr(rendered)),
        ("warm".into(), Json::Bool(warm)),
        ("micros".into(), Json::Num(micros)),
    ])
    .render();
    shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
    shared.metrics.observe_latency(enqueued_at.elapsed());
    Outcome::new(200, "application/json", response.into_bytes())
}

/// `POST /v1/prewarm`: solve a sweep of initial occupancies for one model
/// with one batched Dopri5 drive, so subsequent `/v1/check` requests find
/// their trajectories warm. Body:
/// `{"model": "...", "m0s": [[...], ...], "horizon": T,
///   "fast"?: bool, "params"?: {...}}`. Answers
/// `{"model", "warmed": n, "lanes": len(m0s), "warm": bool, "micros"}`.
/// The batch runs with per-lane controllers, so a prewarmed session's
/// verdicts stay bitwise identical to a cold one's.
fn handle_prewarm(shared: &Arc<Shared>, request: &Request) -> Outcome {
    let body = match std::str::from_utf8(&request.body)
        .map_err(|e| e.to_string())
        .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
    {
        Ok(v) => v,
        Err(e) => {
            return client_error(shared, 400, "bad_request", &format!("bad JSON body: {e}"))
        }
    };
    if let Some(name) = unknown_field(&body, &["model", "m0s", "horizon", "fast", "params"]) {
        return client_error(
            shared,
            400,
            "bad_request",
            &format!("unknown request field `{name}`"),
        );
    }
    let Some(model_name) = body.get("model").and_then(Json::as_str) else {
        return client_error(shared, 400, "bad_request", "missing string field `model`");
    };
    if shared.registry.get(model_name).is_none() {
        return client_error(
            shared,
            404,
            "unknown_model",
            &format!("unknown model `{model_name}`"),
        );
    }
    let Some(lanes) = body.get("m0s").and_then(Json::as_arr) else {
        return client_error(shared, 400, "bad_request", "missing array field `m0s`");
    };
    let mut m0s = Vec::with_capacity(lanes.len());
    for (i, lane) in lanes.iter().enumerate() {
        let fractions: Option<Vec<f64>> = lane
            .as_arr()
            .map(|vs| vs.iter().map(Json::as_f64).collect())
            .unwrap_or(None);
        let m0 = fractions
            .ok_or_else(|| "must be an array of numbers".to_string())
            .and_then(|f| Occupancy::new(f).map_err(|e| e.to_string()));
        match m0 {
            Ok(m) => m0s.push(m),
            Err(e) => {
                return client_error(shared, 400, "bad_request", &format!("bad `m0s[{i}]`: {e}"))
            }
        }
    }
    let horizon = match body.get("horizon").and_then(Json::as_f64) {
        Some(t) if t.is_finite() && t > 0.0 => t,
        _ => {
            return client_error(
                shared,
                400,
                "bad_request",
                "`horizon` must be a finite positive time",
            )
        }
    };
    let fast = body.get("fast").and_then(Json::as_bool).unwrap_or(false);
    let overrides = match body.get("params") {
        None => std::collections::BTreeMap::new(),
        Some(v) => match v.as_num_map() {
            Some(m) => m,
            None => {
                return client_error(shared, 400, "bad_request", "`params` must map names to numbers")
            }
        },
    };

    // Prewarm never runs on a faulted session: the fault stream is defined
    // over scalar solves, and the engine itself declines batching there.
    let key = SessionKey::new(model_name, &overrides, fast, None);
    let (session, warm) = match shared.store.get_or_create(&shared.registry, &key) {
        Ok(pair) => pair,
        Err(e) => {
            let (status, code) = if e.to_string().contains("unknown model") {
                (404, "unknown_model")
            } else {
                (400, "bad_request")
            };
            return client_error(shared, status, code, &e.to_string());
        }
    };
    if warm {
        shared.metrics.warm_hits.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.metrics.cold_starts.fetch_add(1, Ordering::Relaxed);
    }
    let started = Instant::now();
    let warmed = match session.prewarm(&m0s, horizon) {
        Ok(n) => {
            shared.store.record_success(&key);
            n
        }
        Err(e) => {
            let (status, code) = classify_engine_error(&e);
            if status >= 500 {
                shared.metrics.engine_errors.fetch_add(1, Ordering::Relaxed);
                shared.store.record_failure(&key);
            } else {
                shared.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
            }
            return error_outcome(status, code, &e.to_string());
        }
    };
    let micros = started.elapsed().as_secs_f64() * 1e6;
    shared.metrics.prewarms.fetch_add(1, Ordering::Relaxed);
    let response = Json::Obj(vec![
        ("model".into(), Json::from(model_name)),
        ("warmed".into(), Json::Num(warmed as f64)),
        ("lanes".into(), Json::Num(m0s.len() as f64)),
        ("warm".into(), Json::Bool(warm)),
        ("micros".into(), Json::Num(micros)),
    ])
    .render();
    Outcome::new(200, "application/json", response.into_bytes())
}

/// Decodes an optional millisecond field. Non-numbers, negatives, and
/// non-finite values (`1e999` parses to infinity) are rejected — fed raw to
/// `Duration::from_secs_f64` they would panic and kill the worker — and
/// finite values are clamped to `cap_ms`.
fn millis_field(body: &Json, name: &str, cap_ms: f64) -> Result<Option<f64>, String> {
    match body.get(name) {
        None => Ok(None),
        Some(v) => match v.as_f64() {
            Some(ms) if ms.is_finite() && ms >= 0.0 => Ok(Some(ms.min(cap_ms))),
            _ => Err(format!(
                "`{name}` must be a finite non-negative number of milliseconds"
            )),
        },
    }
}

/// Decodes the optional `fault` request object (chaos tests only):
/// `{"mode": "nan"|"reject"|"stiffen", "period"?: n, "seed"?: n}`. Requires
/// the daemon to run with fault injection enabled.
fn parse_fault(
    body: &Json,
    allow_faults: bool,
) -> Result<Option<FaultPlan>, (&'static str, String)> {
    let Some(spec) = body.get("fault") else {
        return Ok(None);
    };
    if !allow_faults {
        return Err((
            "faults_disabled",
            "fault injection is disabled; start the daemon with --allow-faults".into(),
        ));
    }
    let mode = spec
        .get("mode")
        .and_then(Json::as_str)
        .and_then(FaultMode::parse)
        .ok_or_else(|| {
            (
                "bad_request",
                "`fault.mode` must be one of `nan`, `reject`, `stiffen`".to_string(),
            )
        })?;
    let uint_field = |name: &str, default: u64| match spec.get(name) {
        None => Ok(default),
        Some(v) => match v.as_f64() {
            Some(n) if n.is_finite() && n >= 0.0 && n <= 2f64.powi(53) && n.fract() == 0.0 => {
                Ok(n as u64)
            }
            _ => Err((
                "bad_request",
                format!("`fault.{name}` must be a non-negative integer"),
            )),
        },
    };
    let period = uint_field("period", 1)?;
    let seed = uint_field("seed", 0)?;
    Ok(Some(FaultPlan::new(mode, period, seed)))
}

/// Maps a checking failure to `(status, code)`. Input-shaped errors that
/// slipped past request validation stay `4xx`; anything numerical — the
/// solver, the transient/uniformization layer, linear algebra — is the
/// engine's own failure and must surface as `500`, never as a client fault
/// and never as a dead worker.
fn classify_engine_error(e: &CoreError) -> (u16, &'static str) {
    use mfcsl_csl::CslError;
    match e {
        CoreError::UnknownState(_)
        | CoreError::InvalidModel(_)
        | CoreError::InvalidRate { .. }
        | CoreError::Parse { .. }
        | CoreError::InvalidArgument(_) => (400, "bad_request"),
        CoreError::NoStationaryPoint(_) => (400, "no_stationary_point"),
        // The CSL layer wraps both input-shaped complaints (a typo'd label,
        // an unsupported fragment) and genuine numerical failures; only the
        // latter are the daemon's fault.
        CoreError::Csl(
            CslError::UnknownAtomicProposition(_)
            | CslError::Parse { .. }
            | CslError::Unsupported(_)
            | CslError::InvalidArgument(_),
        ) => (400, "bad_request"),
        CoreError::Csl(CslError::NoStationaryDistribution) => (400, "no_stationary_point"),
        CoreError::Csl(CslError::Ctmc(_) | CslError::Ode(_) | CslError::Math(_))
        | CoreError::Ctmc(_)
        | CoreError::Ode(_)
        | CoreError::Math(_) => (500, "engine_numerical"),
    }
}

fn past(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn timeout(shared: &Arc<Shared>, enqueued_at: Instant) -> Outcome {
    shared.metrics.timed_out.fetch_add(1, Ordering::Relaxed);
    shared.metrics.observe_latency(enqueued_at.elapsed());
    error_outcome(504, "deadline_exceeded", "deadline exceeded")
}

fn respond_error(stream: &mut TcpStream, status: u16, code: &str, message: &str) {
    let body = Json::Obj(vec![
        ("error".into(), Json::from(message)),
        ("code".into(), Json::from(code)),
    ])
    .render();
    let _ = write_response(stream, status, "application/json", &[], body.as_bytes());
}
