//! Server-side counters and the text `/metrics` rendering.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mfcsl_core::mfcsl::EngineStats;
use mfcsl_pool::PoolStats;

/// Snapshot-persistence counters, read out of the session store for one
/// `/metrics` rendering.
#[derive(Debug, Default, Clone, Copy)]
pub struct SnapshotCounters {
    /// Snapshots written (on eviction and on graceful drain).
    pub saved: u64,
    /// Snapshots restored into warm sessions at startup.
    pub loaded: u64,
    /// Snapshot files skipped: corrupt, truncated, wrong schema version,
    /// or referencing a model the registry no longer has.
    pub rejected: u64,
}

/// Upper edges of the request-latency histogram buckets, in microseconds
/// (roughly half-decade spacing); the last bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    100, 316, 1_000, 3_160, 10_000, 31_600, 100_000, 316_000, 1_000_000, 3_160_000,
];

/// Daemon-wide counters. All relaxed atomics: the numbers are monotonic
/// telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// TCP connections accepted, across both serving cores. With keep-alive
    /// clients this grows much slower than the request counters — the gap
    /// is the reuse the reactor buys.
    pub connections: AtomicU64,
    /// Requests admitted into the work queue (one per connection on the
    /// blocking core, one per parsed request on the reactor).
    pub accepted: AtomicU64,
    /// Connections turned away with `429` because the queue was full.
    pub rejected: AtomicU64,
    /// Requests that hit their deadline and got `504`.
    pub timed_out: AtomicU64,
    /// Check requests answered `200`.
    pub completed: AtomicU64,
    /// Requests answered `4xx` (bad body, unknown model/path, …).
    pub client_errors: AtomicU64,
    /// Requests answered `500` because the engine itself failed (numerical
    /// breakdown, exhausted recovery ladder) — never a worker death.
    pub engine_errors: AtomicU64,
    /// Handler panics caught by the worker loop (each costs one
    /// connection, never a worker).
    pub panics: AtomicU64,
    /// Check requests that found their session warm.
    pub warm_hits: AtomicU64,
    /// Check requests that had to build a cold session.
    pub cold_starts: AtomicU64,
    /// `POST /v1/prewarm` requests answered `200`.
    pub prewarms: AtomicU64,
    /// `"mode": "simulate"` check requests answered `200`.
    pub simulate_requests: AtomicU64,
    /// SSA replications backing completed simulate answers (batch sizes
    /// after sequential growth; memoized batches count once, at creation).
    pub simulate_replications: AtomicU64,
    /// Latency histogram counts, one per entry of [`LATENCY_BUCKETS_US`]
    /// plus a final overflow bucket.
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    /// Sum of observed latencies, in microseconds.
    latency_sum_us: AtomicU64,
    /// Number of observed latencies.
    latency_count: AtomicU64,
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    /// Records one queue-to-response latency.
    pub fn observe_latency(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&edge| us <= edge)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the `/metrics` document: server counters, the latency
    /// histogram (cumulative, Prometheus style), merged engine counters
    /// over all warm sessions, and pool occupancy.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn render(
        &self,
        engine: &EngineStats,
        pool: &PoolStats,
        sessions: usize,
        sessions_evicted: u64,
        sessions_quarantined: u64,
        queue_depth: usize,
        queue_capacity: usize,
        snapshots: &SnapshotCounters,
    ) -> String {
        use std::fmt::Write as _;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::new();
        fn line(out: &mut String, name: &str, value: String) {
            let _ = writeln!(out, "{name} {value}");
        }
        line(&mut out, "mfcsld_connections_total", g(&self.connections).to_string());
        line(&mut out, "mfcsld_requests_accepted_total", g(&self.accepted).to_string());
        line(&mut out, "mfcsld_requests_rejected_total", g(&self.rejected).to_string());
        line(&mut out, "mfcsld_requests_timed_out_total", g(&self.timed_out).to_string());
        line(&mut out, "mfcsld_requests_completed_total", g(&self.completed).to_string());
        line(&mut out, "mfcsld_requests_client_errors_total", g(&self.client_errors).to_string());
        line(&mut out, "mfcsld_requests_engine_errors_total", g(&self.engine_errors).to_string());
        line(&mut out, "mfcsld_worker_panics_total", g(&self.panics).to_string());
        line(&mut out, "mfcsld_sessions_warm", sessions.to_string());
        line(&mut out, "mfcsld_sessions_evicted_total", sessions_evicted.to_string());
        line(&mut out, "mfcsld_sessions_quarantined_total", sessions_quarantined.to_string());
        line(&mut out, "mfcsld_session_warm_hits_total", g(&self.warm_hits).to_string());
        line(&mut out, "mfcsld_session_cold_starts_total", g(&self.cold_starts).to_string());
        line(&mut out, "mfcsld_prewarm_requests_total", g(&self.prewarms).to_string());
        line(&mut out, "mfcsld_simulate_requests_total", g(&self.simulate_requests).to_string());
        line(
            &mut out,
            "mfcsld_simulate_replications_total",
            g(&self.simulate_replications).to_string(),
        );
        line(&mut out, "mfcsld_snapshot_saved_total", snapshots.saved.to_string());
        line(&mut out, "mfcsld_snapshot_loaded_total", snapshots.loaded.to_string());
        line(&mut out, "mfcsld_snapshot_rejected_total", snapshots.rejected.to_string());
        line(&mut out, "mfcsld_queue_depth", queue_depth.to_string());
        line(&mut out, "mfcsld_queue_capacity", queue_capacity.to_string());
        let mut cumulative = 0;
        for (i, edge) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += g(&self.buckets[i]);
            let _ = writeln!(
                out,
                "mfcsld_request_latency_us_bucket{{le=\"{edge}\"}} {cumulative}"
            );
        }
        cumulative += g(&self.buckets[LATENCY_BUCKETS_US.len()]);
        let _ = writeln!(
            out,
            "mfcsld_request_latency_us_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        line(&mut out, "mfcsld_request_latency_us_sum", g(&self.latency_sum_us).to_string());
        line(&mut out, "mfcsld_request_latency_us_count", g(&self.latency_count).to_string());
        line(&mut out, "mfcsld_engine_trajectory_solves_total", engine.trajectory_solves.to_string());
        line(
            &mut out,
            "mfcsld_engine_trajectory_extensions_total",
            engine.trajectory_extensions.to_string(),
        );
        line(&mut out, "mfcsld_engine_trajectory_reuses_total", engine.trajectory_reuses.to_string());
        line(
            &mut out,
            "mfcsld_engine_trajectory_restores_total",
            engine.trajectory_restores.to_string(),
        );
        line(&mut out, "mfcsld_engine_regime_solves_total", engine.regime_solves.to_string());
        line(&mut out, "mfcsld_engine_regime_reuses_total", engine.regime_reuses.to_string());
        line(&mut out, "mfcsld_engine_recoveries_total", engine.recoveries.to_string());
        line(&mut out, "mfcsld_engine_stiff_fallbacks_total", engine.stiff_fallbacks.to_string());
        line(&mut out, "mfcsld_engine_refined_verdicts_total", engine.refined_verdicts.to_string());
        line(&mut out, "mfcsld_engine_refine_rounds_total", engine.refine_rounds.to_string());
        line(&mut out, "mfcsld_engine_prewarm_lanes_total", engine.batch_prewarmed.to_string());
        line(&mut out, "mfcsld_engine_sat_set_hits_total", engine.cache.set_hits.to_string());
        line(&mut out, "mfcsld_engine_sat_set_misses_total", engine.cache.set_misses.to_string());
        line(&mut out, "mfcsld_engine_curve_hits_total", engine.cache.curve_hits.to_string());
        line(&mut out, "mfcsld_engine_curve_misses_total", engine.cache.curve_misses.to_string());
        line(&mut out, "mfcsld_engine_rhs_evals_total", engine.total_rhs_evals().to_string());
        line(&mut out, "mfcsld_engine_ode_solves_total", engine.solves.len().to_string());
        line(&mut out, "mfcsld_pool_threads", pool.threads.to_string());
        line(&mut out, "mfcsld_pool_tasks_total", pool.total_tasks.to_string());
        line(&mut out, "mfcsld_pool_utilization", format!("{:.6}", pool.utilization));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_render() {
        let m = ServerMetrics::new();
        m.observe_latency(Duration::from_micros(50)); // bucket le=100
        m.observe_latency(Duration::from_micros(100)); // still le=100 (inclusive)
        m.observe_latency(Duration::from_micros(2_000)); // le=3160
        m.observe_latency(Duration::from_secs(60)); // overflow
        m.accepted.fetch_add(4, Ordering::Relaxed);
        m.completed.fetch_add(3, Ordering::Relaxed);
        let pool = mfcsl_pool::ThreadPool::new(1);
        let snapshots = SnapshotCounters {
            saved: 2,
            loaded: 1,
            rejected: 3,
        };
        let text = m.render(&EngineStats::default(), &pool.stats(), 2, 5, 1, 1, 32, &snapshots);
        assert!(text.contains("mfcsld_requests_accepted_total 4"), "{text}");
        assert!(text.contains("mfcsld_connections_total 0"), "{text}");
        assert!(text.contains("mfcsld_snapshot_saved_total 2"), "{text}");
        assert!(text.contains("mfcsld_snapshot_loaded_total 1"), "{text}");
        assert!(text.contains("mfcsld_snapshot_rejected_total 3"), "{text}");
        assert!(text.contains("mfcsld_engine_trajectory_restores_total 0"), "{text}");
        assert!(text.contains("mfcsld_sessions_quarantined_total 1"), "{text}");
        assert!(text.contains("mfcsld_requests_engine_errors_total 0"), "{text}");
        assert!(text.contains("mfcsld_engine_recoveries_total 0"), "{text}");
        assert!(text.contains("mfcsld_engine_refined_verdicts_total 0"), "{text}");
        assert!(text.contains("mfcsld_prewarm_requests_total 0"), "{text}");
        assert!(text.contains("mfcsld_simulate_requests_total 0"), "{text}");
        assert!(text.contains("mfcsld_simulate_replications_total 0"), "{text}");
        assert!(text.contains("mfcsld_engine_prewarm_lanes_total 0"), "{text}");
        assert!(text.contains("mfcsld_request_latency_us_bucket{le=\"100\"} 2"), "{text}");
        assert!(text.contains("mfcsld_request_latency_us_bucket{le=\"3160\"} 3"), "{text}");
        assert!(text.contains("mfcsld_request_latency_us_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("mfcsld_request_latency_us_count 4"), "{text}");
        assert!(text.contains("mfcsld_sessions_warm 2"), "{text}");
        assert!(text.contains("mfcsld_sessions_evicted_total 5"), "{text}");
        assert!(text.contains("mfcsld_worker_panics_total 0"), "{text}");
        assert!(text.contains("mfcsld_queue_capacity 32"), "{text}");
        // Every line is `name value`.
        for l in text.lines() {
            assert_eq!(l.split(' ').count(), 2, "{l}");
        }
    }
}
