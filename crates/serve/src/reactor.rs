//! The asynchronous serving core: a dependency-free epoll event loop.
//!
//! The blocking core pins one worker thread per in-flight *connection*, so
//! a thousand keep-alive clients would need a thousand threads even while
//! most of them sit idle between requests. This module multiplexes all
//! connections onto a small fixed pool of event-loop threads instead:
//!
//! * **Readiness, not threads.** Each loop owns an epoll instance in
//!   edge-triggered mode. Sockets are non-blocking; the loop reads until
//!   `WouldBlock`, feeds the bytes to the incremental
//!   [`RequestParser`](crate::http::RequestParser), and writes responses
//!   until `WouldBlock`, registering for `EPOLLOUT` only while a response
//!   is partially flushed.
//! * **Parsing in the loop, checking in workers.** Fully parsed requests
//!   are handed to a bounded work queue drained by worker threads that call
//!   the [`RequestHandler`] — the exact same dispatch path the blocking
//!   core uses, so verdicts are bitwise identical across cores. At most one
//!   request per connection is in flight at a time: pipelined bytes wait in
//!   the parser until the previous response is written, which preserves
//!   response ordering without any per-connection queue.
//! * **Backpressure from the loop.** When the work queue is full the loop
//!   itself writes the `429` + `Retry-After` response and closes — the
//!   rejection never occupies a worker, so saturation is signalled in
//!   microseconds even when every worker is busy.
//! * **Keep-alive by default.** HTTP/1.1 connections are reused until the
//!   client sends `Connection: close`, errors poison the parser, or the
//!   idle sweep reclaims them.
//! * **Graceful drain.** A handler outcome with `shutdown` set flips the
//!   shared flag; loops close their listeners and idle connections, finish
//!   writing in-flight responses, and exit once empty, while workers drain
//!   the queue — same semantics as the blocking core's `POST /shutdown`.
//!
//! The epoll/eventfd bindings are a ~30-line `extern "C"` shim over symbols
//! `std` already links; no external crate is involved.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::http::{error_outcome, render_response, Outcome, Request, RequestParser};
use crate::metrics::ServerMetrics;

/// A fully parsed request turned into a response. Implemented by the
/// daemon's dispatcher and by the shard router's proxy, so both run on the
/// same event-loop core.
pub trait RequestHandler: Send + Sync + 'static {
    /// Produces the response for one request. `enqueued_at` is when the
    /// request was admitted (deadlines count queue wait).
    fn handle(&self, request: &Request, enqueued_at: Instant) -> Outcome;
}

impl<F> RequestHandler for F
where
    F: Fn(&Request, Instant) -> Outcome + Send + Sync + 'static,
{
    fn handle(&self, request: &Request, enqueued_at: Instant) -> Outcome {
        self(request, enqueued_at)
    }
}

/// Tunables and shared state for one reactor run.
pub struct ReactorOptions {
    /// Event-loop threads (at least 1; loop 0 owns the listener).
    pub event_loops: usize,
    /// Worker threads draining the request queue (at least 1).
    pub workers: usize,
    /// Request-queue capacity; requests beyond it get `429`.
    pub queue_capacity: usize,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
    /// Idle connections (no in-flight request, nothing buffered) older than
    /// this are closed by the sweep.
    pub idle_timeout: Duration,
    /// Shared server counters (connections, accepted, rejected, panics,
    /// client errors are bumped here; the handler owns the rest).
    pub metrics: Arc<ServerMetrics>,
    /// Drain flag, shared with the embedding server so `/metrics` and the
    /// accept path observe the same state.
    pub shutdown: Arc<AtomicBool>,
    /// Live queue depth, exported so `/metrics` can report it without
    /// locking the queue.
    pub queue_depth: Arc<AtomicUsize>,
}

/// How long `epoll_wait` sleeps when nothing is ready; bounds how stale the
/// shutdown check and the idle sweep can get.
const WAIT_SLICE_MS: i32 = 200;

/// Per-read scratch-buffer size.
const READ_CHUNK: usize = 16 * 1024;

/// A connection may buffer at most this much unconsumed pipelined input
/// before reads pause (resumed when the parser drains); bounds memory per
/// hostile client.
const MAX_BUFFERED_SLACK: usize = 16 * 1024;

/// Raw epoll/eventfd bindings. The symbols live in libc, which `std`
/// already links — this is an FFI shim, not a dependency.
mod sys {
    use std::os::fd::RawFd;

    /// Mirror of `struct epoll_event`. On x86-64 the kernel ABI packs it
    /// (no padding between `events` and `data`); other architectures use
    /// natural C layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0o200_0000;
    pub const EFD_NONBLOCK: i32 = 0o4000;
    pub const EFD_CLOEXEC: i32 = 0o200_0000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(
            epfd: i32,
            events: *mut EpollEvent,
            maxevents: i32,
            timeout_ms: i32,
        ) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
    }
}

/// Safe wrapper over one epoll instance.
struct Poller {
    epoll: OwnedFd,
}

impl Poller {
    fn new() -> io::Result<Poller> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: epoll_create1 succeeded, so `fd` is a fresh descriptor we
        // exclusively own.
        Ok(Poller {
            epoll: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.epoll.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: RawFd) {
        // A dummy event keeps pre-2.6.9 kernels happy; failure just means
        // the fd is already gone.
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    fn wait(&self, events: &mut [sys::EpollEvent]) -> io::Result<usize> {
        loop {
            let cap = i32::try_from(events.len()).unwrap_or(i32::MAX);
            // SAFETY: the buffer is valid for `cap` entries for the whole
            // call.
            let rc = unsafe {
                sys::epoll_wait(self.epoll.as_raw_fd(), events.as_mut_ptr(), cap, WAIT_SLICE_MS)
            };
            if rc < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            return Ok(usize::try_from(rc).unwrap_or(0));
        }
    }
}

/// A non-blocking eventfd used to wake a loop from other threads.
fn new_eventfd() -> io::Result<File> {
    let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: eventfd succeeded; we exclusively own the descriptor.
    Ok(File::from(unsafe { OwnedFd::from_raw_fd(fd) }))
}

/// One admitted request travelling to the worker pool.
struct WorkItem {
    /// Which loop owns the connection (completions go back to it).
    loop_id: usize,
    /// The connection's token within that loop.
    token: u64,
    request: Request,
    enqueued_at: Instant,
}

/// The bounded request queue shared by all loops and workers.
struct WorkQueue {
    items: Mutex<VecDeque<WorkItem>>,
    signal: Condvar,
    depth: Arc<AtomicUsize>,
}

impl WorkQueue {
    /// The queue holds plain owned data; recover a poisoned lock rather
    /// than wedging every loop because one worker panicked.
    fn lock(&self) -> MutexGuard<'_, VecDeque<WorkItem>> {
        self.items.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A finished response heading back to its event loop.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// Cross-thread message into an event loop.
enum LoopMsg {
    /// A freshly accepted connection handed over by loop 0.
    Conn(TcpStream),
    /// A worker finished a request for one of this loop's connections.
    Done(Completion),
}

/// The mailbox other threads use to reach one event loop.
struct LoopShared {
    inbox: Mutex<Vec<LoopMsg>>,
    wake: File,
}

impl LoopShared {
    fn post(&self, msg: LoopMsg) {
        self.inbox
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(msg);
        self.wake();
    }

    fn wake(&self) {
        // An error here means the counter is saturated — the loop is
        // already guaranteed to wake.
        let _ = (&self.wake).write(&1u64.to_ne_bytes());
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

const INTEREST_READ: u32 = sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLET;
const INTEREST_READ_WRITE: u32 = INTEREST_READ | sys::EPOLLOUT;

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Pending response bytes (may span several rendered responses).
    out: Vec<u8>,
    /// How much of `out` is already written.
    out_pos: usize,
    /// A request from this connection is in the queue or in a worker;
    /// nothing further is dispatched until its completion arrives.
    busy: bool,
    /// Close once `out` is fully flushed.
    close_after: bool,
    /// Currently registered for `EPOLLOUT`.
    want_write: bool,
    /// Reads paused because the parser buffered too much pipelined input.
    read_paused: bool,
    /// Peer half-closed its write side.
    got_eof: bool,
    last_activity: Instant,
}

/// One event-loop thread's whole world.
struct EventLoop {
    id: usize,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Only loop 0 holds the listener.
    listener: Option<TcpListener>,
    loops: Vec<Arc<LoopShared>>,
    queue: Arc<WorkQueue>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    queue_capacity: usize,
    max_body: usize,
    idle_timeout: Duration,
    /// Round-robin cursor for distributing accepted connections.
    rr: usize,
    draining: bool,
}

impl EventLoop {
    fn run(mut self) {
        let mut events =
            vec![
                sys::EpollEvent { events: 0, data: 0 };
                128
            ];
        if let Err(e) = self.register_fixed() {
            // Cannot even watch our own wakeup fd: abort the whole daemon
            // rather than serve half-deaf.
            eprintln!("mfcsld: event loop {} failed to start: {e}", self.id);
            self.shutdown.store(true, Ordering::SeqCst);
            return;
        }
        loop {
            let n = match self.poller.wait(&mut events) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("mfcsld: event loop {} epoll failure: {e}", self.id);
                    self.shutdown.store(true, Ordering::SeqCst);
                    break;
                }
            };
            for ev in events.iter().take(n) {
                // Copy out of the (possibly packed) struct before use.
                let token = ev.data;
                let mask = ev.events;
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wakeups(),
                    _ => self.conn_ready(token, mask),
                }
            }
            self.drain_inbox();
            if self.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            self.sweep_idle();
            if self.draining && self.conns.is_empty() {
                break;
            }
        }
    }

    fn register_fixed(&mut self) -> io::Result<()> {
        let wake_fd = self.loops[self.id].wake.as_raw_fd();
        self.poller
            .add(wake_fd, TOKEN_WAKE, sys::EPOLLIN | sys::EPOLLET)?;
        if let Some(listener) = &self.listener {
            self.poller
                .add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EPOLLIN | sys::EPOLLET)?;
        }
        Ok(())
    }

    /// Edge-triggered accept: drain the backlog completely, distributing
    /// connections round-robin over all loops.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.metrics.connections.fetch_add(1, Ordering::Relaxed);
                    if self.shutdown.load(Ordering::SeqCst) {
                        drop(stream);
                        continue;
                    }
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let target = self.rr % self.loops.len();
                    self.rr = self.rr.wrapping_add(1);
                    if target == self.id {
                        self.adopt(stream);
                    } else {
                        self.loops[target].post(LoopMsg::Conn(stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e)
                    if e.kind() == io::ErrorKind::Interrupted
                        || e.kind() == io::ErrorKind::ConnectionAborted =>
                {
                    continue
                }
                Err(_) => return,
            }
        }
    }

    /// Takes ownership of a connection: register and try an immediate read
    /// (with edge triggering, bytes may already be waiting).
    fn adopt(&mut self, stream: TcpStream) {
        let token = self.next_token;
        self.next_token += 1;
        if self.poller.add(stream.as_raw_fd(), token, INTEREST_READ).is_err() {
            return; // fd limit or similar; shed the connection
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                parser: RequestParser::new(),
                out: Vec::new(),
                out_pos: 0,
                busy: false,
                close_after: false,
                want_write: false,
                read_paused: false,
                got_eof: false,
                last_activity: Instant::now(),
            },
        );
        self.on_readable(token);
    }

    fn drain_wakeups(&mut self) {
        let mut buf = [0u8; 8];
        while matches!((&self.loops[self.id].wake).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn drain_inbox(&mut self) {
        let msgs: Vec<LoopMsg> = {
            let mut inbox = self.loops[self.id]
                .inbox
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *inbox)
        };
        for msg in msgs {
            match msg {
                LoopMsg::Conn(stream) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        drop(stream);
                    } else {
                        self.adopt(stream);
                    }
                }
                LoopMsg::Done(done) => self.on_completion(done),
            }
        }
    }

    fn conn_ready(&mut self, token: u64, mask: u32) {
        if !self.conns.contains_key(&token) {
            return; // stale event for a closed connection
        }
        if mask & sys::EPOLLERR != 0 {
            self.close_conn(token);
            return;
        }
        if mask & sys::EPOLLOUT != 0 {
            self.flush(token);
        }
        if mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0 {
            self.on_readable(token);
        }
    }

    /// Edge-triggered read: pull everything the kernel has, feed the
    /// parser, then dispatch whatever requests completed.
    fn on_readable(&mut self, token: u64) {
        let mut buf = [0u8; READ_CHUNK];
        let max_buffered = self.max_body + MAX_BUFFERED_SLACK;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                if conn.parser.buffered() > max_buffered {
                    conn.read_paused = true;
                    break;
                }
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.got_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.parser.push(&buf[..n]);
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close_conn(token);
                        return;
                    }
                }
            }
        }
        self.pump(token);
    }

    /// Dispatches at most one completed request (ordering: the next one
    /// waits in the parser until this response is written). Also retires
    /// connections whose peer hung up with nothing left to do.
    fn pump(&mut self, token: u64) {
        enum Action {
            None,
            Reject(Outcome),
            Dispatch(Request),
            Close,
        }
        let action = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.busy || conn.close_after {
                Action::None
            } else if self.draining {
                Action::Close
            } else {
                match conn.parser.next_request(self.max_body) {
                    Err(e) => {
                        self.metrics.client_errors.fetch_add(1, Ordering::Relaxed);
                        Action::Reject(error_outcome(400, "bad_request", &e.to_string()))
                    }
                    Ok(Some(request)) => {
                        if self.queue.depth.load(Ordering::Relaxed) >= self.queue_capacity {
                            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                            let mut outcome = error_outcome(
                                429,
                                "queue_full",
                                "admission queue full, retry shortly",
                            );
                            outcome
                                .extra_headers
                                .push(("Retry-After", "1".to_string()));
                            Action::Reject(outcome)
                        } else {
                            Action::Dispatch(request)
                        }
                    }
                    Ok(None) => {
                        if conn.got_eof && conn.out_pos >= conn.out.len() {
                            Action::Close
                        } else {
                            Action::None
                        }
                    }
                }
            }
        };
        match action {
            Action::None => {}
            Action::Close => self.close_conn(token),
            Action::Reject(outcome) => {
                let bytes = render_response(&outcome, false);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.out.extend_from_slice(&bytes);
                    conn.close_after = true;
                }
                self.flush(token);
            }
            Action::Dispatch(request) => {
                self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                self.queue.depth.fetch_add(1, Ordering::Relaxed);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.busy = true;
                }
                self.queue.lock().push_back(WorkItem {
                    loop_id: self.id,
                    token,
                    request,
                    enqueued_at: Instant::now(),
                });
                self.queue.signal.notify_one();
            }
        }
    }

    /// A worker finished a request: queue its response and try to write.
    fn on_completion(&mut self, done: Completion) {
        let token = done.token;
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // connection died while the worker was busy
        };
        conn.busy = false;
        conn.out.extend_from_slice(&done.bytes);
        conn.close_after |= done.close || self.draining;
        conn.last_activity = Instant::now();
        self.flush(token);
    }

    /// Writes as much of the pending output as the socket accepts; on full
    /// drain, either closes or moves on to the next pipelined request.
    fn flush(&mut self, token: u64) {
        enum Next {
            Close,
            Pump,
            ResumeRead,
            Wait,
        }
        let next = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut next = loop {
                if conn.out_pos >= conn.out.len() {
                    conn.out.clear();
                    conn.out_pos = 0;
                    break if conn.close_after {
                        Next::Close
                    } else if conn.read_paused {
                        Next::ResumeRead
                    } else {
                        Next::Pump
                    };
                }
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => break Next::Close,
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if !conn.want_write {
                            conn.want_write = true;
                            let fd = conn.stream.as_raw_fd();
                            if self.poller.modify(fd, token, INTEREST_READ_WRITE).is_err() {
                                break Next::Close;
                            }
                        }
                        break Next::Wait;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break Next::Close,
                }
            };
            if matches!(next, Next::Pump | Next::ResumeRead) && conn.want_write {
                conn.want_write = false;
                let fd = conn.stream.as_raw_fd();
                if self.poller.modify(fd, token, INTEREST_READ).is_err() {
                    next = Next::Close;
                }
            }
            next
        };
        match next {
            Next::Close => self.close_conn(token),
            Next::Pump => self.pump(token),
            Next::ResumeRead => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.read_paused = false;
                }
                self.on_readable(token);
            }
            Next::Wait => {}
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.delete(conn.stream.as_raw_fd());
            // Dropping the stream closes it.
        }
    }

    /// Entering drain: stop accepting (close the listener so the port
    /// frees immediately) and retire every connection with no in-flight
    /// request and nothing left to write.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            self.poller.delete(listener.as_raw_fd());
            drop(listener);
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy && c.out_pos >= c.out.len())
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
        for conn in self.conns.values_mut() {
            conn.close_after = true;
        }
    }

    /// Closes connections that have been idle (no in-flight request, no
    /// pending output) longer than the timeout — the event-loop analogue of
    /// the blocking core's socket read timeout.
    fn sweep_idle(&mut self) {
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                !c.busy
                    && c.out_pos >= c.out.len()
                    && c.last_activity.elapsed() > self.idle_timeout
            })
            .map(|(&t, _)| t)
            .collect();
        for token in stale {
            self.close_conn(token);
        }
    }
}

/// Worker thread: pop, handle (panics cost one response, never the
/// worker), render, and post the completion back to the owning loop.
fn worker_loop(
    queue: &Arc<WorkQueue>,
    handler: &Arc<dyn RequestHandler>,
    loops: &[Arc<LoopShared>],
    metrics: &Arc<ServerMetrics>,
    shutdown: &Arc<AtomicBool>,
) {
    loop {
        let item = {
            let mut items = queue.lock();
            loop {
                if let Some(item) = items.pop_front() {
                    queue.depth.fetch_sub(1, Ordering::Relaxed);
                    break Some(item);
                }
                if shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                items = queue
                    .signal
                    .wait_timeout(items, Duration::from_millis(200))
                    .map(|(guard, _)| guard)
                    .unwrap_or_else(|poisoned| poisoned.into_inner().0);
            }
        };
        let Some(item) = item else {
            return; // shutdown with an empty queue: drained
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handler.handle(&item.request, item.enqueued_at)
        }))
        .unwrap_or_else(|_| {
            metrics.panics.fetch_add(1, Ordering::Relaxed);
            let mut outcome =
                error_outcome(500, "internal_panic", "handler panicked; see daemon logs");
            outcome.close = true;
            outcome
        });
        if outcome.shutdown {
            shutdown.store(true, Ordering::SeqCst);
            for l in loops {
                l.wake();
            }
            queue.signal.notify_all();
        }
        let keep = !item.request.wants_close()
            && !outcome.close
            && !shutdown.load(Ordering::SeqCst);
        let bytes = render_response(&outcome, keep);
        loops[item.loop_id].post(LoopMsg::Done(Completion {
            token: item.token,
            bytes,
            close: !keep,
        }));
    }
}

/// Runs the reactor until a handler outcome requests shutdown and the
/// drain completes. Blocks the calling thread.
///
/// # Errors
///
/// Propagates failures setting up epoll instances, eventfds, or threads;
/// after startup, transport errors are contained per connection.
pub fn run(
    listener: TcpListener,
    handler: Arc<dyn RequestHandler>,
    options: ReactorOptions,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let n_loops = options.event_loops.max(1);
    let n_workers = options.workers.max(1);
    let queue = Arc::new(WorkQueue {
        items: Mutex::new(VecDeque::new()),
        signal: Condvar::new(),
        depth: Arc::clone(&options.queue_depth),
    });
    let loops: Vec<Arc<LoopShared>> = (0..n_loops)
        .map(|_| {
            Ok(Arc::new(LoopShared {
                inbox: Mutex::new(Vec::new()),
                wake: new_eventfd()?,
            }))
        })
        .collect::<io::Result<_>>()?;
    // Pollers are created up front so setup errors surface from `run`
    // instead of killing a thread silently.
    let pollers: Vec<Poller> = (0..n_loops).map(|_| Poller::new()).collect::<io::Result<_>>()?;

    let workers: Vec<_> = (0..n_workers)
        .map(|i| {
            let queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let loops = loops.clone();
            let metrics = Arc::clone(&options.metrics);
            let shutdown = Arc::clone(&options.shutdown);
            std::thread::Builder::new()
                .name(format!("mfcsld-worker-{i}"))
                .spawn(move || worker_loop(&queue, &handler, &loops, &metrics, &shutdown))
        })
        .collect::<io::Result<_>>()?;

    let mut listener = Some(listener);
    let loop_threads: Vec<_> = pollers
        .into_iter()
        .enumerate()
        .map(|(id, poller)| {
            let ev = EventLoop {
                id,
                poller,
                conns: HashMap::new(),
                next_token: TOKEN_FIRST_CONN,
                listener: if id == 0 { listener.take() } else { None },
                loops: loops.clone(),
                queue: Arc::clone(&queue),
                metrics: Arc::clone(&options.metrics),
                shutdown: Arc::clone(&options.shutdown),
                queue_capacity: options.queue_capacity.max(1),
                max_body: options.max_body,
                idle_timeout: options.idle_timeout,
                rr: 0,
                draining: false,
            };
            std::thread::Builder::new()
                .name(format!("mfcsld-loop-{id}"))
                .spawn(move || ev.run())
        })
        .collect::<io::Result<_>>()?;

    for t in loop_threads {
        let _ = t.join();
    }
    // Loops are gone; make sure the workers observe shutdown even if a
    // loop died abnormally.
    options.shutdown.store(true, Ordering::SeqCst);
    queue.signal.notify_all();
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn start_echo_reactor() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handler: Arc<dyn RequestHandler> = Arc::new(|req: &Request, _t: Instant| {
            if req.path == "/shutdown" {
                let mut o = Outcome::new(200, "text/plain", b"bye\n".to_vec());
                o.shutdown = true;
                o.close = true;
                return o;
            }
            let body = format!("echo:{}:{}", req.path, String::from_utf8_lossy(&req.body));
            Outcome::new(200, "text/plain", body.into_bytes())
        });
        let options = ReactorOptions {
            event_loops: 2,
            workers: 2,
            queue_capacity: 16,
            max_body: 1 << 20,
            idle_timeout: Duration::from_secs(10),
            metrics: Arc::new(ServerMetrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            queue_depth: Arc::new(AtomicUsize::new(0)),
        };
        let handle = std::thread::spawn(move || run(listener, handler, options).unwrap());
        (addr, handle)
    }

    fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(reader, &mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn reactor_keeps_connections_alive_and_orders_pipelined_responses() {
        let (addr, handle) = start_echo_reactor();
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        // Two sequential requests over ONE connection.
        for i in 0..2 {
            write!(
                writer,
                "POST /r{i} HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nhi"
            )
            .unwrap();
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 200);
            assert_eq!(body, format!("echo:/r{i}:hi"));
        }

        // Two PIPELINED requests in one write: responses must come back in
        // order on the same connection.
        write!(
            writer,
            "POST /a HTTP/1.1\r\nHost: x\r\nContent-Length: 1\r\n\r\nA\
             POST /b HTTP/1.1\r\nHost: x\r\nContent-Length: 1\r\n\r\nB"
        )
        .unwrap();
        let (_, body_a) = read_response(&mut reader);
        let (_, body_b) = read_response(&mut reader);
        assert_eq!(body_a, "echo:/a:A");
        assert_eq!(body_b, "echo:/b:B");

        // Shutdown drains and the accept socket disappears.
        write!(
            writer,
            "POST /shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let (status, body) = read_response(&mut reader);
        assert_eq!((status, body.as_str()), (200, "bye\n"));
        handle.join().unwrap();
        assert!(TcpStream::connect(addr).is_err(), "listener must be gone");
    }

    #[test]
    fn reactor_rejects_malformed_requests_without_dying() {
        let (addr, handle) = start_echo_reactor();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut response = String::new();
        std::io::Read::read_to_string(&mut stream, &mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");

        // The daemon survives: a healthy request on a fresh connection.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write!(writer, "GET /ok HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut reader);
        assert_eq!((status, body.as_str()), (200, "echo:/ok:"));
        write!(
            writer,
            "POST /shutdown HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let _ = read_response(&mut reader);
        handle.join().unwrap();
    }
}
