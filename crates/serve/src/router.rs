//! The shard router: a front tier that speaks the daemon's wire protocol
//! and fans requests out over several `mfcsld` worker processes.
//!
//! Routing is by consistent hash of the request's [`SessionKey`] — the same
//! FNV-1a 64 over the same canonical key encoding the snapshot layer uses —
//! so one warm session never splits across shards: every request for a
//! `(model, params, tolerances)` key lands on the shard whose store holds
//! that key's caches, and the mapping survives router restarts because the
//! hash is deterministic across processes (unlike `std`'s seeded hasher).
//!
//! The router itself runs on the same epoll [`reactor`](crate::reactor)
//! core as the daemon: it implements [`RequestHandler`], proxying request
//! bodies over per-shard keep-alive connection pools. Shard backpressure
//! (`429` + `Retry-After`) passes through untouched; a dead shard answers
//! `503 shard_unavailable` with a `Retry-After` hint for its keys while the
//! other shards keep serving theirs. `GET /metrics` aggregates every
//! shard's counters by summing same-named lines, then appends router-level
//! counters.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use mfcsl_core::{FaultMode, FaultPlan};

use crate::http::{error_outcome, roundtrip_with, Outcome, Request, Response};
use crate::json::Json;
use crate::reactor::RequestHandler;
use crate::snapshot::{fnv1a64, key_bytes};
use crate::store::SessionKey;

/// How long a fresh connection to a shard may take before the shard is
/// declared unavailable for this request.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Socket read timeout on proxied requests; a wedged shard must not pin a
/// router worker forever.
const PROXY_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Most idle keep-alive connections retained per shard.
const POOL_CAP: usize = 32;

/// One worker shard as the router sees it.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The shard daemon's address.
    pub addr: SocketAddr,
}

/// Router configuration: the shard fleet.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Worker shards, in index order (the consistent hash is taken modulo
    /// this list's length, so the order must match across restarts).
    pub shards: Vec<ShardSpec>,
}

/// Which shard owns a session key: FNV-1a 64 of the canonical key bytes,
/// modulo the shard count. Exposed so tests and benchmarks can predict
/// placement client-side.
#[must_use]
pub fn route_for(key: &SessionKey, n_shards: usize) -> usize {
    if n_shards == 0 {
        return 0;
    }
    usize::try_from(fnv1a64(&key_bytes(key)) % n_shards as u64).unwrap_or(0)
}

/// Per-shard live state: address, keep-alive pool, counters.
struct Shard {
    addr: SocketAddr,
    /// Idle keep-alive connections to this shard.
    pool: Mutex<Vec<TcpStream>>,
    routed: AtomicU64,
    errors: AtomicU64,
}

impl Shard {
    fn lock_pool(&self) -> std::sync::MutexGuard<'_, Vec<TcpStream>> {
        self.pool.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.lock_pool().pop()
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.lock_pool();
        if pool.len() < POOL_CAP {
            pool.push(stream);
        }
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(PROXY_READ_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }
}

/// The shard-routing request handler. Runs on the epoll reactor exactly
/// like the daemon's own dispatcher.
pub struct Router {
    shards: Vec<Shard>,
    requests: AtomicU64,
}

impl Router {
    /// Builds a router over a fixed shard fleet.
    #[must_use]
    pub fn new(config: &RouterConfig) -> Router {
        Router {
            shards: config
                .shards
                .iter()
                .map(|spec| Shard {
                    addr: spec.addr,
                    pool: Mutex::new(Vec::new()),
                    routed: AtomicU64::new(0),
                    errors: AtomicU64::new(0),
                })
                .collect(),
            requests: AtomicU64::new(0),
        }
    }

    /// Proxies one request to `shard`, reusing a pooled keep-alive
    /// connection when one exists and reconnecting once on transport
    /// failure (the pooled socket may have been closed by the shard's idle
    /// sweep between requests).
    fn proxy(&self, shard_id: usize, request: &Request) -> Outcome {
        let shard = &self.shards[shard_id];
        shard.routed.fetch_add(1, Ordering::Relaxed);
        let pooled = shard.checkout();
        let retry_fresh = pooled.is_some();
        let response = match pooled {
            Some(mut stream) => {
                match roundtrip_with(&mut stream, &request.method, &request.path, &request.body, false)
                {
                    Ok(response) => Some((stream, response)),
                    Err(_) => None,
                }
            }
            None => None,
        };
        let (stream, response) = match response {
            Some(pair) => pair,
            None => {
                // Fresh connection (first use, or the pooled one went stale).
                let _ = retry_fresh; // stale pools and cold pools retry the same way
                let attempt = shard.connect().map_err(|e| e.to_string()).and_then(|mut s| {
                    roundtrip_with(&mut s, &request.method, &request.path, &request.body, false)
                        .map(|r| (s, r))
                        .map_err(|e| e.to_string())
                });
                match attempt {
                    Ok(pair) => pair,
                    Err(_) => {
                        shard.errors.fetch_add(1, Ordering::Relaxed);
                        let mut outcome = error_outcome(
                            503,
                            "shard_unavailable",
                            &format!("shard {shard_id} ({}) is unavailable", shard.addr),
                        );
                        outcome.extra_headers.push(("Retry-After", "1".to_string()));
                        return outcome;
                    }
                }
            }
        };
        let keep = response
            .header("connection")
            .is_none_or(|v| !v.eq_ignore_ascii_case("close"));
        if keep {
            shard.checkin(stream);
        }
        outcome_of(&response)
    }

    /// Aggregated `/metrics`: sum same-named counter lines across every
    /// reachable shard (first-seen order), then append router-level lines.
    fn aggregate_metrics(&self) -> Outcome {
        let mut names: Vec<String> = Vec::new();
        let mut sums: BTreeMap<String, f64> = BTreeMap::new();
        let mut unreachable = 0u64;
        let probe = Request {
            method: "GET".into(),
            path: "/metrics".into(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        for (i, _) in self.shards.iter().enumerate() {
            let outcome = self.proxy(i, &probe);
            if outcome.status != 200 {
                unreachable += 1;
                continue;
            }
            for line in String::from_utf8_lossy(&outcome.body).lines() {
                let mut parts = line.split_whitespace();
                let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
                    continue;
                };
                let Ok(value) = value.parse::<f64>() else {
                    continue;
                };
                if !sums.contains_key(name) {
                    names.push(name.to_string());
                }
                *sums.entry(name.to_string()).or_insert(0.0) += value;
            }
        }
        let mut body = String::new();
        for name in &names {
            let v = sums.get(name).copied().unwrap_or(0.0);
            body.push_str(&format!("{name} {}\n", render_num(v)));
        }
        body.push_str(&format!("mfcsld_router_shards {}\n", self.shards.len()));
        body.push_str(&format!("mfcsld_router_shards_unreachable {unreachable}\n"));
        body.push_str(&format!(
            "mfcsld_router_requests_total {}\n",
            self.requests.load(Ordering::Relaxed)
        ));
        for (i, shard) in self.shards.iter().enumerate() {
            body.push_str(&format!(
                "mfcsld_router_shard{i}_routed_total {}\n",
                shard.routed.load(Ordering::Relaxed)
            ));
            body.push_str(&format!(
                "mfcsld_router_shard{i}_errors_total {}\n",
                shard.errors.load(Ordering::Relaxed)
            ));
        }
        Outcome::new(200, "text/plain", body.into_bytes())
    }

    /// `GET /v1/shards`: the fleet as JSON, with per-shard route counts.
    fn shards_response(&self) -> Outcome {
        let shards = Json::Arr(
            self.shards
                .iter()
                .enumerate()
                .map(|(i, shard)| {
                    Json::Obj(vec![
                        ("index".into(), Json::Num(i as f64)),
                        ("addr".into(), Json::Str(shard.addr.to_string())),
                        (
                            "routed".into(),
                            Json::Num(shard.routed.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "errors".into(),
                            Json::Num(shard.errors.load(Ordering::Relaxed) as f64),
                        ),
                    ])
                })
                .collect(),
        );
        let body = Json::Obj(vec![("shards".into(), shards)]).render();
        Outcome::new(200, "application/json", body.into_bytes())
    }

    /// `POST /shutdown`: fan the drain out to every shard (best-effort),
    /// then drain the router itself.
    fn shutdown_all(&self) -> Outcome {
        let mut stopped = 0u64;
        for shard in &self.shards {
            // Fresh close-mode connection: pooled keep-alive sockets would
            // be poisoned by the shard draining mid-stream anyway.
            let ok = shard.connect().ok().and_then(|mut s| {
                crate::http::roundtrip(&mut s, "POST", "/shutdown", b"").ok()
            });
            if ok.is_some_and(|r| r.status == 200) {
                stopped += 1;
            }
        }
        let body = Json::Obj(vec![
            ("draining".into(), Json::Bool(true)),
            ("shards_stopped".into(), Json::Num(stopped as f64)),
        ])
        .render();
        let mut outcome = Outcome::new(200, "application/json", body.into_bytes());
        outcome.shutdown = true;
        outcome.close = true;
        outcome
    }
}

impl RequestHandler for Router {
    fn handle(&self, request: &Request, _enqueued_at: Instant) -> Outcome {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Outcome::new(200, "text/plain", b"ok\n".to_vec()),
            ("GET", "/metrics") => self.aggregate_metrics(),
            ("GET", "/v1/shards") => self.shards_response(),
            ("POST", "/shutdown") => self.shutdown_all(),
            // The registry is identical across shards; any one can answer.
            ("GET", "/v1/models") => self.proxy(0, request),
            ("POST", "/v1/check" | "/v1/prewarm") => {
                let key = session_key_of(&request.body, request.path == "/v1/prewarm");
                self.proxy(route_for(&key, self.shards.len()), request)
            }
            _ => error_outcome(
                404,
                "not_found",
                &format!("no route {} {}", request.method, request.path),
            ),
        }
    }
}

/// Extracts the routing key from a request body, mirroring the daemon's own
/// key construction (`/v1/prewarm` always keys with `fault: None`, exactly
/// like `handle_prewarm` does). Unparseable bodies fall back to a default
/// key — the shard it hashes to will answer with the daemon's own `400`,
/// keeping error bodies identical to a single-daemon deployment.
fn session_key_of(body: &[u8], is_prewarm: bool) -> SessionKey {
    let parsed = std::str::from_utf8(body)
        .ok()
        .and_then(|text| Json::parse(text).ok());
    let Some(parsed) = parsed else {
        return SessionKey::new("", &BTreeMap::new(), false, None);
    };
    let model = parsed.get("model").and_then(Json::as_str).unwrap_or("");
    let params = parsed
        .get("params")
        .and_then(Json::as_num_map)
        .unwrap_or_default();
    let fast = parsed.get("fast").and_then(Json::as_bool).unwrap_or(false);
    let fault = if is_prewarm {
        None
    } else {
        parsed.get("fault").and_then(|spec| {
            let mode = spec.get("mode").and_then(Json::as_str).and_then(FaultMode::parse)?;
            let uint = |name: &str, default: u64| {
                spec.get(name)
                    .and_then(Json::as_f64)
                    .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                    .map_or(default, |n| n as u64)
            };
            Some(FaultPlan::new(mode, uint("period", 1), uint("seed", 0)))
        })
    };
    let mut key = SessionKey::new(model, &params, fast, fault);
    // Mirror the daemon's statistical-lane arm (same defaults as
    // `handle_check`), so a simulate session's requests always land on the
    // shard holding its sampled-path batches.
    if !is_prewarm && parsed.get("mode").and_then(Json::as_str) == Some("simulate") {
        let uint = |name: &str, default: u64| {
            parsed
                .get(name)
                .and_then(Json::as_f64)
                .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                .map_or(default, |n| n as u64)
        };
        key.sim = Some(crate::store::SimKey {
            population: uint("population", 100),
            replications: uint("replications", 200),
            seed: uint("seed", 0),
        });
    }
    key
}

/// Converts a proxied shard response into an [`Outcome`], preserving the
/// status, the body byte-for-byte, and the `Retry-After` backpressure hint.
fn outcome_of(response: &Response) -> Outcome {
    let content_type = match response.header("content-type") {
        Some(v) if v.starts_with("text/plain") => "text/plain",
        _ => "application/json",
    };
    let mut outcome = Outcome::new(response.status, content_type, response.body.clone());
    if let Some(v) = response.header("retry-after") {
        outcome.extra_headers.push(("Retry-After", v.to_string()));
    }
    outcome
}

/// Renders an aggregated metric value: integers print without a decimal
/// point so summed counters look exactly like a single shard's counters.
fn render_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let key = SessionKey::new("sis", &BTreeMap::new(), false, None);
        let a = route_for(&key, 4);
        let b = route_for(&key, 4);
        assert_eq!(a, b, "same key must always land on the same shard");
        assert!(a < 4);
        // Different params land somewhere valid too (not necessarily
        // elsewhere, but the map must be total).
        for i in 0..32 {
            let key = SessionKey::new(
                "sis",
                &[("beta".to_string(), f64::from(i))].into_iter().collect(),
                false,
                None,
            );
            assert!(route_for(&key, 3) < 3);
        }
        assert_eq!(route_for(&key, 0), 0, "zero shards must not divide by zero");
    }

    #[test]
    fn session_key_extraction_matches_server_semantics() {
        let body = br#"{"model":"sis","params":{"beta":2.5},"fast":true,"m0":[0.9,0.1],"formulas":["x"]}"#;
        let key = session_key_of(body, false);
        assert_eq!(key.model, "sis");
        assert_eq!(key.params, vec![("beta".to_string(), 2.5f64.to_bits())]);
        assert!(key.fast);
        assert!(key.fault.is_none());

        // Prewarm bodies ignore any fault field, like handle_prewarm.
        let body = br#"{"model":"sis","fault":{"mode":"nan"}}"#;
        assert!(session_key_of(body, true).fault.is_none());
        assert!(session_key_of(body, false).fault.is_some());

        // Garbage routes somewhere stable instead of crashing.
        let key = session_key_of(b"\xff\xfe not json", false);
        assert_eq!(key.model, "");
    }
}
