//! The shard router: a front tier that speaks the daemon's wire protocol
//! and fans requests out over several `mfcsld` worker processes.
//!
//! Routing is by consistent hash of the request's [`SessionKey`] — the same
//! FNV-1a 64 over the same canonical key encoding the snapshot layer uses —
//! so one warm session never splits across shards: every request for a
//! `(model, params, tolerances)` key lands on the shard whose store holds
//! that key's caches, and the mapping survives router restarts because the
//! hash is deterministic across processes (unlike `std`'s seeded hasher).
//!
//! The router itself runs on the same epoll [`reactor`](crate::reactor)
//! core as the daemon: it implements [`RequestHandler`], proxying request
//! bodies over per-shard keep-alive connection pools. Shard backpressure
//! (`429` + `Retry-After`) passes through untouched.
//!
//! Failure containment (three layers, all per shard):
//!
//! * **Hot-swappable slots.** Each shard lives behind an `RwLock`'d slot;
//!   [`Router::replace_shard`] swaps a restarted shard's fresh address in
//!   without disturbing the consistent hash (same index ⇒ same keys), so a
//!   supervisor can revive a dead shard under live traffic.
//! * **Circuit breaker.** [`BREAKER_THRESHOLD`] consecutive transport
//!   failures open the breaker: requests fast-fail with a `503` and a
//!   breaker-derived `Retry-After` instead of each paying the connect
//!   timeout. After [`BREAKER_OPEN`] one half-open probe is let through;
//!   success closes the breaker, failure re-opens it.
//! * **Deadline propagation.** A check's `timeout_ms` (capped by
//!   [`DEADLINE_CEILING`]) becomes the proxy read timeout, shrinking as
//!   queue/connect time is spent; the remaining budget minus a margin is
//!   forwarded to the shard, so the shard's structured `504` fires before
//!   the router cuts the socket — a wedged shard can never pin a router
//!   worker for the old flat 30 s.
//!
//! `GET /metrics` aggregates every shard's counters by summing same-named
//! lines, then appends router-level counters (breaker states, restarts,
//! probe failures, exhausted deadlines). Metrics scrapes probe shards on a
//! side channel that bypasses the per-shard `routed`/`errors` counters, so
//! scraping the fleet never skews the numbers operators read from it.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

use mfcsl_core::{FaultMode, FaultPlan};

use crate::http::{error_outcome, roundtrip_with, Outcome, Request, Response};
use crate::json::Json;
use crate::reactor::RequestHandler;
use crate::snapshot::{fnv1a64, key_bytes};
use crate::store::SessionKey;

/// How long a fresh connection to a shard may take before the shard is
/// declared unavailable for this request.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Router ceiling on a proxied request's time budget: the proxy read
/// timeout when the request carries no `timeout_ms`, and the cap applied
/// to one that does. A wedged shard must not pin a router worker forever.
const DEADLINE_CEILING: Duration = Duration::from_secs(30);

/// Budget margin shaved off the deadline forwarded to the shard, so the
/// shard's own structured `504` fires before the router's read timeout
/// cuts the connection.
const SHARD_BUDGET_MARGIN_MS: f64 = 50.0;

/// Consecutive transport failures that open a shard's circuit breaker.
const BREAKER_THRESHOLD: u32 = 3;

/// How long an open breaker fast-fails before letting one half-open probe
/// through.
const BREAKER_OPEN: Duration = Duration::from_secs(1);

/// Read timeout on metrics-scrape probes (side channel, not proxied).
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Most idle keep-alive connections retained per shard.
const POOL_CAP: usize = 32;

/// One worker shard as the router sees it.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The shard daemon's address.
    pub addr: SocketAddr,
}

/// Router configuration: the shard fleet plus failure-containment knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Worker shards, in index order (the consistent hash is taken modulo
    /// this list's length, so the order must match across restarts).
    pub shards: Vec<ShardSpec>,
    /// Consecutive transport failures that open a shard's breaker.
    pub breaker_threshold: u32,
    /// Open window before a half-open probe is allowed through.
    pub breaker_open: Duration,
    /// Ceiling on a request's deadline budget (and the default proxy read
    /// timeout for requests without one).
    pub deadline_ceiling: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            shards: Vec::new(),
            breaker_threshold: BREAKER_THRESHOLD,
            breaker_open: BREAKER_OPEN,
            deadline_ceiling: DEADLINE_CEILING,
        }
    }
}

/// Which shard owns a session key: FNV-1a 64 of the canonical key bytes,
/// modulo the shard count. Exposed so tests and benchmarks can predict
/// placement client-side.
#[must_use]
pub fn route_for(key: &SessionKey, n_shards: usize) -> usize {
    if n_shards == 0 {
        return 0;
    }
    usize::try_from(fnv1a64(&key_bytes(key)) % n_shards as u64).unwrap_or(0)
}

/// One cheap `/healthz` round-trip against a shard, with `timeout` bounding
/// connect, write, and read. Used by the CLI supervisor's liveness probes
/// (and by tests); never routes through the proxy counters.
#[must_use]
pub fn probe_healthz(addr: &SocketAddr, timeout: Duration) -> bool {
    let probe = || -> Result<Response, crate::http::HttpError> {
        let mut stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        crate::http::roundtrip(&mut stream, "GET", "/healthz", b"")
    };
    probe().is_ok_and(|r| r.status == 200)
}

/// Circuit-breaker states, rendered as-is in `/metrics`.
const STATE_CLOSED: u8 = 0;
const STATE_OPEN: u8 = 1;
const STATE_HALF_OPEN: u8 = 2;

/// Per-shard circuit breaker: closed → open after a run of consecutive
/// transport failures, half-open (one probe) once the open window lapses.
/// Time is carried as milliseconds on the router's monotonic clock so the
/// state fits in lock-free atomics.
#[derive(Debug)]
struct Breaker {
    state: AtomicU8,
    failures: AtomicU32,
    open_until_ms: AtomicU64,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: AtomicU8::new(STATE_CLOSED),
            failures: AtomicU32::new(0),
            open_until_ms: AtomicU64::new(0),
        }
    }

    /// Admission check. `Ok(())` means the caller may attempt the shard;
    /// `Err(retry_after_secs)` means fast-fail. At most one caller wins the
    /// half-open probe slot per open window.
    fn admit(&self, now_ms: u64) -> Result<(), u64> {
        match self.state.load(Ordering::Acquire) {
            STATE_OPEN => {
                let until = self.open_until_ms.load(Ordering::Acquire);
                if now_ms < until {
                    return Err((until - now_ms).div_ceil(1000).max(1));
                }
                // Window lapsed: exactly one request becomes the probe.
                if self
                    .state
                    .compare_exchange(
                        STATE_OPEN,
                        STATE_HALF_OPEN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    Ok(())
                } else {
                    Err(1)
                }
            }
            STATE_HALF_OPEN => Err(1), // a probe is already in flight
            _ => Ok(()),
        }
    }

    /// A successful round-trip closes the breaker and clears the streak.
    fn record_success(&self) {
        self.failures.store(0, Ordering::Release);
        self.state.store(STATE_CLOSED, Ordering::Release);
    }

    /// One transport failure. A failed half-open probe re-opens
    /// immediately; a closed breaker opens once the streak reaches
    /// `threshold`. Returns whether the breaker is now open.
    fn record_failure(&self, now_ms: u64, threshold: u32, open_ms: u64) -> bool {
        let was = self.state.load(Ordering::Acquire);
        let streak = self.failures.fetch_add(1, Ordering::AcqRel) + 1;
        if was == STATE_HALF_OPEN || streak >= threshold {
            self.open_until_ms
                .store(now_ms + open_ms, Ordering::Release);
            self.state.store(STATE_OPEN, Ordering::Release);
            return true;
        }
        false
    }

    /// Releases a half-open probe slot without a verdict (the caller bailed
    /// before attempting, e.g. its deadline was exhausted). The window has
    /// already lapsed, so the next admission becomes the probe.
    fn abort_probe(&self) {
        let _ = self.state.compare_exchange(
            STATE_HALF_OPEN,
            STATE_OPEN,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }
}

/// Per-shard live state: address, keep-alive pool, counters, breaker.
#[derive(Debug)]
struct Shard {
    addr: SocketAddr,
    /// Idle keep-alive connections to this shard.
    pool: Mutex<Vec<TcpStream>>,
    routed: AtomicU64,
    errors: AtomicU64,
    breaker: Breaker,
}

impl Shard {
    fn new(addr: SocketAddr, routed: u64, errors: u64) -> Shard {
        Shard {
            addr,
            pool: Mutex::new(Vec::new()),
            routed: AtomicU64::new(routed),
            errors: AtomicU64::new(errors),
            breaker: Breaker::new(),
        }
    }

    fn lock_pool(&self) -> std::sync::MutexGuard<'_, Vec<TcpStream>> {
        self.pool.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.lock_pool().pop()
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.lock_pool();
        if pool.len() < POOL_CAP {
            pool.push(stream);
        }
    }

    fn connect(&self, read_timeout: Duration) -> std::io::Result<TcpStream> {
        let connect_timeout = CONNECT_TIMEOUT.min(read_timeout.max(Duration::from_millis(1)));
        let stream = TcpStream::connect_timeout(&self.addr, connect_timeout)?;
        stream.set_read_timeout(Some(read_timeout.max(Duration::from_millis(1))))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }
}

/// A check request's deadline context, derived once in `handle` and carried
/// through the proxy attempts (the remaining budget shrinks as connect and
/// queue time is spent).
struct CheckDeadline<'a> {
    deadline: Instant,
    /// The parsed request body, when it parsed and its `timeout_ms` (if
    /// any) was valid — the shard-side budget is spliced into a re-render
    /// of this. Invalid bodies are forwarded untouched so the shard's own
    /// `400` shapes stay byte-identical to a single-daemon deployment.
    body: Option<&'a Json>,
}

/// The shard-routing request handler. Runs on the epoll reactor exactly
/// like the daemon's own dispatcher. Shard slots are hot-swappable (see
/// [`Router::replace_shard`]); the slot count — and therefore the
/// consistent-hash mapping — is fixed for the router's lifetime.
pub struct Router {
    shards: Vec<RwLock<Arc<Shard>>>,
    requests: AtomicU64,
    restarts: AtomicU64,
    probe_failures: AtomicU64,
    deadline_exhausted: AtomicU64,
    breaker_threshold: u32,
    breaker_open_ms: u64,
    deadline_ceiling: Duration,
    /// Epoch of the router's monotonic breaker clock.
    started: Instant,
}

impl Router {
    /// Builds a router over a shard fleet.
    #[must_use]
    pub fn new(config: &RouterConfig) -> Router {
        Router {
            shards: config
                .shards
                .iter()
                .map(|spec| RwLock::new(Arc::new(Shard::new(spec.addr, 0, 0))))
                .collect(),
            requests: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            deadline_exhausted: AtomicU64::new(0),
            breaker_threshold: config.breaker_threshold.max(1),
            breaker_open_ms: config.breaker_open.as_millis().try_into().unwrap_or(1000),
            deadline_ceiling: config.deadline_ceiling,
            started: Instant::now(),
        }
    }

    /// The number of shard slots (fixed for the router's lifetime).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current address of shard `index`, if the slot exists.
    #[must_use]
    pub fn shard_addr(&self, index: usize) -> Option<SocketAddr> {
        self.slot(index).map(|shard| shard.addr)
    }

    /// Swaps a restarted shard into slot `index`: same index, same keys
    /// (the consistent hash never sees the swap), fresh connection pool,
    /// breaker reset to closed. The slot's cumulative `routed`/`errors`
    /// counters carry over so `/metrics` stays monotonic. Returns `false`
    /// when `index` is out of range.
    pub fn replace_shard(&self, index: usize, addr: SocketAddr) -> bool {
        let Some(slot) = self.shards.get(index) else {
            return false;
        };
        let mut slot = slot.write().unwrap_or_else(PoisonError::into_inner);
        let routed = slot.routed.load(Ordering::Relaxed);
        let errors = slot.errors.load(Ordering::Relaxed);
        *slot = Arc::new(Shard::new(addr, routed, errors));
        self.restarts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Records one failed supervisor liveness probe (shown in `/metrics`).
    pub fn note_probe_failure(&self) {
        self.probe_failures.fetch_add(1, Ordering::Relaxed);
    }

    fn slot(&self, index: usize) -> Option<Arc<Shard>> {
        self.shards.get(index).map(|slot| {
            Arc::clone(&slot.read().unwrap_or_else(PoisonError::into_inner))
        })
    }

    /// Milliseconds on the router's monotonic breaker clock.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis().try_into().unwrap_or(u64::MAX)
    }

    fn deadline_exhausted_outcome(&self) -> Outcome {
        self.deadline_exhausted.fetch_add(1, Ordering::Relaxed);
        error_outcome(504, "deadline_exceeded", "deadline exceeded")
    }

    fn breaker_open_outcome(shard_id: usize, addr: SocketAddr, retry_secs: u64) -> Outcome {
        let mut outcome = error_outcome(
            503,
            "shard_unavailable",
            &format!("shard {shard_id} ({addr}) is unavailable (breaker open)"),
        );
        outcome
            .extra_headers
            .push(("Retry-After", retry_secs.max(1).to_string()));
        outcome
    }

    /// Proxies one request to `shard_id`, reusing a pooled keep-alive
    /// connection when one exists and reconnecting on transport failure
    /// (the pooled socket may have been closed by the shard's idle sweep
    /// between requests; a stale pooled socket never counts against the
    /// breaker). Proxied requests are idempotent — checks are pure
    /// functions of their body — so one bounded retry on a second fresh
    /// connection is taken before giving up.
    fn proxy(
        &self,
        shard_id: usize,
        request: &Request,
        check: Option<&CheckDeadline<'_>>,
    ) -> Outcome {
        let Some(shard) = self.slot(shard_id) else {
            return error_outcome(503, "shard_unavailable", "router has no shards");
        };
        shard.routed.fetch_add(1, Ordering::Relaxed);

        let remaining = |check: Option<&CheckDeadline<'_>>| -> Option<Duration> {
            match check {
                None => Some(self.deadline_ceiling),
                Some(c) => {
                    let left = c.deadline.saturating_duration_since(Instant::now());
                    (left > Duration::ZERO).then_some(left)
                }
            }
        };
        let Some(mut budget) = remaining(check) else {
            return self.deadline_exhausted_outcome();
        };

        // Breaker admission: an open breaker fast-fails instead of paying
        // the connect timeout per request.
        if let Err(retry_secs) = shard.breaker.admit(self.now_ms()) {
            shard.errors.fetch_add(1, Ordering::Relaxed);
            return Self::breaker_open_outcome(shard_id, shard.addr, retry_secs);
        }

        // The body actually sent: for checks with a parseable body, the
        // remaining budget (minus a margin) is spliced in as the shard's
        // `timeout_ms`, so the shard's 504 fires before the router's read
        // timeout does.
        let forwarded = |budget: Duration| -> Vec<u8> {
            match check.and_then(|c| c.body) {
                Some(parsed) => with_shard_budget(parsed, budget),
                None => request.body.clone(),
            }
        };

        // Pooled attempt first. Stale pooled sockets are expected (idle
        // sweeps); their failures don't count toward the breaker.
        if let Some(mut stream) = shard.checkout() {
            let _ = stream.set_read_timeout(Some(budget.max(Duration::from_millis(1))));
            if let Ok(response) =
                roundtrip_with(&mut stream, &request.method, &request.path, &forwarded(budget), false)
            {
                shard.breaker.record_success();
                return self.finish(&shard, stream, &response);
            }
        }

        // Fresh attempts: one, plus one bounded retry on a second fresh
        // connection (requests through here are idempotent).
        for attempt in 0..2u32 {
            budget = match remaining(check) {
                Some(left) => left,
                None => {
                    shard.breaker.abort_probe();
                    return self.deadline_exhausted_outcome();
                }
            };
            // `Err(true)` marks a read-phase timeout (the shard accepted
            // but answered too slowly); everything else — connect errors
            // including connect timeouts, resets, EOF — is `Err(false)`,
            // a transport failure that counts toward the breaker.
            let result = match shard.connect(budget) {
                Err(_) => Err(false),
                Ok(mut stream) => roundtrip_with(
                    &mut stream,
                    &request.method,
                    &request.path,
                    &forwarded(budget),
                    false,
                )
                .map(|response| (stream, response))
                .map_err(|e| e.is_timeout()),
            };
            match result {
                Ok((stream, response)) => {
                    shard.breaker.record_success();
                    return self.finish(&shard, stream, &response);
                }
                Err(true) if check.is_some() => {
                    // The request's own budget ran out mid-read; the shard
                    // may be healthy, so the breaker stays untouched.
                    shard.breaker.abort_probe();
                    shard.errors.fetch_add(1, Ordering::Relaxed);
                    return self.deadline_exhausted_outcome();
                }
                Err(_) => {
                    let opened = shard.breaker.record_failure(
                        self.now_ms(),
                        self.breaker_threshold,
                        self.breaker_open_ms,
                    );
                    if opened || attempt == 1 {
                        shard.errors.fetch_add(1, Ordering::Relaxed);
                        let mut outcome = error_outcome(
                            503,
                            "shard_unavailable",
                            &format!("shard {shard_id} ({}) is unavailable", shard.addr),
                        );
                        outcome.extra_headers.push(("Retry-After", "1".to_string()));
                        return outcome;
                    }
                }
            }
        }
        // Unreachable: the loop always returns on attempt == 1.
        error_outcome(503, "shard_unavailable", "shard is unavailable")
    }

    /// Returns the proxied response, pooling the connection when the shard
    /// kept it open.
    fn finish(&self, shard: &Shard, stream: TcpStream, response: &Response) -> Outcome {
        let keep = response
            .header("connection")
            .is_none_or(|v| !v.eq_ignore_ascii_case("close"));
        if keep {
            // Restore the pool-wide read timeout: the next checkout resets
            // it to its own budget anyway, but a sane default costs nothing.
            let _ = stream.set_read_timeout(Some(self.deadline_ceiling));
            shard.checkin(stream);
        }
        outcome_of(response)
    }

    /// One metrics scrape of a shard over a fresh close-mode connection —
    /// a side channel that bypasses `proxy()` so scraping the fleet never
    /// inflates the per-shard `routed`/`errors` counters.
    fn scrape(shard: &Shard) -> Option<Response> {
        let mut stream = shard.connect(SCRAPE_TIMEOUT).ok()?;
        crate::http::roundtrip(&mut stream, "GET", "/metrics", b"").ok()
    }

    /// Aggregated `/metrics`: sum same-named counter lines across every
    /// reachable shard (first-seen order), then append router-level lines.
    fn aggregate_metrics(&self) -> Outcome {
        let mut names: Vec<String> = Vec::new();
        let mut sums: BTreeMap<String, f64> = BTreeMap::new();
        let mut unreachable = 0u64;
        let mut breaker_states: Vec<u8> = Vec::with_capacity(self.shards.len());
        let mut per_shard: Vec<(u64, u64)> = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let Some(shard) = self.slot(i) else {
                continue;
            };
            breaker_states.push(shard.breaker.state());
            per_shard.push((
                shard.routed.load(Ordering::Relaxed),
                shard.errors.load(Ordering::Relaxed),
            ));
            let Some(response) = Self::scrape(&shard) else {
                unreachable += 1;
                continue;
            };
            if response.status != 200 {
                unreachable += 1;
                continue;
            }
            for line in String::from_utf8_lossy(&response.body).lines() {
                let mut parts = line.split_whitespace();
                let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
                    continue;
                };
                let Ok(value) = value.parse::<f64>() else {
                    continue;
                };
                if !sums.contains_key(name) {
                    names.push(name.to_string());
                }
                *sums.entry(name.to_string()).or_insert(0.0) += value;
            }
        }
        let mut body = String::new();
        for name in &names {
            let v = sums.get(name).copied().unwrap_or(0.0);
            body.push_str(&format!("{name} {}\n", render_num(v)));
        }
        body.push_str(&format!("mfcsld_router_shards {}\n", self.shards.len()));
        body.push_str(&format!("mfcsld_router_shards_unreachable {unreachable}\n"));
        body.push_str(&format!(
            "mfcsld_router_requests_total {}\n",
            self.requests.load(Ordering::Relaxed)
        ));
        body.push_str(&format!(
            "mfcsld_router_shard_restarts_total {}\n",
            self.restarts.load(Ordering::Relaxed)
        ));
        body.push_str(&format!(
            "mfcsld_router_probe_failures_total {}\n",
            self.probe_failures.load(Ordering::Relaxed)
        ));
        body.push_str(&format!(
            "mfcsld_router_deadline_exhausted_total {}\n",
            self.deadline_exhausted.load(Ordering::Relaxed)
        ));
        for (i, state) in breaker_states.iter().enumerate() {
            body.push_str(&format!(
                "mfcsld_router_breaker_state{{shard=\"{i}\"}} {state}\n"
            ));
        }
        for (i, (routed, errors)) in per_shard.iter().enumerate() {
            body.push_str(&format!("mfcsld_router_shard{i}_routed_total {routed}\n"));
            body.push_str(&format!("mfcsld_router_shard{i}_errors_total {errors}\n"));
        }
        Outcome::new(200, "text/plain", body.into_bytes())
    }

    /// `GET /v1/shards`: the fleet as JSON, with per-shard route counts and
    /// breaker states.
    fn shards_response(&self) -> Outcome {
        let shards = Json::Arr(
            (0..self.shards.len())
                .filter_map(|i| self.slot(i).map(|shard| (i, shard)))
                .map(|(i, shard)| {
                    Json::Obj(vec![
                        ("index".into(), Json::Num(i as f64)),
                        ("addr".into(), Json::Str(shard.addr.to_string())),
                        (
                            "routed".into(),
                            Json::Num(shard.routed.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "errors".into(),
                            Json::Num(shard.errors.load(Ordering::Relaxed) as f64),
                        ),
                        (
                            "breaker".into(),
                            Json::Num(f64::from(shard.breaker.state())),
                        ),
                    ])
                })
                .collect(),
        );
        let body = Json::Obj(vec![
            ("shards".into(), shards),
            (
                "restarts".into(),
                Json::Num(self.restarts.load(Ordering::Relaxed) as f64),
            ),
        ])
        .render();
        Outcome::new(200, "application/json", body.into_bytes())
    }

    /// `POST /shutdown`: fan the drain out to every shard (best-effort),
    /// then drain the router itself.
    fn shutdown_all(&self) -> Outcome {
        let mut stopped = 0u64;
        for i in 0..self.shards.len() {
            let Some(shard) = self.slot(i) else {
                continue;
            };
            // Fresh close-mode connection: pooled keep-alive sockets would
            // be poisoned by the shard draining mid-stream anyway.
            let ok = shard.connect(self.deadline_ceiling).ok().and_then(|mut s| {
                crate::http::roundtrip(&mut s, "POST", "/shutdown", b"").ok()
            });
            if ok.is_some_and(|r| r.status == 200) {
                stopped += 1;
            }
        }
        let body = Json::Obj(vec![
            ("draining".into(), Json::Bool(true)),
            ("shards_stopped".into(), Json::Num(stopped as f64)),
        ])
        .render();
        let mut outcome = Outcome::new(200, "application/json", body.into_bytes());
        outcome.shutdown = true;
        outcome.close = true;
        outcome
    }
}

impl RequestHandler for Router {
    fn handle(&self, request: &Request, enqueued_at: Instant) -> Outcome {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Outcome::new(200, "text/plain", b"ok\n".to_vec()),
            ("GET", "/metrics") => self.aggregate_metrics(),
            ("GET", "/v1/shards") => self.shards_response(),
            ("POST", "/shutdown") => self.shutdown_all(),
            // The registry is identical across shards; any one can answer.
            ("GET", "/v1/models") => self.proxy(0, request, None),
            ("POST", "/v1/check") => {
                let parsed = std::str::from_utf8(&request.body)
                    .ok()
                    .and_then(|text| Json::parse(text).ok());
                let key = session_key_of_parsed(parsed.as_ref(), false);
                let shard_id = route_for(&key, self.shards.len());
                // An invalid timeout_ms must reach the shard untouched so
                // its 400 stays byte-identical to a single daemon's.
                match request_budget(parsed.as_ref(), self.deadline_ceiling) {
                    Err(()) => self.proxy(shard_id, request, None),
                    Ok(budget) => {
                        let check = CheckDeadline {
                            deadline: enqueued_at + budget,
                            body: parsed.as_ref(),
                        };
                        self.proxy(shard_id, request, Some(&check))
                    }
                }
            }
            ("POST", "/v1/prewarm") => {
                let key = session_key_of(&request.body, true);
                self.proxy(route_for(&key, self.shards.len()), request, None)
            }
            _ => error_outcome(
                404,
                "not_found",
                &format!("no route {} {}", request.method, request.path),
            ),
        }
    }
}

/// The request's deadline budget: its `timeout_ms` capped by the router
/// ceiling, or the ceiling itself when absent. `Err(())` marks an invalid
/// `timeout_ms` (negative, non-finite, non-numeric) — the body must be
/// forwarded verbatim for the shard's own `400`.
fn request_budget(parsed: Option<&Json>, ceiling: Duration) -> Result<Duration, ()> {
    let Some(parsed) = parsed else {
        return Ok(ceiling);
    };
    match parsed.get("timeout_ms") {
        None => Ok(ceiling),
        Some(v) => match v.as_f64() {
            Some(ms) if ms.is_finite() && ms >= 0.0 => {
                Ok(Duration::from_secs_f64(ms.min(ceiling.as_secs_f64() * 1e3) / 1e3))
            }
            _ => Err(()),
        },
    }
}

/// Re-renders a check body with the remaining budget (minus the shard
/// margin) spliced in as `timeout_ms`, so the shard's deadline — measured
/// from its own admission — fires before the router's read timeout. The
/// JSON layer's shortest-roundtrip number rendering keeps every other
/// field value-identical. Non-object bodies are forwarded verbatim.
fn with_shard_budget(parsed: &Json, budget: Duration) -> Vec<u8> {
    let Json::Obj(fields) = parsed else {
        return parsed.render().into_bytes();
    };
    let shard_ms = (budget.as_secs_f64() * 1e3 - SHARD_BUDGET_MARGIN_MS).max(1.0);
    let mut fields = fields.clone();
    match fields.iter_mut().find(|(name, _)| name == "timeout_ms") {
        Some((_, value)) => *value = Json::Num(shard_ms),
        None => fields.push(("timeout_ms".to_string(), Json::Num(shard_ms))),
    }
    Json::Obj(fields).render().into_bytes()
}

/// Extracts the routing key from a request body, mirroring the daemon's own
/// key construction (`/v1/prewarm` always keys with `fault: None`, exactly
/// like `handle_prewarm` does). Unparseable bodies fall back to a default
/// key — the shard it hashes to will answer with the daemon's own `400`,
/// keeping error bodies identical to a single-daemon deployment.
fn session_key_of(body: &[u8], is_prewarm: bool) -> SessionKey {
    let parsed = std::str::from_utf8(body)
        .ok()
        .and_then(|text| Json::parse(text).ok());
    session_key_of_parsed(parsed.as_ref(), is_prewarm)
}

/// [`session_key_of`] over an already-parsed body (the check path parses
/// once for both routing and deadline extraction).
fn session_key_of_parsed(parsed: Option<&Json>, is_prewarm: bool) -> SessionKey {
    let Some(parsed) = parsed else {
        return SessionKey::new("", &BTreeMap::new(), false, None);
    };
    let model = parsed.get("model").and_then(Json::as_str).unwrap_or("");
    let params = parsed
        .get("params")
        .and_then(Json::as_num_map)
        .unwrap_or_default();
    let fast = parsed.get("fast").and_then(Json::as_bool).unwrap_or(false);
    let fault = if is_prewarm {
        None
    } else {
        parsed.get("fault").and_then(|spec| {
            let mode = spec.get("mode").and_then(Json::as_str).and_then(FaultMode::parse)?;
            let uint = |name: &str, default: u64| {
                spec.get(name)
                    .and_then(Json::as_f64)
                    .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                    .map_or(default, |n| n as u64)
            };
            Some(FaultPlan::new(mode, uint("period", 1), uint("seed", 0)))
        })
    };
    let mut key = SessionKey::new(model, &params, fast, fault);
    // Mirror the daemon's statistical-lane arm (same defaults as
    // `handle_check`), so a simulate session's requests always land on the
    // shard holding its sampled-path batches.
    if !is_prewarm && parsed.get("mode").and_then(Json::as_str) == Some("simulate") {
        let uint = |name: &str, default: u64| {
            parsed
                .get(name)
                .and_then(Json::as_f64)
                .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                .map_or(default, |n| n as u64)
        };
        key.sim = Some(crate::store::SimKey {
            population: uint("population", 100),
            replications: uint("replications", 200),
            seed: uint("seed", 0),
        });
    }
    key
}

/// Converts a proxied shard response into an [`Outcome`], preserving the
/// status, the body byte-for-byte, and the `Retry-After` backpressure hint.
fn outcome_of(response: &Response) -> Outcome {
    let content_type = match response.header("content-type") {
        Some(v) if v.starts_with("text/plain") => "text/plain",
        _ => "application/json",
    };
    let mut outcome = Outcome::new(response.status, content_type, response.body.clone());
    if let Some(v) = response.header("retry-after") {
        outcome.extra_headers.push(("Retry-After", v.to_string()));
    }
    outcome
}

/// Renders an aggregated metric value: integers print without a decimal
/// point so summed counters look exactly like a single shard's counters.
fn render_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let key = SessionKey::new("sis", &BTreeMap::new(), false, None);
        let a = route_for(&key, 4);
        let b = route_for(&key, 4);
        assert_eq!(a, b, "same key must always land on the same shard");
        assert!(a < 4);
        // Different params land somewhere valid too (not necessarily
        // elsewhere, but the map must be total).
        for i in 0..32 {
            let key = SessionKey::new(
                "sis",
                &[("beta".to_string(), f64::from(i))].into_iter().collect(),
                false,
                None,
            );
            assert!(route_for(&key, 3) < 3);
        }
        assert_eq!(route_for(&key, 0), 0, "zero shards must not divide by zero");
    }

    #[test]
    fn session_key_extraction_matches_server_semantics() {
        let body = br#"{"model":"sis","params":{"beta":2.5},"fast":true,"m0":[0.9,0.1],"formulas":["x"]}"#;
        let key = session_key_of(body, false);
        assert_eq!(key.model, "sis");
        assert_eq!(key.params, vec![("beta".to_string(), 2.5f64.to_bits())]);
        assert!(key.fast);
        assert!(key.fault.is_none());

        // Prewarm bodies ignore any fault field, like handle_prewarm.
        let body = br#"{"model":"sis","fault":{"mode":"nan"}}"#;
        assert!(session_key_of(body, true).fault.is_none());
        assert!(session_key_of(body, false).fault.is_some());

        // Garbage routes somewhere stable instead of crashing.
        let key = session_key_of(b"\xff\xfe not json", false);
        assert_eq!(key.model, "");
    }

    #[test]
    fn breaker_state_machine_closed_open_half_open() {
        let b = Breaker::new();
        assert_eq!(b.state(), STATE_CLOSED);
        assert!(b.admit(0).is_ok());
        // Two failures stay closed at threshold 3; the third opens.
        assert!(!b.record_failure(0, 3, 1000));
        assert!(!b.record_failure(0, 3, 1000));
        assert!(b.record_failure(0, 3, 1000));
        assert_eq!(b.state(), STATE_OPEN);
        // Open: fast-fail with a Retry-After derived from the window.
        let retry = b.admit(0).unwrap_err();
        assert_eq!(retry, 1, "1000 ms of window left rounds to 1 s");
        // Window lapsed: exactly one admission wins the half-open probe.
        assert!(b.admit(1000).is_ok());
        assert_eq!(b.state(), STATE_HALF_OPEN);
        assert!(b.admit(1000).is_err(), "second probe must fast-fail");
        // A failed probe re-opens immediately, streak notwithstanding.
        assert!(b.record_failure(1000, 3, 1000));
        assert_eq!(b.state(), STATE_OPEN);
        // A successful probe closes and clears the streak.
        assert!(b.admit(2000).is_ok());
        b.record_success();
        assert_eq!(b.state(), STATE_CLOSED);
        assert!(!b.record_failure(2000, 3, 1000), "streak must restart after success");
        // An aborted probe releases the slot back to open.
        let b = Breaker::new();
        assert!(b.record_failure(0, 1, 100));
        assert!(b.admit(100).is_ok());
        b.abort_probe();
        assert_eq!(b.state(), STATE_OPEN);
        assert!(b.admit(100).is_ok(), "the next admission becomes the probe");
    }

    #[test]
    fn replace_shard_keeps_index_mapping_and_carries_counters() {
        let addr_a: SocketAddr = "127.0.0.1:19001".parse().unwrap();
        let addr_b: SocketAddr = "127.0.0.1:19002".parse().unwrap();
        let addr_c: SocketAddr = "127.0.0.1:19003".parse().unwrap();
        let router = Router::new(&RouterConfig {
            shards: vec![ShardSpec { addr: addr_a }, ShardSpec { addr: addr_b }],
            ..RouterConfig::default()
        });
        // route_for depends only on (key, count): the swap must not move keys.
        let key = SessionKey::new("virus", &BTreeMap::new(), false, None);
        let before = route_for(&key, router.shard_count());
        let shard0 = router.slot(0).unwrap();
        shard0.routed.store(7, Ordering::Relaxed);
        shard0.errors.store(2, Ordering::Relaxed);
        shard0.breaker.record_failure(0, 1, 60_000);
        assert!(router.replace_shard(0, addr_c));
        assert_eq!(route_for(&key, router.shard_count()), before);
        assert_eq!(router.shard_addr(0), Some(addr_c));
        assert_eq!(router.shard_addr(1), Some(addr_b));
        let swapped = router.slot(0).unwrap();
        assert_eq!(swapped.routed.load(Ordering::Relaxed), 7, "counters stay monotonic");
        assert_eq!(swapped.errors.load(Ordering::Relaxed), 2);
        assert_eq!(swapped.breaker.state(), STATE_CLOSED, "breaker resets on swap");
        assert!(!router.replace_shard(9, addr_c), "out-of-range swap is refused");
    }

    #[test]
    fn shard_budget_splice_preserves_other_fields() {
        let body = br#"{"model":"virus","m0":[0.8,0.15,0.05],"formulas":["E{<0.3}[ infected ]"],"params":{"k2":0.25},"timeout_ms":5000}"#;
        let parsed = Json::parse(std::str::from_utf8(body).unwrap()).unwrap();
        let spliced = with_shard_budget(&parsed, Duration::from_millis(400));
        let re = Json::parse(std::str::from_utf8(&spliced).unwrap()).unwrap();
        assert_eq!(re.get("timeout_ms").and_then(Json::as_f64), Some(350.0));
        assert_eq!(re.get("model").and_then(Json::as_str), Some("virus"));
        assert_eq!(
            re.get("params").and_then(|p| p.get("k2")).and_then(Json::as_f64),
            Some(0.25),
            "untouched fields must survive the re-render value-identically"
        );
        // Absent timeout_ms gets one appended; tiny budgets clamp to 1 ms.
        let parsed = Json::parse(r#"{"model":"virus"}"#).unwrap();
        let spliced = with_shard_budget(&parsed, Duration::from_millis(10));
        let re = Json::parse(std::str::from_utf8(&spliced).unwrap()).unwrap();
        assert_eq!(re.get("timeout_ms").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn request_budget_caps_and_rejects() {
        let ceiling = Duration::from_secs(30);
        let parse = |s: &str| Json::parse(s).ok();
        assert_eq!(request_budget(None, ceiling), Ok(ceiling));
        assert_eq!(
            request_budget(parse(r#"{"model":"x"}"#).as_ref(), ceiling),
            Ok(ceiling)
        );
        assert_eq!(
            request_budget(parse(r#"{"timeout_ms":250}"#).as_ref(), ceiling),
            Ok(Duration::from_millis(250))
        );
        assert_eq!(
            request_budget(parse(r#"{"timeout_ms":9e9}"#).as_ref(), ceiling),
            Ok(ceiling),
            "budgets cap at the router ceiling"
        );
        for bad in [r#"{"timeout_ms":-5}"#, r#"{"timeout_ms":"soon"}"#] {
            assert_eq!(
                request_budget(parse(bad).as_ref(), ceiling),
                Err(()),
                "{bad} must be forwarded verbatim for the shard's 400"
            );
        }
    }
}
