//! `mfcsld`: a batch model-checking daemon for mean-field models.
//!
//! This crate is std-only by design (the workspace builds offline): the HTTP
//! server, the JSON wire format, and the client are all hand-rolled on top of
//! `std::net`. The daemon keeps [`store::WarmSession`]s alive across requests
//! so repeated checks against the same `(model, params, tolerances)` key hit
//! the memoizing engine's caches instead of re-solving trajectories.

#![warn(missing_docs)]
// Panic audit: production daemon code must not contain panic paths — a
// panicking handler costs a connection, but a panic on a shared path (locks,
// spawning, rendering) could cost the whole daemon. Tests are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod reactor;
pub mod registry;
pub mod router;
pub mod server;
pub mod snapshot;
pub mod store;

pub use client::{CheckOutcome, CheckRequest, Client, ClientError, WireVerdict};
pub use json::{Json, JsonError};
pub use reactor::{ReactorOptions, RequestHandler};
pub use registry::ModelRegistry;
pub use router::{probe_healthz, route_for, Router, RouterConfig, ShardSpec};
pub use server::{Server, ServerConfig, ServingCore};
pub use snapshot::{SessionSnapshot, SnapshotEntry};
pub use store::{SessionKey, SessionStore, SimKey, WarmSession};
