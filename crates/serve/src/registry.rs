//! The daemon's model registry: named `.mf` files loaded at startup.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use mfcsl_modelfile::ModelFile;

/// An error raised while building the registry.
#[derive(Debug)]
pub struct RegistryError(pub String);

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RegistryError {}

/// A read-only name → [`ModelFile`] table, built once at daemon startup.
///
/// Models are addressed over the wire by name: the file stem of the `.mf`
/// file they were loaded from (`modelfiles/virus.mf` → `virus`).
#[derive(Debug)]
pub struct ModelRegistry {
    models: BTreeMap<String, ModelFile>,
}

impl ModelRegistry {
    /// Loads models from a list of paths. A file path contributes that one
    /// model; a directory path contributes every `*.mf` file directly
    /// inside it (not recursive, sorted by name).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, parse errors (with the file and line named),
    /// duplicate model names, and an empty result.
    pub fn load(paths: &[PathBuf]) -> Result<Self, RegistryError> {
        let mut files: Vec<PathBuf> = Vec::new();
        for path in paths {
            if path.is_dir() {
                let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                    .map_err(|e| RegistryError(format!("cannot read {}: {e}", path.display())))?
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|ext| ext == "mf"))
                    .collect();
                entries.sort();
                files.extend(entries);
            } else {
                files.push(path.clone());
            }
        }
        let mut models = BTreeMap::new();
        for file in &files {
            let name = model_name(file)?;
            let parsed = ModelFile::load(file)
                .map_err(|e| RegistryError(format!("{}: {e}", file.display())))?;
            // Reject structurally broken models at startup, not at first
            // request: instantiate once and drop the result.
            parsed
                .instantiate()
                .map_err(|e| RegistryError(format!("{}: {e}", file.display())))?;
            if models.insert(name.clone(), parsed).is_some() {
                return Err(RegistryError(format!(
                    "duplicate model name `{name}` ({})",
                    file.display()
                )));
            }
        }
        if models.is_empty() {
            return Err(RegistryError("no .mf models found".into()));
        }
        Ok(ModelRegistry { models })
    }

    /// Looks a model up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ModelFile> {
        self.models.get(name)
    }

    /// All model names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Number of registered models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty (never true for a loaded registry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

fn model_name(path: &Path) -> Result<String, RegistryError> {
    path.file_stem()
        .and_then(|s| s.to_str())
        .map(str::to_string)
        .ok_or_else(|| RegistryError(format!("cannot derive a model name from {}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mfcsl-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write(dir: &Path, name: &str, text: &str) -> PathBuf {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(text.as_bytes()).unwrap();
        path
    }

    const SIS: &str = "state s : healthy\nstate i : infected\n\
                       param beta = 2\nrate s -> i : beta * m[i]\nrate i -> s : 1\n";

    #[test]
    fn loads_directories_and_files() {
        let dir = scratch_dir("dir");
        write(&dir, "sis.mf", SIS);
        write(&dir, "other.mf", SIS);
        write(&dir, "ignored.txt", "not a model");
        let reg = ModelRegistry::load(std::slice::from_ref(&dir)).unwrap();
        assert_eq!(reg.names(), vec!["other", "sis"]);
        assert!(reg.get("sis").is_some());
        assert!(reg.get("ignored").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_duplicates_and_parse_errors() {
        let dir = scratch_dir("dup");
        let a = write(&dir, "sis.mf", SIS);
        let err = ModelRegistry::load(&[a.clone(), a.clone()]).unwrap_err();
        assert!(err.to_string().contains("duplicate model name `sis`"));
        let bad = write(&dir, "bad.mf", "state a\nrate a -> ghost : 1\n");
        let err = ModelRegistry::load(&[bad]).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(ModelRegistry::load(&[]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
