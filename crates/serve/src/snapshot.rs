//! Warm-state persistence: a versioned on-disk snapshot of a session's
//! settled warm state, so a restarted daemon (or shard) answers its first
//! request warm instead of re-solving.
//!
//! # What is persisted, and why that preserves bitwise verdicts
//!
//! A snapshot stores, per base-trajectory entry, every `f64` as its exact
//! bit pattern:
//!
//! * the **mean-field trajectory** (knot times, states, derivatives) — the
//!   root artifact every verdict derives from;
//! * the **stationary regime** reached from the entry's `m̄(0)`, when one
//!   was computed: the stationary occupancy and settle time. The frozen
//!   chain `Q(m̃)` is *not* stored — freezing is a pure evaluation of the
//!   model at `m̃`, so the restart rebuilds it bitwise;
//! * the **sat-cache**: the hash-consed formula tables (so re-interning
//!   the same formulas lands on the same ids) and every memoized
//!   satisfaction set and probability curve, including the until/nested
//!   evaluators' internal matrix trajectories.
//!
//! Restoring all three means the first request after a restart pays no
//! trajectory solve, no fixed-point search, and no curve development — it
//! is a genuine warm hit, and because every artifact round-trips bitwise,
//! its verdicts are bitwise identical to the pre-restart session's.
//! Faulted sessions are never snapshotted.
//!
//! # Wire layout (version 2, little-endian)
//!
//! ```text
//! magic    b"MFSS"
//! version  u32                          (schema version, currently 2)
//! model    u32 len + UTF-8 bytes
//! params   u32 count × (u32 len + UTF-8 bytes, u64 value bits)
//! fast     u8
//! entries  u32 count × {
//!   dim    u32
//!   m0     dim × u64                    (occupancy bit patterns)
//!   knots  u32
//!   ts     knots × u64                  (knot time bit patterns)
//!   ys     knots·dim × u64              (state bit patterns, knot-major)
//!   ds     knots·dim × u64              (derivative bit patterns)
//!   stats  5 × u64                      (accepted, rejected, rhs_evals,
//!                                        recoveries, stiff_fallbacks)
//!   regime u8 present + { dim × u64 m̃ bits, u8 has_settle, [u64 bits] }
//!   cache {
//!     state_keys u32 count × state-key record (tagged; children by index)
//!     path_keys  u32 count × path-key record
//!     sets       u32 count × { u32 id, u64 θ bits, piecewise-set record }
//!     curves     u32 count × { u32 id, u64 θ bits, curve record }
//!   }
//! }
//! digest   u64 cached_sets, u64 cached_curves
//! checksum u64                          (FNV-1a 64 of everything above)
//! ```
//!
//! Sub-records: a *piecewise-set record* is `u64 t_lo, u64 t_hi, u32
//! boundary count × u64, u32 n_states`, then `(boundaries+1) × n_states`
//! membership bytes. A *trajectory record* is `u32 dim, u32 knots, knots ×
//! u64 ts, knots·dim × u64 ys, knots·dim × u64 ds, 5 × u64 stats`. A
//! *curve record* is a tag byte (until / nested / sampled / point)
//! followed by that evaluator's constructor data. Comparison operators are
//! a byte (`<=` 0, `<` 1, `>` 2, `>=` 3).
//!
//! Readers validate magic, version, checksum, and structural bounds before
//! touching any payload, and every reconstructed artifact passes through
//! its validating constructor; a file failing any check is skipped and
//! counted (`mfcsld_snapshot_rejected_total`), never trusted partially.

use mfcsl_csl::{
    Comparison, CurveExport, PathKeyExport, SatCacheExport, StateKeyExport,
};
use mfcsl_csl::nested::PiecewiseStateSet;
use mfcsl_ode::{SolveStats, Trajectory};

use crate::store::SessionKey;

/// Snapshot magic bytes.
pub const MAGIC: [u8; 4] = *b"MFSS";

/// Current schema version. Bump on any layout change; readers reject other
/// versions instead of guessing. Version 1 stored trajectories only;
/// version 2 adds the stationary regime and the full sat-cache per entry.
pub const VERSION: u32 = 2;

/// Structural bounds a well-formed snapshot cannot exceed; anything larger
/// is a corrupt or hostile file and is rejected before allocation.
const MAX_STR: usize = 4096;
const MAX_PARAMS: usize = 4096;
const MAX_ENTRIES: usize = 65_536;
const MAX_DIM: usize = 65_536;
const MAX_KNOTS: usize = 16_777_216;
const MAX_KEYS: usize = 262_144;
const MAX_MEMOS: usize = 262_144;
const MAX_SEGMENTS: usize = 65_536;

/// A snapshot decoding failure (corrupt, truncated, or wrong version).
#[derive(Debug)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash. Deterministic across processes and platforms — this
/// is what makes it usable both as the snapshot checksum and as the shard
/// router's consistent hash (`std`'s `RandomState` is seeded per process
/// and would re-shuffle keys on every router restart).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Canonical byte encoding of a [`SessionKey`], shared by the snapshot file
/// name and the shard router's consistent hash. Stable across restarts by
/// construction: nothing here depends on process state.
#[must_use]
pub fn key_bytes(key: &SessionKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&(key.model.len() as u32).to_le_bytes());
    out.extend_from_slice(key.model.as_bytes());
    out.extend_from_slice(&(key.params.len() as u32).to_le_bytes());
    for (name, bits) in &key.params {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&bits.to_le_bytes());
    }
    out.push(u8::from(key.fast));
    match key.fault {
        None => out.push(0),
        Some(plan) => {
            out.push(1);
            out.extend_from_slice(plan.mode.as_str().as_bytes());
            out.extend_from_slice(&plan.period.to_le_bytes());
            out.extend_from_slice(&plan.seed.to_le_bytes());
        }
    }
    // The statistical-lane arm is appended only when present, so every
    // pre-existing mean-field key hashes exactly as before — warm sessions
    // keep their shard placement and snapshot file names across the
    // upgrade (`key_hash_is_stable_across_processes` pins this).
    if let Some(sim) = key.sim {
        out.push(2);
        out.extend_from_slice(&sim.population.to_le_bytes());
        out.extend_from_slice(&sim.replications.to_le_bytes());
        out.extend_from_slice(&sim.seed.to_le_bytes());
    }
    out
}

/// The snapshot file name for a key: a stable hash, so one session maps to
/// one file and re-saving overwrites in place.
#[must_use]
pub fn file_name(key: &SessionKey) -> String {
    format!("sess-{:016x}.snap", fnv1a64(&key_bytes(key)))
}

/// The persisted stationary regime of one entry: the stationary occupancy
/// and settle time as exact bit patterns. The frozen chain rebuilds from
/// the model at restore time.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeSnapshot {
    /// Stationary occupancy `m̃`, exact bit patterns.
    pub distribution_bits: Vec<u64>,
    /// Settle time bit pattern, when the regime was stamped with one.
    pub settle_bits: Option<u64>,
}

/// One persisted warm entry: the base trajectory plus the derived warm
/// state (stationary regime, sat-cache) that a restart would otherwise
/// recompute.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Initial occupancy, exact bit patterns.
    pub m0_bits: Vec<u64>,
    /// Knot times, exact bit patterns.
    pub ts_bits: Vec<u64>,
    /// Knot states (knot-major, `dim` values per knot), exact bit patterns.
    pub ys_bits: Vec<u64>,
    /// Knot derivatives, same layout as `ys_bits`.
    pub ds_bits: Vec<u64>,
    /// Solve statistics: accepted, rejected, rhs_evals, recoveries,
    /// stiff_fallbacks.
    pub stats: [u64; 5],
    /// The stationary regime reached from this entry's `m0`, when one was
    /// computed.
    pub regime: Option<RegimeSnapshot>,
    /// The entry's sat-cache: interned formula tables plus memoized sets
    /// and curves.
    pub cache: SatCacheExport,
}

/// A decoded (or to-be-encoded) session snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Registry name of the model.
    pub model: String,
    /// Sorted `(name, value bits)` parameter overrides.
    pub params: Vec<(String, u64)>,
    /// Fast-tolerance preset flag.
    pub fast: bool,
    /// Warm entries.
    pub entries: Vec<SnapshotEntry>,
    /// Sat-cache digest at save time: interval sets cached.
    pub cached_sets: u64,
    /// Sat-cache digest at save time: probability curves cached.
    pub cached_curves: u64,
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_bools(out: &mut Vec<u8>, bools: &[bool]) {
    out.extend(bools.iter().map(|&b| u8::from(b)));
}

fn cmp_byte(cmp: Comparison) -> u8 {
    match cmp {
        Comparison::Le => 0,
        Comparison::Lt => 1,
        Comparison::Gt => 2,
        Comparison::Ge => 3,
    }
}

fn cmp_from_byte(byte: u8) -> Result<Comparison, SnapshotError> {
    Ok(match byte {
        0 => Comparison::Le,
        1 => Comparison::Lt,
        2 => Comparison::Gt,
        3 => Comparison::Ge,
        other => return Err(SnapshotError(format!("bad comparison byte {other}"))),
    })
}

fn encode_piecewise(out: &mut Vec<u8>, set: &PiecewiseStateSet) {
    push_f64(out, set.t_lo());
    push_f64(out, set.t_hi());
    push_u32(out, set.boundaries().len() as u32);
    for &b in set.boundaries() {
        push_f64(out, b);
    }
    push_u32(out, set.n_states() as u32);
    for segment in set.segment_sets() {
        push_bools(out, segment);
    }
}

fn encode_trajectory(out: &mut Vec<u8>, trajectory: &Trajectory) {
    let (dim, ts, ys, ds, stats) = trajectory.to_flat();
    push_u32(out, dim as u32);
    push_u32(out, ts.len() as u32);
    for &v in ts.iter().chain(&ys).chain(&ds) {
        push_f64(out, v);
    }
    for stat in [
        stats.accepted,
        stats.rejected,
        stats.rhs_evals,
        stats.recoveries,
        stats.stiff_fallbacks,
    ] {
        push_u64(out, stat as u64);
    }
}

fn encode_curve(out: &mut Vec<u8>, curve: &CurveExport) {
    match curve {
        CurveExport::Until {
            n,
            t1,
            sat1,
            sat2,
            phase_a,
            phase_b,
        } => {
            out.push(0);
            push_u32(out, *n as u32);
            push_f64(out, *t1);
            push_bools(out, sat1);
            push_bools(out, sat2);
            match phase_a {
                None => out.push(0),
                Some(a) => {
                    out.push(1);
                    encode_trajectory(out, a);
                }
            }
            encode_trajectory(out, phase_b);
        }
        CurveExport::Nested {
            n,
            big_t,
            segment_starts,
            segments,
            gamma2,
            t_lo,
            t_hi,
        } => {
            out.push(1);
            push_u32(out, *n as u32);
            push_f64(out, *big_t);
            push_u32(out, segment_starts.len() as u32);
            for &s in segment_starts {
                push_f64(out, s);
            }
            for segment in segments {
                encode_trajectory(out, segment);
            }
            encode_piecewise(out, gamma2);
            push_f64(out, *t_lo);
            push_f64(out, *t_hi);
        }
        CurveExport::Sampled { ts, values } => {
            out.push(2);
            push_u32(out, ts.len() as u32);
            for &t in ts {
                push_f64(out, t);
            }
            push_u32(out, values.len() as u32);
            for row in values {
                for &v in row {
                    push_f64(out, v);
                }
            }
        }
        CurveExport::Point(p) => {
            out.push(3);
            push_u32(out, p.len() as u32);
            for &v in p {
                push_f64(out, v);
            }
        }
    }
}

fn encode_cache(out: &mut Vec<u8>, cache: &SatCacheExport) {
    push_u32(out, cache.state_keys.len() as u32);
    for key in &cache.state_keys {
        match key {
            StateKeyExport::True => out.push(0),
            StateKeyExport::Ap(ap) => {
                out.push(1);
                push_str(out, ap);
            }
            StateKeyExport::Not(a) => {
                out.push(2);
                push_u32(out, *a);
            }
            StateKeyExport::And(a, b) => {
                out.push(3);
                push_u32(out, *a);
                push_u32(out, *b);
            }
            StateKeyExport::Or(a, b) => {
                out.push(4);
                push_u32(out, *a);
                push_u32(out, *b);
            }
            StateKeyExport::Steady { cmp, p_bits, inner } => {
                out.push(5);
                out.push(cmp_byte(*cmp));
                push_u64(out, *p_bits);
                push_u32(out, *inner);
            }
            StateKeyExport::Prob { cmp, p_bits, path } => {
                out.push(6);
                out.push(cmp_byte(*cmp));
                push_u64(out, *p_bits);
                push_u32(out, *path);
            }
        }
    }
    push_u32(out, cache.path_keys.len() as u32);
    for key in &cache.path_keys {
        match key {
            PathKeyExport::Next {
                lo_bits,
                hi_bits,
                inner,
            } => {
                out.push(0);
                push_u64(out, *lo_bits);
                push_u64(out, *hi_bits);
                push_u32(out, *inner);
            }
            PathKeyExport::Until {
                lo_bits,
                hi_bits,
                lhs,
                rhs,
            } => {
                out.push(1);
                push_u64(out, *lo_bits);
                push_u64(out, *hi_bits);
                push_u32(out, *lhs);
                push_u32(out, *rhs);
            }
        }
    }
    push_u32(out, cache.sets.len() as u32);
    for (id, theta_bits, set) in &cache.sets {
        push_u32(out, *id);
        push_u64(out, *theta_bits);
        encode_piecewise(out, set);
    }
    push_u32(out, cache.curves.len() as u32);
    for (id, theta_bits, curve) in &cache.curves {
        push_u32(out, *id);
        push_u64(out, *theta_bits);
        encode_curve(out, curve);
    }
}

impl SessionSnapshot {
    /// The session key this snapshot restores to (faultless by
    /// construction: faulted sessions are never saved).
    #[must_use]
    pub fn key(&self) -> SessionKey {
        SessionKey {
            model: self.model.clone(),
            params: self.params.clone(),
            fast: self.fast,
            fault: None,
            // Simulate sessions are never snapshotted, so a decoded
            // snapshot always restores to the mean-field arm.
            sim: None,
        }
    }

    /// Encodes the snapshot to its on-disk byte layout, checksum included.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(&MAGIC);
        push_u32(&mut out, VERSION);
        push_str(&mut out, &self.model);
        push_u32(&mut out, self.params.len() as u32);
        for (name, bits) in &self.params {
            push_str(&mut out, name);
            push_u64(&mut out, *bits);
        }
        out.push(u8::from(self.fast));
        push_u32(&mut out, self.entries.len() as u32);
        for entry in &self.entries {
            push_u32(&mut out, entry.m0_bits.len() as u32);
            for bits in &entry.m0_bits {
                push_u64(&mut out, *bits);
            }
            push_u32(&mut out, entry.ts_bits.len() as u32);
            for bits in entry
                .ts_bits
                .iter()
                .chain(&entry.ys_bits)
                .chain(&entry.ds_bits)
            {
                push_u64(&mut out, *bits);
            }
            for stat in &entry.stats {
                push_u64(&mut out, *stat);
            }
            match &entry.regime {
                None => out.push(0),
                Some(regime) => {
                    out.push(1);
                    for bits in &regime.distribution_bits {
                        push_u64(&mut out, *bits);
                    }
                    match regime.settle_bits {
                        None => out.push(0),
                        Some(bits) => {
                            out.push(1);
                            push_u64(&mut out, bits);
                        }
                    }
                }
            }
            encode_cache(&mut out, &entry.cache);
        }
        push_u64(&mut out, self.cached_sets);
        push_u64(&mut out, self.cached_curves);
        let checksum = fnv1a64(&out);
        push_u64(&mut out, checksum);
        out
    }

    /// Decodes and validates a snapshot file.
    ///
    /// # Errors
    ///
    /// Rejects bad magic, unknown schema versions, checksum mismatches,
    /// truncation, and structurally absurd counts, and propagates the
    /// validating constructors' rejections of incoherent payloads. A
    /// rejected file yields no partial data.
    pub fn decode(bytes: &[u8]) -> Result<SessionSnapshot, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapshotError("truncated snapshot".into()));
        }
        if bytes[..4] != MAGIC {
            return Err(SnapshotError("bad magic".into()));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let mut checksum_bytes = [0u8; 8];
        checksum_bytes.copy_from_slice(tail);
        if fnv1a64(payload) != u64::from_le_bytes(checksum_bytes) {
            return Err(SnapshotError("checksum mismatch".into()));
        }
        let mut cursor = Cursor {
            bytes: payload,
            at: 4,
        };
        let version = cursor.u32()?;
        if version != VERSION {
            return Err(SnapshotError(format!(
                "schema version {version}, expected {VERSION}"
            )));
        }
        let model = cursor.string(MAX_STR)?;
        let n_params = cursor.count(MAX_PARAMS, "params")?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let name = cursor.string(MAX_STR)?;
            let bits = cursor.u64()?;
            params.push((name, bits));
        }
        let fast = cursor.u8()? != 0;
        let n_entries = cursor.count(MAX_ENTRIES, "entries")?;
        let mut entries = Vec::with_capacity(n_entries.min(1024));
        for _ in 0..n_entries {
            let dim = cursor.count(MAX_DIM, "dimension")?;
            let m0_bits = cursor.u64s(dim)?;
            let knots = cursor.count(MAX_KNOTS, "knots")?;
            let per_knot = knots
                .checked_mul(dim)
                .ok_or_else(|| SnapshotError("knot count overflow".into()))?;
            let ts_bits = cursor.u64s(knots)?;
            let ys_bits = cursor.u64s(per_knot)?;
            let ds_bits = cursor.u64s(per_knot)?;
            let mut stats = [0u64; 5];
            for stat in &mut stats {
                *stat = cursor.u64()?;
            }
            let regime = match cursor.u8()? {
                0 => None,
                1 => {
                    let distribution_bits = cursor.u64s(dim)?;
                    let settle_bits = match cursor.u8()? {
                        0 => None,
                        1 => Some(cursor.u64()?),
                        other => {
                            return Err(SnapshotError(format!(
                                "bad settle-time marker {other}"
                            )))
                        }
                    };
                    Some(RegimeSnapshot {
                        distribution_bits,
                        settle_bits,
                    })
                }
                other => return Err(SnapshotError(format!("bad regime marker {other}"))),
            };
            let cache = cursor.cache()?;
            entries.push(SnapshotEntry {
                m0_bits,
                ts_bits,
                ys_bits,
                ds_bits,
                stats,
                regime,
                cache,
            });
        }
        let cached_sets = cursor.u64()?;
        let cached_curves = cursor.u64()?;
        if cursor.at != payload.len() {
            return Err(SnapshotError("trailing bytes after payload".into()));
        }
        Ok(SessionSnapshot {
            model,
            params,
            fast,
            entries,
            cached_sets,
            cached_curves,
        })
    }
}

/// A bounds-checked reader over the payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| SnapshotError("truncated snapshot".into()))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn count(&mut self, max: usize, what: &str) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n > max {
            return Err(SnapshotError(format!("absurd {what} count {n}")));
        }
        Ok(n)
    }

    fn u64s(&mut self, n: usize) -> Result<Vec<u64>, SnapshotError> {
        let raw = self.take(n.checked_mul(8).ok_or_else(|| {
            SnapshotError("length overflow".into())
        })?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(c);
                u64::from_le_bytes(buf)
            })
            .collect())
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, SnapshotError> {
        Ok(self.u64s(n)?.into_iter().map(f64::from_bits).collect())
    }

    fn bools(&mut self, n: usize) -> Result<Vec<bool>, SnapshotError> {
        Ok(self.take(n)?.iter().map(|&b| b != 0).collect())
    }

    fn string(&mut self, max: usize) -> Result<String, SnapshotError> {
        let len = self.count(max, "string length")?;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| SnapshotError("non-UTF-8 string".into()))
    }

    fn piecewise(&mut self) -> Result<PiecewiseStateSet, SnapshotError> {
        let t_lo = self.f64()?;
        let t_hi = self.f64()?;
        let n_boundaries = self.count(MAX_MEMOS, "boundaries")?;
        let boundaries = self.f64s(n_boundaries)?;
        let n_states = self.count(MAX_DIM, "set states")?;
        if n_states == 0 {
            return Err(SnapshotError("empty piecewise set".into()));
        }
        let mut sets = Vec::with_capacity(n_boundaries + 1);
        for _ in 0..=n_boundaries {
            sets.push(self.bools(n_states)?);
        }
        PiecewiseStateSet::new(t_lo, t_hi, boundaries, sets)
            .map_err(|e| SnapshotError(format!("bad piecewise set: {e}")))
    }

    fn trajectory(&mut self) -> Result<Trajectory, SnapshotError> {
        let dim = self.count(MAX_DIM, "trajectory dimension")?;
        let knots = self.count(MAX_KNOTS, "trajectory knots")?;
        let per_knot = knots
            .checked_mul(dim)
            .ok_or_else(|| SnapshotError("knot count overflow".into()))?;
        let ts = self.f64s(knots)?;
        let ys = self.f64s(per_knot)?;
        let ds = self.f64s(per_knot)?;
        let mut stats = [0u64; 5];
        for stat in &mut stats {
            *stat = self.u64()?;
        }
        let stats = SolveStats {
            accepted: usize::try_from(stats[0]).unwrap_or(usize::MAX),
            rejected: usize::try_from(stats[1]).unwrap_or(usize::MAX),
            rhs_evals: usize::try_from(stats[2]).unwrap_or(usize::MAX),
            recoveries: usize::try_from(stats[3]).unwrap_or(usize::MAX),
            stiff_fallbacks: usize::try_from(stats[4]).unwrap_or(usize::MAX),
        };
        Trajectory::from_flat(dim, ts, ys, ds, stats)
            .map_err(|e| SnapshotError(format!("bad trajectory: {e}")))
    }

    fn curve(&mut self) -> Result<CurveExport, SnapshotError> {
        match self.u8()? {
            0 => {
                let n = self.count(MAX_DIM, "until states")?;
                let t1 = self.f64()?;
                let sat1 = self.bools(n)?;
                let sat2 = self.bools(n)?;
                let phase_a = match self.u8()? {
                    0 => None,
                    1 => Some(self.trajectory()?),
                    other => {
                        return Err(SnapshotError(format!("bad phase-A marker {other}")))
                    }
                };
                let phase_b = self.trajectory()?;
                Ok(CurveExport::Until {
                    n,
                    t1,
                    sat1,
                    sat2,
                    phase_a,
                    phase_b,
                })
            }
            1 => {
                let n = self.count(MAX_DIM, "nested states")?;
                let big_t = self.f64()?;
                let n_segments = self.count(MAX_SEGMENTS, "segments")?;
                let segment_starts = self.f64s(n_segments)?;
                let mut segments = Vec::with_capacity(n_segments);
                for _ in 0..n_segments {
                    segments.push(self.trajectory()?);
                }
                let gamma2 = self.piecewise()?;
                let t_lo = self.f64()?;
                let t_hi = self.f64()?;
                Ok(CurveExport::Nested {
                    n,
                    big_t,
                    segment_starts,
                    segments,
                    gamma2,
                    t_lo,
                    t_hi,
                })
            }
            2 => {
                let n_samples = self.count(MAX_KNOTS, "samples")?;
                let ts = self.f64s(n_samples)?;
                let n_states = self.count(MAX_DIM, "sampled states")?;
                let mut values = Vec::with_capacity(n_states);
                for _ in 0..n_states {
                    values.push(self.f64s(n_samples)?);
                }
                Ok(CurveExport::Sampled { ts, values })
            }
            3 => {
                let n = self.count(MAX_DIM, "point states")?;
                Ok(CurveExport::Point(self.f64s(n)?))
            }
            other => Err(SnapshotError(format!("bad curve tag {other}"))),
        }
    }

    fn cache(&mut self) -> Result<SatCacheExport, SnapshotError> {
        let n_state_keys = self.count(MAX_KEYS, "state keys")?;
        let mut state_keys = Vec::with_capacity(n_state_keys.min(1024));
        for _ in 0..n_state_keys {
            let key = match self.u8()? {
                0 => StateKeyExport::True,
                1 => StateKeyExport::Ap(self.string(MAX_STR)?),
                2 => StateKeyExport::Not(self.u32()?),
                3 => StateKeyExport::And(self.u32()?, self.u32()?),
                4 => StateKeyExport::Or(self.u32()?, self.u32()?),
                5 => {
                    let cmp = cmp_from_byte(self.u8()?)?;
                    let p_bits = self.u64()?;
                    let inner = self.u32()?;
                    StateKeyExport::Steady { cmp, p_bits, inner }
                }
                6 => {
                    let cmp = cmp_from_byte(self.u8()?)?;
                    let p_bits = self.u64()?;
                    let path = self.u32()?;
                    StateKeyExport::Prob { cmp, p_bits, path }
                }
                other => return Err(SnapshotError(format!("bad state-key tag {other}"))),
            };
            state_keys.push(key);
        }
        let n_path_keys = self.count(MAX_KEYS, "path keys")?;
        let mut path_keys = Vec::with_capacity(n_path_keys.min(1024));
        for _ in 0..n_path_keys {
            let key = match self.u8()? {
                0 => PathKeyExport::Next {
                    lo_bits: self.u64()?,
                    hi_bits: self.u64()?,
                    inner: self.u32()?,
                },
                1 => PathKeyExport::Until {
                    lo_bits: self.u64()?,
                    hi_bits: self.u64()?,
                    lhs: self.u32()?,
                    rhs: self.u32()?,
                },
                other => return Err(SnapshotError(format!("bad path-key tag {other}"))),
            };
            path_keys.push(key);
        }
        let n_sets = self.count(MAX_MEMOS, "memoized sets")?;
        let mut sets = Vec::with_capacity(n_sets.min(1024));
        for _ in 0..n_sets {
            let id = self.u32()?;
            let theta_bits = self.u64()?;
            sets.push((id, theta_bits, self.piecewise()?));
        }
        let n_curves = self.count(MAX_MEMOS, "memoized curves")?;
        let mut curves = Vec::with_capacity(n_curves.min(1024));
        for _ in 0..n_curves {
            let id = self.u32()?;
            let theta_bits = self.u64()?;
            curves.push((id, theta_bits, self.curve()?));
        }
        Ok(SatCacheExport {
            state_keys,
            path_keys,
            sets,
            curves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_cache() -> SatCacheExport {
        SatCacheExport {
            state_keys: vec![
                StateKeyExport::True,
                StateKeyExport::Ap("infected".into()),
                StateKeyExport::Prob {
                    cmp: Comparison::Lt,
                    p_bits: 0.5f64.to_bits(),
                    path: 0,
                },
                StateKeyExport::Not(2),
            ],
            path_keys: vec![PathKeyExport::Until {
                lo_bits: 0.0f64.to_bits(),
                hi_bits: 1.0f64.to_bits(),
                lhs: 0,
                rhs: 1,
            }],
            sets: vec![(
                1,
                2.0f64.to_bits(),
                PiecewiseStateSet::new(
                    0.0,
                    2.0,
                    vec![0.75],
                    vec![vec![true, false], vec![false, true]],
                )
                .unwrap(),
            )],
            curves: vec![(
                0,
                2.0f64.to_bits(),
                CurveExport::Until {
                    n: 2,
                    t1: 0.0,
                    sat1: vec![true, true],
                    sat2: vec![false, true],
                    phase_a: None,
                    phase_b: Trajectory::from_flat(
                        4,
                        vec![0.0, 2.0],
                        vec![1.0, 0.0, 0.0, 1.0, 0.9, 0.1, 0.0, 1.0],
                        vec![0.0; 8],
                        SolveStats::default(),
                    )
                    .unwrap(),
                },
            )],
        }
    }

    fn sample() -> SessionSnapshot {
        SessionSnapshot {
            model: "virus".into(),
            params: vec![("k2".into(), 0.5f64.to_bits())],
            fast: true,
            entries: vec![SnapshotEntry {
                m0_bits: vec![0.8f64.to_bits(), 0.2f64.to_bits()],
                ts_bits: vec![0.0f64.to_bits(), 1.0f64.to_bits()],
                ys_bits: vec![
                    0.8f64.to_bits(),
                    0.2f64.to_bits(),
                    0.7f64.to_bits(),
                    0.3f64.to_bits(),
                ],
                ds_bits: vec![0u64; 4],
                stats: [10, 2, 77, 0, 0],
                regime: Some(RegimeSnapshot {
                    distribution_bits: vec![0.25f64.to_bits(), 0.75f64.to_bits()],
                    settle_bits: Some(4.5f64.to_bits()),
                }),
                cache: sample_cache(),
            }],
            cached_sets: 3,
            cached_curves: 1,
        }
    }

    #[test]
    fn snapshot_round_trips_bitwise() {
        let snapshot = sample();
        let bytes = snapshot.encode();
        let decoded = SessionSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn snapshot_without_regime_or_cache_round_trips() {
        let mut snapshot = sample();
        snapshot.entries[0].regime = None;
        snapshot.entries[0].cache = SatCacheExport::default();
        let bytes = snapshot.encode();
        assert_eq!(SessionSnapshot::decode(&bytes).unwrap(), snapshot);
    }

    #[test]
    fn nested_and_sampled_curves_round_trip() {
        let mut snapshot = sample();
        snapshot.entries[0].cache.curves = vec![
            (
                0,
                1.0f64.to_bits(),
                CurveExport::Nested {
                    n: 1,
                    big_t: 1.0,
                    segment_starts: vec![0.0],
                    segments: vec![Trajectory::from_flat(
                        4,
                        vec![0.0, 1.0],
                        vec![1.0, 0.0, 0.0, 1.0, 0.8, 0.2, 0.0, 1.0],
                        vec![0.0; 8],
                        SolveStats::default(),
                    )
                    .unwrap()],
                    gamma2: PiecewiseStateSet::constant(0.0, 2.0, vec![false]).unwrap(),
                    t_lo: 0.0,
                    t_hi: 1.0,
                },
            ),
            (
                0,
                2.0f64.to_bits(),
                CurveExport::Sampled {
                    ts: vec![0.0, 1.0, 2.0],
                    values: vec![vec![0.1, 0.2, 0.3], vec![0.9, 0.8, 0.7]],
                },
            ),
            (0, 0.0f64.to_bits(), CurveExport::Point(vec![0.25, 0.75])),
        ];
        let bytes = snapshot.encode();
        assert_eq!(SessionSnapshot::decode(&bytes).unwrap(), snapshot);
    }

    #[test]
    fn corrupt_truncated_and_wrong_version_snapshots_are_rejected() {
        let bytes = sample().encode();

        // Flip one payload byte: checksum mismatch.
        let mut corrupt = bytes.clone();
        corrupt[10] ^= 0x40;
        let err = SessionSnapshot::decode(&corrupt).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncate: structurally invalid.
        let err = SessionSnapshot::decode(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(
            err.to_string().contains("checksum") || err.to_string().contains("truncated"),
            "{err}"
        );

        // Wrong version (with a recomputed checksum so only the version
        // check can reject it).
        let mut wrong = bytes.clone();
        wrong[4] = 99;
        let without_sum = wrong.len() - 8;
        let sum = fnv1a64(&wrong[..without_sum]);
        wrong[without_sum..].copy_from_slice(&sum.to_le_bytes());
        let err = SessionSnapshot::decode(&wrong).unwrap_err();
        assert!(err.to_string().contains("schema version 99"), "{err}");

        // Wrong magic.
        let mut bad_magic = bytes;
        bad_magic[0] = b'X';
        let err = SessionSnapshot::decode(&bad_magic).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn structurally_incoherent_payloads_are_rejected_not_trusted() {
        // A piecewise set whose boundary escapes the domain fails its
        // validating constructor even though the checksum is valid. Drop
        // the regime first so the boundary's bit pattern is unique in the
        // payload (the sample regime also contains 0.75).
        let mut snapshot = sample();
        snapshot.entries[0].regime = None;
        let mut bytes = snapshot.encode();
        // The boundary 0.75 is encoded at a fixed offset; instead of hunting
        // for it, flip its bits wholesale and re-checksum: decode must fail
        // in the constructor, not panic later.
        let needle = 0.75f64.to_bits().to_le_bytes();
        let pos = bytes
            .windows(8)
            .position(|w| w == needle)
            .expect("boundary bits present");
        bytes[pos..pos + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let without_sum = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..without_sum]);
        bytes[without_sum..].copy_from_slice(&sum.to_le_bytes());
        let err = SessionSnapshot::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("piecewise"), "{err}");
    }

    #[test]
    fn key_hash_is_stable_across_processes() {
        // These constants pin the consistent hash: if the encoding or the
        // hash ever changes, warm sessions would re-shard on upgrade and
        // old snapshots would be orphaned — fail loudly here instead.
        let key = SessionKey::new("virus", &BTreeMap::new(), false, None);
        assert_eq!(fnv1a64(&key_bytes(&key)), 0x166e_c6c5_4f88_094d);
        let tweaked = SessionKey::new(
            "virus",
            &[("k2".to_string(), 0.5)].into_iter().collect(),
            false,
            None,
        );
        assert_ne!(fnv1a64(&key_bytes(&key)), fnv1a64(&key_bytes(&tweaked)));
        assert_eq!(file_name(&key), format!("sess-{:016x}.snap", 0x166e_c6c5_4f88_094d_u64));
        // The statistical-lane arm routes to its own hash, never aliasing
        // the mean-field key.
        let mut simulated = key.clone();
        simulated.sim = Some(crate::store::SimKey {
            population: 100,
            replications: 200,
            seed: 0,
        });
        assert_ne!(fnv1a64(&key_bytes(&key)), fnv1a64(&key_bytes(&simulated)));
    }
}
