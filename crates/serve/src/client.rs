//! A small wire client for `mfcsld`, used by the CLI's `client`
//! subcommand, the load harness, and the integration tests.

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::time::Duration;

use mfcsl_core::FaultPlan;

use crate::http::{roundtrip, roundtrip_with, Response};
use crate::json::Json;

/// A check request as posted to `POST /v1/check`.
#[derive(Debug, Clone)]
pub struct CheckRequest {
    /// Registry name of the model.
    pub model: String,
    /// Initial occupancy fractions.
    pub m0: Vec<f64>,
    /// MF-CSL formulas (text syntax); the whole batch shares one session.
    pub formulas: Vec<String>,
    /// Use the fast (loose) tolerance preset.
    pub fast: bool,
    /// Parameter overrides applied before instantiation.
    pub params: BTreeMap<String, f64>,
    /// Per-request deadline, measured from admission, in milliseconds.
    pub timeout_ms: Option<f64>,
    /// Debug: ask the server to sleep before checking (needs
    /// `--allow-sleep` server-side; load tests only).
    pub sleep_ms: Option<f64>,
    /// Chaos: seeded fault-injection plan for this request's session (needs
    /// `--allow-faults` server-side; chaos tests only).
    pub fault: Option<FaultPlan>,
    /// Checking mode: `"meanfield"` (the default when absent) or
    /// `"simulate"` for finite-`N` statistical estimation.
    pub mode: Option<String>,
    /// Statistical lane: finite population size `N`.
    pub population: Option<u64>,
    /// Statistical lane: replication count.
    pub replications: Option<u64>,
    /// Statistical lane: base seed of the replication seed stream.
    pub seed: Option<u64>,
}

impl CheckRequest {
    /// A plain request: one model, one occupancy, some formulas.
    #[must_use]
    pub fn new(model: &str, m0: &[f64], formulas: &[String]) -> CheckRequest {
        CheckRequest {
            model: model.to_string(),
            m0: m0.to_vec(),
            formulas: formulas.to_vec(),
            fast: false,
            params: BTreeMap::new(),
            timeout_ms: None,
            sleep_ms: None,
            fault: None,
            mode: None,
            population: None,
            replications: None,
            seed: None,
        }
    }

    fn render(&self) -> String {
        let mut fields = vec![
            ("model".to_string(), Json::Str(self.model.clone())),
            (
                "m0".to_string(),
                Json::Arr(self.m0.iter().map(|&v| Json::Num(v)).collect()),
            ),
            (
                "formulas".to_string(),
                Json::Arr(self.formulas.iter().map(|f| Json::from(f.as_str())).collect()),
            ),
            ("fast".to_string(), Json::Bool(self.fast)),
        ];
        if !self.params.is_empty() {
            fields.push((
                "params".to_string(),
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ));
        }
        if let Some(ms) = self.timeout_ms {
            fields.push(("timeout_ms".to_string(), Json::Num(ms)));
        }
        if let Some(ms) = self.sleep_ms {
            fields.push(("sleep_ms".to_string(), Json::Num(ms)));
        }
        if let Some(mode) = &self.mode {
            fields.push(("mode".to_string(), Json::Str(mode.clone())));
        }
        for (name, value) in [
            ("population", self.population),
            ("replications", self.replications),
            ("seed", self.seed),
        ] {
            if let Some(v) = value {
                fields.push((name.to_string(), Json::Num(v as f64)));
            }
        }
        if let Some(plan) = self.fault {
            fields.push((
                "fault".to_string(),
                Json::Obj(vec![
                    ("mode".to_string(), Json::from(plan.mode.as_str())),
                    ("period".to_string(), Json::Num(plan.period as f64)),
                    ("seed".to_string(), Json::Num(plan.seed as f64)),
                ]),
            ));
        }
        Json::Obj(fields).render()
    }
}

/// One verdict of a check response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireVerdict {
    /// The formula, rendered by the server from its parsed form.
    pub formula: String,
    /// Whether it holds.
    pub holds: bool,
    /// Whether the value was within the numerical margin of the bound.
    pub marginal: bool,
    /// Whether the engine ran tightened-tolerance refinement rounds on a
    /// marginal verdict (the response's `refinement` object carries the
    /// full record).
    pub refined: bool,
}

/// A successful check response.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The occupancy, rendered by the server.
    pub m0: String,
    /// Per-formula verdicts, in request order.
    pub verdicts: Vec<WireVerdict>,
    /// Whether the request hit a warm session.
    pub warm: bool,
    /// Server-side checking time in microseconds.
    pub micros: f64,
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write).
    Io(String),
    /// The server answered with a non-200 status.
    Status {
        /// HTTP status code (`429`, `504`, …).
        status: u16,
        /// The server's error message, if it sent one.
        message: String,
        /// The machine-readable error code, when the server sent one
        /// (`bad_request`, `queue_full`, `engine_numerical`, …).
        code: Option<String>,
        /// `Retry-After` seconds, when the server sent the header.
        retry_after: Option<u64>,
    },
    /// The server answered 200 but the body did not parse.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Status {
                status, message, ..
            } => write!(f, "server answered {status}: {message}"),
            ClientError::Protocol(e) => write!(f, "bad response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Connect timeout for every client call.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
/// Socket read timeout for every client call (checks can be slow on cold
/// sessions, so this is generous).
const IO_TIMEOUT: Duration = Duration::from_secs(120);

fn connect(addr: &str) -> Result<TcpStream, ClientError> {
    let resolved = std::net::ToSocketAddrs::to_socket_addrs(addr)
        .map_err(|e| ClientError::Io(format!("cannot resolve `{addr}`: {e}")))?
        .next()
        .ok_or_else(|| ClientError::Io(format!("`{addr}` resolves to no address")))?;
    let stream = TcpStream::connect_timeout(&resolved, CONNECT_TIMEOUT)
        .map_err(|e| ClientError::Io(format!("cannot connect to {addr}: {e}")))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    Ok(stream)
}

/// Posts a check batch and decodes the response.
///
/// # Errors
///
/// [`ClientError::Status`] carries non-200 answers (`429` with its
/// `Retry-After`, `504` deadlines, `4xx` validation messages).
pub fn post_check(addr: &str, request: &CheckRequest) -> Result<CheckOutcome, ClientError> {
    let mut stream = connect(addr)?;
    let response = roundtrip(
        &mut stream,
        "POST",
        "/v1/check",
        request.render().as_bytes(),
    )
    .map_err(|e| ClientError::Io(e.to_string()))?;
    decode_check_response(&response)
}

/// Cap on one retry backoff sleep, whatever `Retry-After` asked for.
const RETRY_SLEEP_CAP: Duration = Duration::from_secs(2);

/// [`post_check`] with up to `retries` additional attempts on `429`
/// (backpressure) and `503` (shard unavailable) answers — the two statuses
/// that promise the same request may succeed shortly. The sleep between
/// attempts honors the server's `Retry-After` when present, else backs off
/// `100 ms · 2^attempt`, both capped at [`RETRY_SLEEP_CAP`]; the schedule
/// is deterministic (no RNG, no wall-clock decisions) so scripted runs
/// replay identically. Every other error — including transport errors,
/// whose side effects on the server are unknown — surfaces immediately.
///
/// # Errors
///
/// The last attempt's error, in the same shapes as [`post_check`].
pub fn post_check_with_retry(
    addr: &str,
    request: &CheckRequest,
    retries: usize,
) -> Result<CheckOutcome, ClientError> {
    let mut attempt = 0usize;
    loop {
        match post_check(addr, request) {
            Err(ClientError::Status {
                status: 429 | 503,
                retry_after,
                ..
            }) if attempt < retries => {
                let backoff_ms = match retry_after {
                    Some(secs) => secs.saturating_mul(1000),
                    None => 100u64 << attempt.min(10),
                };
                std::thread::sleep(Duration::from_millis(backoff_ms).min(RETRY_SLEEP_CAP));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Decodes a `/v1/check` response (shared by the one-shot [`post_check`]
/// and the keep-alive [`Client`], so both report identical errors).
fn decode_check_response(response: &Response) -> Result<CheckOutcome, ClientError> {
    if response.status != 200 {
        let parsed = Json::parse(&response.text()).ok();
        let field = |name: &str| {
            parsed
                .as_ref()
                .and_then(|v| v.get(name).and_then(Json::as_str).map(str::to_string))
        };
        return Err(ClientError::Status {
            status: response.status,
            message: field("error").unwrap_or_else(|| response.text()),
            code: field("code"),
            retry_after: response
                .header("retry-after")
                .and_then(|v| v.parse().ok()),
        });
    }
    let body = Json::parse(&response.text())
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
    let verdicts = body
        .get("verdicts")
        .and_then(Json::as_arr)
        .ok_or_else(|| ClientError::Protocol("missing `verdicts`".into()))?
        .iter()
        .map(|v| {
            Some(WireVerdict {
                formula: v.get("formula")?.as_str()?.to_string(),
                holds: v.get("holds")?.as_bool()?,
                marginal: v.get("marginal")?.as_bool()?,
                refined: v.get("refinement").is_some(),
            })
        })
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| ClientError::Protocol("malformed verdict entry".into()))?;
    Ok(CheckOutcome {
        m0: body
            .get("m0")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        verdicts,
        warm: body.get("warm").and_then(Json::as_bool).unwrap_or(false),
        micros: body.get("micros").and_then(Json::as_f64).unwrap_or(0.0),
    })
}

/// A keep-alive wire client: holds one connection open across calls, so a
/// loop of requests pays the TCP handshake once instead of per request.
/// Any transport failure on the cached connection (the daemon's idle sweep
/// may have closed it between calls) transparently reconnects once; if the
/// fresh connection also fails, the error surfaces.
#[derive(Debug)]
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for one daemon address. No connection is made until the
    /// first request.
    #[must_use]
    pub fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            stream: None,
        }
    }

    /// Whether a keep-alive connection is currently cached.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// One keep-alive request with reconnect-once fallback.
    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> Result<Response, ClientError> {
        if let Some(mut stream) = self.stream.take() {
            if let Ok(response) = roundtrip_with(&mut stream, method, path, body, false) {
                self.retain(stream, &response);
                return Ok(response);
            }
            // Stale keep-alive connection; fall through to a fresh one.
        }
        let mut stream = connect(&self.addr)?;
        let response = roundtrip_with(&mut stream, method, path, body, false)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        self.retain(stream, &response);
        Ok(response)
    }

    /// Caches the connection unless the server asked to close.
    fn retain(&mut self, stream: TcpStream, response: &Response) {
        let keep = response
            .header("connection")
            .is_none_or(|v| !v.eq_ignore_ascii_case("close"));
        if keep {
            self.stream = Some(stream);
        }
    }

    /// Posts a check batch over the kept-alive connection.
    ///
    /// # Errors
    ///
    /// Same contract as [`post_check`].
    pub fn check(&mut self, request: &CheckRequest) -> Result<CheckOutcome, ClientError> {
        let response = self.request("POST", "/v1/check", request.render().as_bytes())?;
        decode_check_response(&response)
    }

    /// `GET`s a text endpoint over the kept-alive connection.
    ///
    /// # Errors
    ///
    /// Transport failures and non-200 statuses become [`ClientError`].
    pub fn get_text(&mut self, path: &str) -> Result<String, ClientError> {
        let response = self.request("GET", path, b"")?;
        if response.status != 200 {
            return Err(ClientError::Status {
                status: response.status,
                message: response.text(),
                code: None,
                retry_after: None,
            });
        }
        Ok(response.text())
    }
}

/// `GET`s a text endpoint (`/healthz`, `/metrics`, `/v1/models`).
///
/// # Errors
///
/// Transport failures and non-200 statuses become [`ClientError`].
pub fn get_text(addr: &str, path: &str) -> Result<String, ClientError> {
    let mut stream = connect(addr)?;
    let response =
        roundtrip(&mut stream, "GET", path, b"").map_err(|e| ClientError::Io(e.to_string()))?;
    if response.status != 200 {
        return Err(ClientError::Status {
            status: response.status,
            message: response.text(),
            code: None,
            retry_after: None,
        });
    }
    Ok(response.text())
}

/// Asks the daemon to drain and shut down.
///
/// # Errors
///
/// Transport failures and non-200 statuses become [`ClientError`].
pub fn shutdown(addr: &str) -> Result<(), ClientError> {
    let mut stream = connect(addr)?;
    let response = roundtrip(&mut stream, "POST", "/shutdown", b"{}")
        .map_err(|e| ClientError::Io(e.to_string()))?;
    if response.status != 200 {
        return Err(ClientError::Status {
            status: response.status,
            message: response.text(),
            code: None,
            retry_after: None,
        });
    }
    Ok(())
}
