//! End-to-end tests for warm-state persistence (snapshot round-trips,
//! corrupt-snapshot rejection), keep-alive connection reuse, and the shard
//! router (consistent-hash affinity, dead-shard isolation) — all over real
//! sockets on the epoll serving core.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;
use std::time::Duration;

use mfcsl_serve::client::{self, CheckRequest, Client, ClientError};
use mfcsl_serve::metrics::ServerMetrics;
use mfcsl_serve::router::route_for;
use mfcsl_serve::snapshot::fnv1a64;
use mfcsl_serve::{
    reactor, ModelRegistry, ReactorOptions, RequestHandler, Router, RouterConfig, Server,
    ServerConfig, SessionKey, ShardSpec,
};

fn modelfile_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../modelfiles")
}

fn start_daemon(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let registry = ModelRegistry::load(&[modelfile_dir()]).unwrap();
    let server = Server::bind(registry, config).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

fn start_router(shards: Vec<SocketAddr>) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let router: Arc<dyn RequestHandler> = Arc::new(Router::new(&RouterConfig {
        shards: shards.into_iter().map(|addr| ShardSpec { addr }).collect(),
        ..RouterConfig::default()
    }));
    let options = ReactorOptions {
        event_loops: 1,
        workers: 2,
        queue_capacity: 16,
        max_body: 1 << 20,
        idle_timeout: Duration::from_secs(10),
        metrics: Arc::new(ServerMetrics::new()),
        shutdown: Arc::new(AtomicBool::new(false)),
        queue_depth: Arc::new(AtomicUsize::new(0)),
    };
    let handle = std::thread::spawn(move || reactor::run(listener, router, options).unwrap());
    (addr, handle)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfcsld-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn metric_value(metrics: &str, name: &str) -> Option<f64> {
    metrics.lines().find_map(|line| {
        let mut parts = line.split_whitespace();
        (parts.next() == Some(name)).then(|| parts.next())?.and_then(|v| v.parse().ok())
    })
}

const VIRUS_M0: [f64; 3] = [0.8, 0.15, 0.05];

fn virus_formulas() -> Vec<String> {
    [
        "E{<0.3}[ infected ]",
        "EP{>0}[ tt U[0,2] infected ]",
        "ES{>0.1}[ infected ]",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

#[test]
fn snapshot_round_trip_restores_warm_sessions_across_restarts() {
    let dir = temp_dir("snap");
    let config = || ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // First life: cold check, then graceful drain (write-on-drain).
    let (addr, handle) = start_daemon(config());
    let request = CheckRequest::new("virus", &VIRUS_M0, &virus_formulas());
    let cold = client::post_check(&addr, &request).unwrap();
    assert!(!cold.warm, "fresh state dir must not be warm");
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();

    let snaps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
        .collect();
    assert_eq!(snaps.len(), 1, "drain must persist the one warm session");

    // Second life, same state dir: the very first request must be warm and
    // bitwise identical to the first life's verdicts.
    let (addr, handle) = start_daemon(config());
    let restored = client::post_check(&addr, &request).unwrap();
    assert!(
        restored.warm,
        "first request after a restart with --state-dir must hit a warm session"
    );
    assert_eq!(restored.verdicts, cold.verdicts, "restored verdicts must be bitwise identical");
    let metrics = client::get_text(&addr, "/metrics").unwrap();
    assert_eq!(metric_value(&metrics, "mfcsld_snapshot_loaded_total"), Some(1.0), "{metrics}");
    assert_eq!(metric_value(&metrics, "mfcsld_snapshot_rejected_total"), Some(0.0), "{metrics}");
    // The v2 snapshot restores the trajectory, the stationary regime, and
    // the sat-cache, so the restored first request (E + EP + ES formulas)
    // pays no fresh solve of any kind.
    assert_eq!(
        metric_value(&metrics, "mfcsld_engine_trajectory_solves_total"),
        Some(0.0),
        "restored trajectory must prevent a fresh solve\n{metrics}"
    );
    assert_eq!(
        metric_value(&metrics, "mfcsld_engine_regime_solves_total"),
        Some(0.0),
        "restored regime must prevent a fixed-point recompute\n{metrics}"
    );
    assert_eq!(
        metric_value(&metrics, "mfcsld_engine_trajectory_restores_total"),
        Some(1.0),
        "{metrics}"
    );
    assert!(
        metric_value(&metrics, "mfcsld_snapshot_saved_total").unwrap_or(0.0) >= 0.0,
        "{metrics}"
    );
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshots_are_rejected_and_counted_not_trusted() {
    let dir = temp_dir("snap-corrupt");
    let config = || ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // Produce one valid snapshot.
    let (addr, handle) = start_daemon(config());
    let request = CheckRequest::new("virus", &VIRUS_M0, &virus_formulas());
    let cold = client::post_check(&addr, &request).unwrap();
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
    let valid_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "snap"))
        .expect("one valid snapshot");
    let valid = std::fs::read(&valid_path).unwrap();

    // Corrupt: one bit flipped mid-payload (checksum must catch it).
    let mut corrupt = valid.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    std::fs::write(dir.join("sess-0000000000000001.snap"), &corrupt).unwrap();
    // Truncated: torn mid-write.
    std::fs::write(dir.join("sess-0000000000000002.snap"), &valid[..valid.len() / 3]).unwrap();
    // Wrong schema version, with a recomputed (valid) checksum: the version
    // gate must fire even when the bytes are internally consistent.
    let mut wrong_version = valid.clone();
    wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
    let body_len = wrong_version.len() - 8;
    let checksum = fnv1a64(&wrong_version[..body_len]);
    wrong_version[body_len..].copy_from_slice(&checksum.to_le_bytes());
    std::fs::write(dir.join("sess-0000000000000003.snap"), &wrong_version).unwrap();

    // Restart: the valid file loads, all three forgeries are rejected.
    let (addr, handle) = start_daemon(config());
    let metrics = client::get_text(&addr, "/metrics").unwrap();
    assert_eq!(metric_value(&metrics, "mfcsld_snapshot_loaded_total"), Some(1.0), "{metrics}");
    assert_eq!(metric_value(&metrics, "mfcsld_snapshot_rejected_total"), Some(3.0), "{metrics}");
    // The daemon still serves, warm, with identical verdicts.
    let restored = client::post_check(&addr, &request).unwrap();
    assert!(restored.warm);
    assert_eq!(restored.verdicts, cold.verdicts);
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn keepalive_client_reuses_one_connection_for_many_requests() {
    let (addr, handle) = start_daemon(ServerConfig::default());
    let mut keep = Client::new(&addr);
    let request = CheckRequest::new("virus", &VIRUS_M0, &virus_formulas());
    let first = keep.check(&request).unwrap();
    for _ in 0..9 {
        let warm = keep.check(&request).unwrap();
        assert!(warm.warm);
        assert_eq!(warm.verdicts, first.verdicts);
    }
    assert!(keep.is_connected(), "keep-alive connection must survive the loop");
    let metrics = keep.get_text("/metrics").unwrap();
    let connections = metric_value(&metrics, "mfcsld_connections_total").unwrap();
    let completed = metric_value(&metrics, "mfcsld_requests_completed_total").unwrap();
    assert_eq!(completed, 10.0, "{metrics}");
    assert!(
        connections < completed,
        "keep-alive must make connections ({connections}) < requests ({completed})"
    );
    assert_eq!(connections, 1.0, "one client, one connection\n{metrics}");
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn shard_router_pins_keys_and_isolates_dead_shards() {
    let (shard0_addr, shard0_handle) = start_daemon(ServerConfig::default());
    let (shard1_addr, shard1_handle) = start_daemon(ServerConfig::default());
    let shard_addrs: Vec<SocketAddr> =
        vec![shard0_addr.parse().unwrap(), shard1_addr.parse().unwrap()];

    // Two routers over the same fleet: B plays the part of a restarted A,
    // so affinity across router restarts is affinity across instances.
    let (router_a, handle_a) = start_router(shard_addrs.clone());
    let (router_b, handle_b) = start_router(shard_addrs.clone());

    // Find parameter overrides landing on each shard. The hash is
    // deterministic, so this scan is stable across runs and processes.
    let key_for = |k2: Option<f64>| {
        let mut params = BTreeMap::new();
        if let Some(v) = k2 {
            params.insert("k2".to_string(), v);
        }
        SessionKey::new("virus", &params, false, None)
    };
    let request_for = |k2: Option<f64>| {
        let mut request = CheckRequest::new("virus", &VIRUS_M0, &virus_formulas());
        if let Some(v) = k2 {
            request.params.insert("k2".into(), v);
        }
        request
    };
    let mut on_shard = [None, None];
    on_shard[route_for(&key_for(None), 2)] = Some(None);
    for i in 1..64 {
        let v = 0.25 + f64::from(i) * 0.01;
        let slot = route_for(&key_for(Some(v)), 2);
        if on_shard[slot].is_none() {
            on_shard[slot] = Some(Some(v));
        }
        if on_shard.iter().all(Option::is_some) {
            break;
        }
    }
    let k2_of = [on_shard[0].unwrap(), on_shard[1].unwrap()];

    for (shard, k2) in k2_of.iter().enumerate() {
        let request = request_for(*k2);
        // Cold through router A, warm on repeat: the key keeps landing on
        // the same shard.
        let cold = client::post_check(&router_a, &request).unwrap();
        assert!(!cold.warm, "shard {shard} first contact must be cold");
        let warm = client::post_check(&router_a, &request).unwrap();
        assert!(warm.warm, "shard {shard} second contact must be warm");
        assert_eq!(warm.verdicts, cold.verdicts);
        // Through router B (a \"restarted\" router): still warm — the
        // consistent hash, not router-local state, owns placement.
        let via_b = client::post_check(&router_b, &request).unwrap();
        assert!(via_b.warm, "shard {shard} must stay warm across router instances");
        assert_eq!(via_b.verdicts, cold.verdicts);
        // Bitwise identical to asking the owning shard directly.
        let direct = client::post_check(&shard_addrs[shard].to_string(), &request).unwrap();
        assert_eq!(direct.verdicts, cold.verdicts);
    }

    // Fleet introspection and aggregated metrics.
    let shards_json = client::get_text(&router_a, "/v1/shards").unwrap();
    assert!(shards_json.contains(&shard_addrs[0].to_string()), "{shards_json}");
    assert!(shards_json.contains(&shard_addrs[1].to_string()), "{shards_json}");
    let metrics = client::get_text(&router_a, "/metrics").unwrap();
    assert_eq!(metric_value(&metrics, "mfcsld_router_shards"), Some(2.0), "{metrics}");
    assert!(
        metric_value(&metrics, "mfcsld_requests_completed_total").unwrap() >= 6.0,
        "aggregation must sum both shards\n{metrics}"
    );

    // Kill shard 0 out from under the router: its keys answer structured
    // 503s, shard 1's keys keep serving warm.
    client::shutdown(&shard_addrs[0].to_string()).unwrap();
    shard0_handle.join().unwrap();
    match client::post_check(&router_a, &request_for(k2_of[0])) {
        Err(ClientError::Status {
            status,
            code,
            retry_after,
            ..
        }) => {
            assert_eq!(status, 503);
            assert_eq!(code.as_deref(), Some("shard_unavailable"));
            assert_eq!(retry_after, Some(1));
        }
        other => panic!("expected a 503 for the dead shard's key, got {other:?}"),
    }
    let survivor = client::post_check(&router_a, &request_for(k2_of[1])).unwrap();
    assert!(survivor.warm, "the surviving shard must keep serving warm");

    // Drain: router B's shutdown fans out to the surviving shard; router
    // A's fan-out to dead shards is best-effort.
    client::shutdown(&router_b).unwrap();
    handle_b.join().unwrap();
    shard1_handle.join().unwrap();
    client::shutdown(&router_a).unwrap();
    handle_a.join().unwrap();
}
