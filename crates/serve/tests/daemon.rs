//! End-to-end tests for the `mfcsld` daemon: real sockets, real worker
//! threads, verdicts compared against the offline engine.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mfcsl_core::mfcsl::{parse_formula, CheckSession};
use mfcsl_core::Occupancy;
use mfcsl_serve::client::{self, CheckRequest, ClientError};
use mfcsl_serve::{ModelRegistry, Server, ServerConfig};

fn modelfile_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../modelfiles")
}

fn start_daemon(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let registry = ModelRegistry::load(&[modelfile_dir()]).unwrap();
    let server = Server::bind(registry, config).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

const VIRUS_M0: [f64; 3] = [0.8, 0.15, 0.05];

fn virus_formulas() -> Vec<String> {
    [
        "E{<0.3}[ infected ]",
        "EP{>0}[ tt U[0,2] infected ]",
        "EP{<0.5}[ not_infected U[0,1] active ]",
        "ES{>0.1}[ infected ]",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

#[test]
fn daemon_matches_offline_engine_and_reuses_sessions() {
    let (addr, handle) = start_daemon(ServerConfig::default());

    // Offline reference: same model file, same batch through check_all.
    let file = mfcsl_modelfile::ModelFile::load(&modelfile_dir().join("virus.mf")).unwrap();
    let model = file.instantiate().unwrap();
    let session = CheckSession::new(&model);
    let psis: Vec<_> = virus_formulas()
        .iter()
        .map(|f| parse_formula(f).unwrap())
        .collect();
    let m0 = Occupancy::new(VIRUS_M0.to_vec()).unwrap();
    let offline = session.check_all(&psis, &m0).unwrap();

    let request = CheckRequest::new("virus", &VIRUS_M0, &virus_formulas());
    let cold = client::post_check(&addr, &request).unwrap();
    assert!(!cold.warm, "first request must build the session");
    assert_eq!(cold.verdicts.len(), offline.len());
    for (wire, reference) in cold.verdicts.iter().zip(&offline) {
        assert_eq!(wire.holds, reference.holds(), "{}", wire.formula);
        assert_eq!(wire.marginal, reference.is_marginal(), "{}", wire.formula);
    }
    // The server echoes the occupancy and formulas in their parsed
    // renderings, so clients can reproduce offline output verbatim.
    assert_eq!(cold.m0, m0.to_string());
    for (wire, psi) in cold.verdicts.iter().zip(&psis) {
        assert_eq!(wire.formula, psi.to_string());
    }

    // Second identical batch: warm session, answered from the caches.
    let warm = client::post_check(&addr, &request).unwrap();
    assert!(warm.warm, "second request must hit the warm session");
    for (a, b) in cold.verdicts.iter().zip(&warm.verdicts) {
        assert_eq!(a, b);
    }

    // A different tolerance preset is a different session.
    let mut fast = request.clone();
    fast.fast = true;
    assert!(!client::post_check(&addr, &fast).unwrap().warm);

    // A parameter override is a different session too.
    let mut tweaked = request.clone();
    tweaked.params.insert("k2".into(), 0.5);
    assert!(!client::post_check(&addr, &tweaked).unwrap().warm);

    assert_eq!(client::get_text(&addr, "/healthz").unwrap(), "ok\n");
    let models = client::get_text(&addr, "/v1/models").unwrap();
    assert!(models.contains("\"virus\""), "{models}");

    let metrics = client::get_text(&addr, "/metrics").unwrap();
    assert!(metrics.contains("mfcsld_session_warm_hits_total 1"), "{metrics}");
    assert!(metrics.contains("mfcsld_session_cold_starts_total 3"), "{metrics}");
    assert!(metrics.contains("mfcsld_sessions_warm 3"), "{metrics}");
    // The warm batch re-used the cold batch's trajectory.
    assert!(metrics.contains("mfcsld_engine_trajectory_solves_total 3"), "{metrics}");
    assert!(metrics.contains("mfcsld_requests_completed_total 4"), "{metrics}");
    assert!(metrics.contains("mfcsld_requests_rejected_total 0"), "{metrics}");

    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
    // The socket is gone after shutdown.
    assert!(client::get_text(&addr, "/healthz").is_err());
}

#[test]
fn daemon_validates_requests() {
    let (addr, handle) = start_daemon(ServerConfig::default());

    let formulas = vec!["E{<0.3}[ infected ]".to_string()];
    fn status<T: std::fmt::Debug>(r: Result<T, ClientError>) -> (u16, String) {
        match r {
            Err(ClientError::Status {
                status, message, ..
            }) => (status, message),
            other => panic!("expected a status error, got {other:?}"),
        }
    }

    let (code, msg) = status(client::post_check(
        &addr,
        &CheckRequest::new("ghost", &VIRUS_M0, &formulas),
    ));
    assert_eq!(code, 404);
    assert!(msg.contains("unknown model `ghost`"), "{msg}");

    let (code, msg) = status(client::post_check(
        &addr,
        &CheckRequest::new("virus", &[0.5, 0.6, 0.2], &formulas),
    ));
    assert_eq!(code, 400);
    assert!(msg.contains("bad `m0`"), "{msg}");

    let (code, msg) = status(client::post_check(
        &addr,
        &CheckRequest::new("virus", &VIRUS_M0, &["E{<0.3}[ ghost_label ]".to_string()]),
    ));
    assert_eq!(code, 400);
    assert!(msg.contains("ghost_label"), "{msg}");

    let mut bad_param = CheckRequest::new("virus", &VIRUS_M0, &formulas);
    bad_param.params.insert("zz".into(), 1.0);
    let (code, msg) = status(client::post_check(&addr, &bad_param));
    assert_eq!(code, 400);
    assert!(msg.contains("unknown parameter override `zz`"), "{msg}");

    let (code, _) = status(client::get_text(&addr, "/nothing/here"));
    assert_eq!(code, 404);

    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn daemon_applies_backpressure_and_deadlines() {
    // One worker, queue of one: a sleeping request plus a queued request
    // saturate the daemon, so a third connection gets 429 at accept time.
    let (addr, handle) = start_daemon(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        threads: 1,
        allow_sleep: true,
        ..ServerConfig::default()
    });
    let formulas = vec!["E{<0.3}[ infected ]".to_string()];

    let mut sleepy = CheckRequest::new("virus", &VIRUS_M0, &formulas);
    sleepy.sleep_ms = Some(600.0);
    let addr_a = addr.clone();
    let s_a = sleepy.clone();
    let a = std::thread::spawn(move || client::post_check(&addr_a, &s_a));
    // Wait until the worker has picked request A up (its connection leaves
    // the queue), then fill the queue with B.
    std::thread::sleep(Duration::from_millis(150));
    let addr_b = addr.clone();
    let s_b = sleepy.clone();
    let b = std::thread::spawn(move || client::post_check(&addr_b, &s_b));
    std::thread::sleep(Duration::from_millis(150));

    // C: the queue is full → 429 with a Retry-After hint, immediately.
    let started = Instant::now();
    let c = client::post_check(&addr, &CheckRequest::new("virus", &VIRUS_M0, &formulas));
    match c {
        Err(ClientError::Status {
            status,
            retry_after,
            ..
        }) => {
            assert_eq!(status, 429);
            assert_eq!(retry_after, Some(1));
        }
        other => panic!("expected 429, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(400),
        "429 must not wait for the queue to drain"
    );

    // A and B both complete once the worker gets to them.
    assert!(a.join().unwrap().unwrap().verdicts[0].holds);
    assert!(b.join().unwrap().unwrap().verdicts[0].holds);

    // A request whose deadline expires while it sleeps gets 504.
    let mut doomed = CheckRequest::new("virus", &VIRUS_M0, &formulas);
    doomed.sleep_ms = Some(2_000.0);
    doomed.timeout_ms = Some(100.0);
    match client::post_check(&addr, &doomed) {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 504),
        other => panic!("expected 504, got {other:?}"),
    }

    let metrics = client::get_text(&addr, "/metrics").unwrap();
    assert!(metrics.contains("mfcsld_requests_rejected_total 1"), "{metrics}");
    assert!(metrics.contains("mfcsld_requests_timed_out_total 1"), "{metrics}");

    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn daemon_survives_hostile_requests() {
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    // One worker: every hostile request below hits the same worker, so the
    // final healthz proves none of them killed it.
    let (addr, handle) = start_daemon(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let formulas = vec!["E{<0.3}[ infected ]".to_string()];

    // `1e999` overflows f64 parsing to infinity; fed raw to
    // `Duration::from_secs_f64` it would panic. Must be a clean 400.
    for bad in [
        r#""timeout_ms":1e999"#,
        r#""timeout_ms":-5"#,
        r#""timeout_ms":"soon""#,
        r#""sleep_ms":1e999"#,
    ] {
        let body = format!(
            r#"{{"model":"virus","m0":[0.8,0.15,0.05],"formulas":["E{{<0.3}}[ infected ]"],{bad}}}"#
        );
        let mut stream = TcpStream::connect(&addr).unwrap();
        let resp =
            mfcsl_serve::http::roundtrip(&mut stream, "POST", "/v1/check", body.as_bytes())
                .unwrap();
        assert_eq!(resp.status, 400, "{bad} → {}", resp.text());
        assert!(
            resp.text().contains("finite non-negative"),
            "{bad} → {}",
            resp.text()
        );
    }

    // Absurd-but-finite timeouts are clamped (to 1h), never a panic.
    let mut capped = CheckRequest::new("virus", &VIRUS_M0, &formulas);
    capped.timeout_ms = Some(1e30);
    assert!(client::post_check(&addr, &capped).unwrap().verdicts[0].holds);

    // A header line with no newline is cut off at the line limit (the
    // exact 400 is unit-tested in `http`); here the worker must shrug it
    // off and keep serving.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nx-junk: ")
        .unwrap();
    let _ = stream.write_all(&vec![b'a'; 16 * 1024]);
    let _ = stream.flush();
    let mut reply = String::new();
    let _ = stream.read_to_string(&mut reply);
    drop(stream);

    // The lone worker is still alive and serving.
    assert_eq!(client::get_text(&addr, "/healthz").unwrap(), "ok\n");
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn daemon_evicts_sessions_beyond_the_cap() {
    let (addr, handle) = start_daemon(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    });
    let request = CheckRequest::new("virus", &VIRUS_M0, &virus_formulas());
    assert!(!client::post_check(&addr, &request).unwrap().warm);
    // A different key displaces the first session (cap is 1)…
    let mut tweaked = request.clone();
    tweaked.params.insert("k2".into(), 0.5);
    assert!(!client::post_check(&addr, &tweaked).unwrap().warm);
    // …so re-posting the first key is cold again, and the store stays at
    // one session no matter how many keys clients invent.
    assert!(!client::post_check(&addr, &request).unwrap().warm);
    let metrics = client::get_text(&addr, "/metrics").unwrap();
    assert!(metrics.contains("mfcsld_sessions_warm 1"), "{metrics}");
    assert!(metrics.contains("mfcsld_sessions_evicted_total 2"), "{metrics}");
    // Engine totals include the evicted sessions' work: three cold
    // sessions each solved one trajectory.
    assert!(metrics.contains("mfcsld_engine_trajectory_solves_total 3"), "{metrics}");
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn fault_requests_need_the_opt_in_flag() {
    // Without --allow-faults, a fault request is refused up front with a
    // machine-readable code — it must never reach the engine.
    let (addr, handle) = start_daemon(ServerConfig::default());
    let mut request = CheckRequest::new("virus", &VIRUS_M0, &virus_formulas());
    request.fault = Some(mfcsl_core::FaultPlan::new(mfcsl_core::FaultMode::Nan, 1, 7));
    match client::post_check(&addr, &request) {
        Err(ClientError::Status { status, code, .. }) => {
            assert_eq!(status, 400);
            assert_eq!(code.as_deref(), Some("faults_disabled"));
        }
        other => panic!("expected 400 faults_disabled, got {other:?}"),
    }
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn chaos_faults_give_structured_errors_quarantine_and_no_dead_workers() {
    // One worker: every request funnels through it, so surviving the whole
    // chaos run proves engine failures never kill a worker.
    let (addr, handle) = start_daemon(ServerConfig {
        workers: 1,
        allow_faults: true,
        ..ServerConfig::default()
    });
    // A time-bounded path formula forces a trajectory solve over [0, 2],
    // so the injected NaN actually reaches the integrator.
    let horizon_formula = vec!["EP{>0}[ tt U[0,2] infected ]".to_string()];
    let mut poisoned = CheckRequest::new("virus", &VIRUS_M0, &horizon_formula);
    poisoned.fault = Some(mfcsl_core::FaultPlan::new(mfcsl_core::FaultMode::Nan, 1, 7));
    let healthy = CheckRequest::new("virus", &VIRUS_M0, &horizon_formula);

    // Interleave repeated engine failures with healthy traffic: faulted
    // requests are 500s with a machine-readable code (a validated request
    // that fails is the daemon's problem, not the client's), while the
    // healthy session — a different key — keeps answering throughout.
    for round in 0..4 {
        match client::post_check(&addr, &poisoned) {
            Err(ClientError::Status { status, code, message, .. }) => {
                assert_eq!(status, 500, "round {round}: {message}");
                assert_eq!(code.as_deref(), Some("engine_numerical"), "round {round}");
            }
            other => panic!("round {round}: expected 500 engine_numerical, got {other:?}"),
        }
        assert!(
            client::post_check(&addr, &healthy).unwrap().verdicts[0].holds,
            "healthy traffic must keep flowing during the chaos run"
        );
    }

    let metrics = client::get_text(&addr, "/metrics").unwrap();
    // Three consecutive failures quarantine the poisoned session; the
    // fourth request rebuilt it from scratch (visible as a second cold
    // start for its key).
    assert!(metrics.contains("mfcsld_sessions_quarantined_total 1"), "{metrics}");
    assert!(metrics.contains("mfcsld_requests_engine_errors_total 4"), "{metrics}");
    assert!(metrics.contains("mfcsld_worker_panics_total 0"), "{metrics}");
    assert!(metrics.contains("mfcsld_requests_completed_total 4"), "{metrics}");
    // The lone worker is still alive.
    assert_eq!(client::get_text(&addr, "/healthz").unwrap(), "ok\n");
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn marginal_verdicts_carry_a_refinement_record_on_the_wire() {
    let (addr, handle) = start_daemon(ServerConfig::default());
    // The expectation at t=0 is exactly the infected mass (s2 + s3 = 0.2),
    // so bounding it by its own value is maximally marginal: the engine
    // refines through its whole round budget and reports that in the
    // response.
    let request = CheckRequest::new("virus", &VIRUS_M0, &["E{>=0.2}[ infected ]".to_string()]);
    let outcome = client::post_check(&addr, &request).unwrap();
    assert!(outcome.verdicts[0].marginal, "{:?}", outcome.verdicts);
    assert!(outcome.verdicts[0].refined, "{:?}", outcome.verdicts);
    // A comfortably non-marginal verdict carries no refinement record.
    let plain = CheckRequest::new("virus", &VIRUS_M0, &["E{<0.5}[ infected ]".to_string()]);
    let outcome = client::post_check(&addr, &plain).unwrap();
    assert!(!outcome.verdicts[0].marginal);
    assert!(!outcome.verdicts[0].refined);
    let metrics = client::get_text(&addr, "/metrics").unwrap();
    assert!(metrics.contains("mfcsld_engine_refined_verdicts_total 1"), "{metrics}");
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn prewarm_endpoint_batches_the_sweep_and_keeps_verdicts_bitwise() {
    use std::net::TcpStream;

    let (addr, handle) = start_daemon(ServerConfig::default());
    let sweep: [[f64; 3]; 3] = [VIRUS_M0, [0.7, 0.2, 0.1], [0.6, 0.3, 0.1]];

    // One prewarm request: three lanes, one batched Dopri5 drive.
    let body = format!(
        r#"{{"model":"virus","m0s":[{}],"horizon":5.0}}"#,
        sweep
            .iter()
            .map(|m| format!("[{},{},{}]", m[0], m[1], m[2]))
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut stream = TcpStream::connect(&addr).unwrap();
    let resp =
        mfcsl_serve::http::roundtrip(&mut stream, "POST", "/v1/prewarm", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let reply = mfcsl_serve::Json::parse(&resp.text()).unwrap();
    assert_eq!(reply.get("warmed").and_then(mfcsl_serve::Json::as_f64), Some(3.0));
    assert_eq!(reply.get("lanes").and_then(mfcsl_serve::Json::as_f64), Some(3.0));
    assert_eq!(reply.get("warm").and_then(mfcsl_serve::Json::as_bool), Some(false));

    // Offline reference: a cold scalar session. The daemon prewarms with
    // per-lane controllers, so its verdicts must match bitwise — same
    // holds/marginal for every formula at every occupancy.
    let file = mfcsl_modelfile::ModelFile::load(&modelfile_dir().join("virus.mf")).unwrap();
    let model = file.instantiate().unwrap();
    let offline = CheckSession::new(&model);
    let psis: Vec<_> = virus_formulas()
        .iter()
        .map(|f| parse_formula(f).unwrap())
        .collect();
    for m0 in &sweep {
        let reference = offline
            .check_all(&psis, &Occupancy::new(m0.to_vec()).unwrap())
            .unwrap();
        let outcome = client::post_check(&addr, &CheckRequest::new("virus", m0, &virus_formulas()))
            .unwrap();
        assert!(outcome.warm, "prewarm must have built the session");
        for (wire, scalar) in outcome.verdicts.iter().zip(&reference) {
            assert_eq!(wire.holds, scalar.holds(), "{} at {m0:?}", wire.formula);
            assert_eq!(wire.marginal, scalar.is_marginal(), "{} at {m0:?}", wire.formula);
        }
    }

    let metrics = client::get_text(&addr, "/metrics").unwrap();
    assert!(metrics.contains("mfcsld_prewarm_requests_total 1"), "{metrics}");
    assert!(metrics.contains("mfcsld_engine_prewarm_lanes_total 3"), "{metrics}");
    // All three trajectories came from the one batched drive; the checks
    // afterwards reused them instead of solving scalar.
    assert!(metrics.contains("mfcsld_engine_trajectory_solves_total 3"), "{metrics}");
    assert!(metrics.contains("mfcsld_session_cold_starts_total 1"), "{metrics}");
    assert!(metrics.contains("mfcsld_session_warm_hits_total 3"), "{metrics}");

    // Re-prewarming the same sweep is a cheap no-op: everything is cached.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let resp =
        mfcsl_serve::http::roundtrip(&mut stream, "POST", "/v1/prewarm", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let reply = mfcsl_serve::Json::parse(&resp.text()).unwrap();
    assert_eq!(reply.get("warmed").and_then(mfcsl_serve::Json::as_f64), Some(0.0));

    // Malformed prewarms are clean client errors, never dead workers.
    for (bad, status) in [
        (r#"{"model":"ghost","m0s":[[0.8,0.15,0.05]],"horizon":5.0}"#, 404),
        (r#"{"model":"virus","m0s":[[0.5,0.6,0.2]],"horizon":5.0}"#, 400),
        (r#"{"model":"virus","m0s":[[0.8,0.15,0.05]],"horizon":-1.0}"#, 400),
        (r#"{"model":"virus","m0s":"everywhere","horizon":5.0}"#, 400),
        (r#"{"model":"virus","horizon":5.0}"#, 400),
    ] {
        let mut stream = TcpStream::connect(&addr).unwrap();
        let resp =
            mfcsl_serve::http::roundtrip(&mut stream, "POST", "/v1/prewarm", bad.as_bytes())
                .unwrap();
        assert_eq!(resp.status, status, "{bad} → {}", resp.text());
    }
    assert_eq!(client::get_text(&addr, "/healthz").unwrap(), "ok\n");

    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_clients_get_identical_verdicts() {
    let (addr, handle) = start_daemon(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let request = Arc::new(CheckRequest::new("virus", &VIRUS_M0, &virus_formulas()));
    let reference = client::post_check(&addr, &request).unwrap();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let request = Arc::clone(&request);
            std::thread::spawn(move || client::post_check(&addr, &request).unwrap())
        })
        .collect();
    for c in clients {
        let outcome = c.join().unwrap();
        assert!(outcome.warm);
        assert_eq!(outcome.verdicts, reference.verdicts);
    }

    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}
