//! Fuzz smoke over the daemon's JSON layer: deterministic mutations of a
//! committed request corpus (`fuzz/corpus/json/`) posted at a live daemon,
//! asserting every response is either `200` or a structured error object
//! (`error` + `code`) — and that no handler panicked along the way. The
//! budget is bounded (`MFCSL_FUZZ_ITERS` raises it for soak runs), and the
//! mutation stream is a fixed xorshift64 sequence, so the smoke's runtime
//! and coverage are reproducible.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use mfcsl_serve::http::roundtrip;
use mfcsl_serve::{client, Json, ModelRegistry, Server, ServerConfig};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus/json")
}

fn modelfile_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../modelfiles")
}

struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn iterations() -> usize {
    std::env::var("MFCSL_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

const INTERESTING: &[u8] = b"{}[]\",:0923ee+-.\\ntfu \xff\xc3\x00";

fn mutate(seed: &[u8], rng: &mut XorShift64) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    // `below` may return 0: some mutants are the pristine seed, which keeps
    // the happy path (the valid seeds answer 200) inside the stream.
    for _ in 0..rng.below(6) {
        match rng.below(4) {
            0 if !bytes.is_empty() => {
                let at = rng.below(bytes.len());
                bytes[at] = INTERESTING[rng.below(INTERESTING.len())];
            }
            1 => {
                let at = rng.below(bytes.len() + 1);
                bytes.insert(at, INTERESTING[rng.below(INTERESTING.len())]);
            }
            2 if !bytes.is_empty() => {
                bytes.truncate(rng.below(bytes.len() + 1));
            }
            _ if bytes.len() >= 2 => {
                let from = rng.below(bytes.len());
                let len = rng.below(bytes.len() - from) + 1;
                let slice = bytes[from..from + len].to_vec();
                let at = rng.below(bytes.len());
                bytes.splice(at..at, slice);
            }
            _ => {}
        }
    }
    bytes
}

/// Soak-budget guard: a digit-spliced `replications` of 40 000 000 would
/// make the smoke's wall clock depend on the mutation stream. Mutants that
/// parse AND ask for outsized work are skipped — the validation layers they
/// would exercise are already covered by the in-budget mutants.
fn too_expensive(bytes: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return false;
    };
    let Ok(body) = Json::parse(text) else {
        return false;
    };
    ["population", "replications", "horizon"].iter().any(|name| {
        body.get(name)
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 1e4)
    })
}

#[test]
fn daemon_json_layer_survives_mutated_corpus_with_structured_errors() {
    let mut seeds: Vec<(String, Vec<u8>)> = std::fs::read_dir(corpus_dir())
        .expect("fuzz/corpus/json must exist")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            (name, std::fs::read(e.path()).expect("readable seed"))
        })
        .collect();
    seeds.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(!seeds.is_empty(), "seed corpus must not be empty");

    let registry = ModelRegistry::load(&[modelfile_dir()]).unwrap();
    let server = Server::bind(registry, ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().unwrap());

    let mut rng = XorShift64(0xf022_55aa_0000_0001);
    let mut ok = 0usize;
    let mut rejected = 0usize;
    for i in 0..iterations() {
        let (name, seed) = &seeds[i % seeds.len()];
        let body = mutate(seed, &mut rng);
        if too_expensive(&body) {
            continue;
        }
        let path = if name.starts_with("prewarm") {
            "/v1/prewarm"
        } else {
            "/v1/check"
        };
        let mut stream = TcpStream::connect(&addr).unwrap();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
        let response = roundtrip(&mut stream, "POST", path, &body).unwrap();
        if response.status == 200 {
            ok += 1;
            continue;
        }
        rejected += 1;
        let parsed = Json::parse(&response.text()).unwrap_or_else(|e| {
            panic!(
                "{name} mutant {i}: non-200 body must be JSON, got {e}: {}",
                response.text()
            )
        });
        assert!(
            parsed.get("error").and_then(Json::as_str).is_some()
                && parsed.get("code").and_then(Json::as_str).is_some(),
            "{name} mutant {i}: error responses must carry `error` and `code`: {}",
            response.text()
        );
    }
    // The stream must exercise both arms, or the smoke silently degraded
    // into testing only one path.
    assert!(rejected > 0, "no mutant was rejected");
    assert!(ok > 0, "no mutant survived validation");

    let metrics = client::get_text(&addr, "/metrics").unwrap();
    assert!(
        metrics.contains("mfcsld_worker_panics_total 0"),
        "a handler panicked during the fuzz smoke: {metrics}"
    );
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}
