//! End-to-end tests for the daemon's statistical lane: `"mode":
//! "simulate"` on `POST /v1/check` (finite-N verdicts with confidence
//! intervals), strict top-level field validation, and the guarantee that
//! simulated sessions never alias mean-field ones — in the store, in the
//! metrics, or in the warm-state snapshots.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use mfcsl_serve::http::{roundtrip, Response};
use mfcsl_serve::{client, Json, ModelRegistry, Server, ServerConfig};

fn modelfile_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../modelfiles")
}

fn start_daemon(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let registry = ModelRegistry::load(&[modelfile_dir()]).unwrap();
    let server = Server::bind(registry, config).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

/// Posts a raw JSON body to `POST /v1/check` (the typed client cannot
/// express malformed requests, and the simulate response carries fields the
/// typed outcome does not decode).
fn post_raw(addr: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    roundtrip(&mut stream, "POST", "/v1/check", body.as_bytes()).unwrap()
}

const SIMULATE_BODY: &str = concat!(
    "{\"model\":\"virus\",\"m0\":[0.8,0.15,0.05],",
    "\"formulas\":[\"EP{>0}[ tt U[0,2] infected ]\",\"E{<0.6}[ infected ]\"],",
    "\"mode\":\"simulate\",\"population\":50,\"replications\":60,\"seed\":7}"
);

#[test]
fn simulate_mode_serves_interval_verdicts_and_never_aliases_meanfield() {
    let (addr, handle) = start_daemon(ServerConfig::default());

    let cold = post_raw(&addr, SIMULATE_BODY);
    assert_eq!(cold.status, 200, "{}", cold.text());
    let body = Json::parse(&cold.text()).unwrap();
    assert_eq!(body.get("mode").and_then(Json::as_str), Some("simulate"));
    assert_eq!(body.get("population").and_then(Json::as_f64), Some(50.0));
    assert_eq!(body.get("replications").and_then(Json::as_f64), Some(60.0));
    assert_eq!(body.get("warm").and_then(Json::as_bool), Some(false));
    let verdicts = body.get("verdicts").and_then(Json::as_arr).unwrap();
    assert_eq!(verdicts.len(), 2);
    for v in verdicts {
        assert!(v.get("holds").and_then(Json::as_bool).is_some());
        assert!(v.get("marginal").and_then(Json::as_bool).is_some());
        let estimates = v.get("estimates").and_then(Json::as_arr).unwrap();
        assert!(!estimates.is_empty(), "every verdict carries estimates");
        for e in estimates {
            let mean = e.get("mean").and_then(Json::as_f64).unwrap();
            let lo = e.get("lo").and_then(Json::as_f64).unwrap();
            let hi = e.get("hi").and_then(Json::as_f64).unwrap();
            assert!(lo <= mean && mean <= hi, "CI [{lo}, {hi}] must cover {mean}");
            assert_eq!(e.get("n").and_then(Json::as_f64), Some(60.0));
        }
    }

    // Same request again: warm hit, and (fixed seed stream) bitwise
    // identical verdicts — replaying a batch must not re-sample.
    let warm = post_raw(&addr, SIMULATE_BODY);
    assert_eq!(warm.status, 200);
    let warm_body = Json::parse(&warm.text()).unwrap();
    assert_eq!(warm_body.get("warm").and_then(Json::as_bool), Some(true));
    assert_eq!(
        Json::Arr(verdicts.to_vec()).render(),
        Json::Arr(warm_body.get("verdicts").and_then(Json::as_arr).unwrap().to_vec()).render(),
        "warm simulate replay must be bitwise identical"
    );

    // The same model checked without a mode is a mean-field request: it
    // must cold-start its own session, not alias the simulated one.
    let meanfield = post_raw(
        &addr,
        "{\"model\":\"virus\",\"m0\":[0.8,0.15,0.05],\"formulas\":[\"E{<0.6}[ infected ]\"]}",
    );
    assert_eq!(meanfield.status, 200, "{}", meanfield.text());
    let mf_body = Json::parse(&meanfield.text()).unwrap();
    assert_eq!(
        mf_body.get("warm").and_then(Json::as_bool),
        Some(false),
        "a mean-field request must never hit a simulated session"
    );
    assert!(mf_body.get("mode").is_none());

    // A different seed is a different simulated session.
    let reseeded = post_raw(&addr, &SIMULATE_BODY.replace("\"seed\":7", "\"seed\":8"));
    assert_eq!(reseeded.status, 200);
    let re_body = Json::parse(&reseeded.text()).unwrap();
    assert_eq!(re_body.get("warm").and_then(Json::as_bool), Some(false));

    let metrics = client::get_text(&addr, "/metrics").unwrap();
    assert!(metrics.contains("mfcsld_simulate_requests_total 3"), "{metrics}");
    assert!(metrics.contains("mfcsld_simulate_replications_total 180"), "{metrics}");

    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn simulate_requests_validate_fields_and_reject_unknown_fields() {
    let (addr, handle) = start_daemon(ServerConfig::default());

    let expect_bad = |body: &str, needle: &str| {
        let response = post_raw(&addr, body);
        assert_eq!(response.status, 400, "{}", response.text());
        let parsed = Json::parse(&response.text()).unwrap();
        assert_eq!(parsed.get("code").and_then(Json::as_str), Some("bad_request"));
        let message = parsed.get("error").and_then(Json::as_str).unwrap().to_string();
        assert!(message.contains(needle), "`{message}` should mention `{needle}`");
    };

    // Satellite: a typo'd top-level field fails loudly, naming the field.
    expect_bad(
        &SIMULATE_BODY.replace("\"population\"", "\"poplation\""),
        "unknown request field `poplation`",
    );
    // Simulation knobs without the mode would silently answer the wrong
    // question; they are rejected instead.
    expect_bad(
        "{\"model\":\"virus\",\"m0\":[0.8,0.15,0.05],\"formulas\":[\"tt\"],\"population\":50}",
        "`population` requires \"mode\": \"simulate\"",
    );
    expect_bad(
        &SIMULATE_BODY.replace("\"simulate\"", "\"bogus\""),
        "`mode` must be \"meanfield\" or \"simulate\"",
    );
    expect_bad(
        &SIMULATE_BODY.replace("\"replications\":60", "\"replications\":-3"),
        "`replications` must be a non-negative integer",
    );

    // Prewarm rejects unknown fields with the same shape.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let prewarm = roundtrip(
        &mut stream,
        "POST",
        "/v1/prewarm",
        b"{\"model\":\"virus\",\"m0s\":[[0.8,0.15,0.05]],\"horizon\":2.0,\"mode\":\"simulate\"}",
    )
    .unwrap();
    assert_eq!(prewarm.status, 400);
    assert!(prewarm.text().contains("unknown request field `mode`"), "{}", prewarm.text());

    client::shutdown(&addr).unwrap();
    handle.join().unwrap();
}

#[test]
fn simulate_sessions_are_never_snapshotted() {
    let dir = std::env::temp_dir().join(format!("mfcsld-test-sim-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = start_daemon(ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });

    // One simulated session and one mean-field session, then drain.
    assert_eq!(post_raw(&addr, SIMULATE_BODY).status, 200);
    let meanfield = post_raw(
        &addr,
        "{\"model\":\"virus\",\"m0\":[0.8,0.15,0.05],\"formulas\":[\"E{<0.6}[ infected ]\"]}",
    );
    assert_eq!(meanfield.status, 200);
    client::shutdown(&addr).unwrap();
    handle.join().unwrap();

    let snaps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
        .collect();
    assert_eq!(
        snaps.len(),
        1,
        "drain must persist the mean-field session and skip the simulated one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
