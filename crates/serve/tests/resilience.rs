//! Failure-containment tests for the shard router: circuit breaker
//! open/half-open behavior, scrape-neutral metrics aggregation, deadline
//! propagation (router-side cutoff vs shard-side 504), and crash recovery
//! with eager warm-state snapshots — all over real sockets.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mfcsl_serve::client::{self, CheckRequest, ClientError};
use mfcsl_serve::metrics::ServerMetrics;
use mfcsl_serve::{
    reactor, route_for, ModelRegistry, ReactorOptions, RequestHandler, Router, RouterConfig,
    Server, ServerConfig, SessionKey, ShardSpec,
};

fn modelfile_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../modelfiles")
}

fn start_daemon(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let registry = ModelRegistry::load(&[modelfile_dir()]).unwrap();
    let server = Server::bind(registry, config).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

/// Starts a router and keeps an `Arc<Router>` handle so tests can drive
/// `replace_shard` the way the CLI supervisor does.
fn start_router(
    shards: Vec<SocketAddr>,
) -> (String, Arc<Router>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let router = Arc::new(Router::new(&RouterConfig {
        shards: shards.into_iter().map(|addr| ShardSpec { addr }).collect(),
        ..RouterConfig::default()
    }));
    let handler: Arc<dyn RequestHandler> = Arc::clone(&router) as _;
    let options = ReactorOptions {
        event_loops: 1,
        workers: 2,
        queue_capacity: 16,
        max_body: 1 << 20,
        idle_timeout: Duration::from_secs(10),
        metrics: Arc::new(ServerMetrics::new()),
        shutdown: Arc::new(AtomicBool::new(false)),
        queue_depth: Arc::new(AtomicUsize::new(0)),
    };
    let handle = std::thread::spawn(move || reactor::run(listener, handler, options).unwrap());
    (addr, router, handle)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfcsld-resil-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn metric_value(metrics: &str, name: &str) -> Option<f64> {
    metrics.lines().find_map(|line| {
        let mut parts = line.split_whitespace();
        (parts.next() == Some(name)).then(|| parts.next())?.and_then(|v| v.parse().ok())
    })
}

/// An address nothing listens on: bind an ephemeral port, then drop the
/// listener. Connects to it are refused immediately.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap()
}

/// A wedged "shard": accepts connections and never answers, like a daemon
/// stuck in a pathological solve. The holder thread leaks (it dies with
/// the test process), which is exactly the pathology being simulated.
fn wedged_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream);
        }
    });
    addr
}

const VIRUS_M0: [f64; 3] = [0.8, 0.15, 0.05];

fn virus_formulas() -> Vec<String> {
    ["E{<0.3}[ infected ]", "EP{>0}[ tt U[0,2] infected ]"]
        .iter()
        .map(|s| (*s).to_string())
        .collect()
}

fn virus_request() -> CheckRequest {
    CheckRequest::new("virus", &VIRUS_M0, &virus_formulas())
}

/// A `k2` override whose session key routes to `want` in a fleet of `n`.
fn k2_routed_to(want: usize, n: usize) -> f64 {
    for i in 0..256 {
        let v = 0.25 + f64::from(i) * 0.01;
        let mut params = BTreeMap::new();
        params.insert("k2".to_string(), v);
        if route_for(&SessionKey::new("virus", &params, false, None), n) == want {
            return v;
        }
    }
    panic!("no k2 override routes to shard {want} of {n}");
}

fn expect_status(result: Result<client::CheckOutcome, ClientError>) -> (u16, Option<String>, Option<u64>) {
    match result {
        Err(ClientError::Status {
            status,
            code,
            retry_after,
            ..
        }) => (status, code, retry_after),
        other => panic!("expected an error status, got {other:?}"),
    }
}

#[test]
fn breaker_opens_fast_fails_and_recovers_via_replace_shard() {
    let (router_addr, router, handle) = start_router(vec![dead_addr()]);
    let request = virus_request();

    // Each failed request burns two fresh connection attempts, so the
    // breaker (threshold 3) opens during the second request.
    for _ in 0..2 {
        let (status, code, retry_after) = expect_status(client::post_check(&router_addr, &request));
        assert_eq!(status, 503);
        assert_eq!(code.as_deref(), Some("shard_unavailable"));
        assert!(retry_after.is_some());
    }
    let metrics = client::get_text(&router_addr, "/metrics").unwrap();
    assert_eq!(
        metric_value(&metrics, "mfcsld_router_breaker_state{shard=\"0\"}"),
        Some(1.0),
        "breaker must be open after the failure streak\n{metrics}"
    );
    assert_eq!(
        metric_value(&metrics, "mfcsld_router_shards_unreachable"),
        Some(1.0),
        "{metrics}"
    );

    // Open breaker: fast-fail well under the 2 s connect timeout, with a
    // breaker-derived Retry-After.
    let before = Instant::now();
    let (status, code, retry_after) = expect_status(client::post_check(&router_addr, &request));
    let elapsed = before.elapsed();
    assert_eq!(status, 503);
    assert_eq!(code.as_deref(), Some("shard_unavailable"));
    assert!(retry_after.unwrap_or(0) >= 1);
    assert!(
        elapsed < Duration::from_millis(500),
        "open breaker must fast-fail, took {elapsed:?}"
    );

    // After the open window a half-open probe goes through, fails against
    // the still-dead shard, and re-opens the breaker.
    std::thread::sleep(Duration::from_millis(1100));
    let (status, _, _) = expect_status(client::post_check(&router_addr, &request));
    assert_eq!(status, 503);
    let metrics = client::get_text(&router_addr, "/metrics").unwrap();
    assert_eq!(
        metric_value(&metrics, "mfcsld_router_breaker_state{shard=\"0\"}"),
        Some(1.0),
        "failed half-open probe must re-open\n{metrics}"
    );

    // Supervisor-style recovery: swap a live daemon into the slot. The
    // breaker resets to closed and the very next request serves.
    let (shard_addr, shard_handle) = start_daemon(ServerConfig::default());
    assert!(router.replace_shard(0, shard_addr.parse().unwrap()));
    let outcome = client::post_check(&router_addr, &request).unwrap();
    assert!(!outcome.warm, "fresh shard, cold session");
    let metrics = client::get_text(&router_addr, "/metrics").unwrap();
    assert_eq!(
        metric_value(&metrics, "mfcsld_router_breaker_state{shard=\"0\"}"),
        Some(0.0),
        "swap must reset the breaker\n{metrics}"
    );
    assert_eq!(
        metric_value(&metrics, "mfcsld_router_shard_restarts_total"),
        Some(1.0),
        "{metrics}"
    );

    client::shutdown(&router_addr).unwrap();
    handle.join().unwrap();
    shard_handle.join().unwrap();
}

#[test]
fn metrics_scrapes_do_not_inflate_per_shard_counters() {
    let (live_addr, live_handle) = start_daemon(ServerConfig::default());
    let (router_addr, _router, handle) =
        start_router(vec![live_addr.parse().unwrap(), dead_addr()]);

    // Scrape the aggregated metrics repeatedly — including against the
    // unreachable shard — then check the per-shard counters never moved.
    let mut metrics = String::new();
    for _ in 0..3 {
        metrics = client::get_text(&router_addr, "/metrics").unwrap();
    }
    assert_eq!(metric_value(&metrics, "mfcsld_router_shard0_routed_total"), Some(0.0), "{metrics}");
    assert_eq!(metric_value(&metrics, "mfcsld_router_shard1_routed_total"), Some(0.0), "{metrics}");
    assert_eq!(metric_value(&metrics, "mfcsld_router_shard0_errors_total"), Some(0.0), "{metrics}");
    assert_eq!(
        metric_value(&metrics, "mfcsld_router_shard1_errors_total"),
        Some(0.0),
        "scraping a dead shard must not count as a routing error\n{metrics}"
    );
    assert_eq!(metric_value(&metrics, "mfcsld_router_shards_unreachable"), Some(1.0), "{metrics}");
    assert_eq!(metric_value(&metrics, "mfcsld_router_probe_failures_total"), Some(0.0), "{metrics}");

    // One real check on the live shard: exactly one routed increment.
    let mut request = virus_request();
    request.params.insert("k2".into(), k2_routed_to(0, 2));
    client::post_check(&router_addr, &request).unwrap();
    let metrics = client::get_text(&router_addr, "/metrics").unwrap();
    assert_eq!(metric_value(&metrics, "mfcsld_router_shard0_routed_total"), Some(1.0), "{metrics}");
    assert_eq!(metric_value(&metrics, "mfcsld_router_shard1_routed_total"), Some(0.0), "{metrics}");

    client::shutdown(&router_addr).unwrap();
    handle.join().unwrap();
    live_handle.join().unwrap();
}

#[test]
fn shard_side_504_wins_over_router_cutoff_for_slow_checks() {
    // A live shard that can be told to sleep mid-check: the router forwards
    // the remaining budget minus a margin, so the SHARD's structured 504
    // fires first and the router's own cutoff never triggers.
    let (shard_addr, shard_handle) = start_daemon(ServerConfig {
        allow_sleep: true,
        ..ServerConfig::default()
    });
    let (router_addr, _router, handle) = start_router(vec![shard_addr.parse().unwrap()]);

    let mut request = virus_request();
    request.sleep_ms = Some(5_000.0);
    request.timeout_ms = Some(600.0);
    let before = Instant::now();
    let (status, code, _) = expect_status(client::post_check(&router_addr, &request));
    let elapsed = before.elapsed();
    assert_eq!(status, 504);
    assert_eq!(code.as_deref(), Some("deadline_exceeded"));
    assert!(
        elapsed < Duration::from_secs(3),
        "a 600 ms budget must not take {elapsed:?}"
    );
    let metrics = client::get_text(&router_addr, "/metrics").unwrap();
    assert_eq!(
        metric_value(&metrics, "mfcsld_router_deadline_exhausted_total"),
        Some(0.0),
        "the shard's own 504 must win — the router never hit its cutoff\n{metrics}"
    );
    // The shard counted the timeout; its session survives for the next
    // request (a slow request is not a shard failure).
    assert!(metric_value(&metrics, "mfcsld_requests_timed_out_total").unwrap_or(0.0) >= 1.0, "{metrics}");
    assert_eq!(
        metric_value(&metrics, "mfcsld_router_breaker_state{shard=\"0\"}"),
        Some(0.0),
        "a deadline is not a transport failure\n{metrics}"
    );

    client::shutdown(&router_addr).unwrap();
    handle.join().unwrap();
    shard_handle.join().unwrap();
}

#[test]
fn router_cutoff_bounds_wedged_shards_without_tripping_the_breaker() {
    // A wedged shard accepts and never answers: no shard-side 504 can come
    // back, so the router's own budget cutoff must fire — in roughly the
    // request's timeout_ms, not the old flat 30 s.
    let (router_addr, _router, handle) = start_router(vec![wedged_addr()]);
    let mut request = virus_request();
    request.timeout_ms = Some(300.0);
    let before = Instant::now();
    let (status, code, _) = expect_status(client::post_check(&router_addr, &request));
    let elapsed = before.elapsed();
    assert_eq!(status, 504);
    assert_eq!(code.as_deref(), Some("deadline_exceeded"));
    assert!(
        elapsed >= Duration::from_millis(250) && elapsed < Duration::from_secs(3),
        "router cutoff must fire near the 300 ms budget, took {elapsed:?}"
    );
    let metrics = client::get_text(&router_addr, "/metrics").unwrap();
    assert!(
        metric_value(&metrics, "mfcsld_router_deadline_exhausted_total").unwrap_or(0.0) >= 1.0,
        "{metrics}"
    );
    assert_eq!(
        metric_value(&metrics, "mfcsld_router_breaker_state{shard=\"0\"}"),
        Some(0.0),
        "a slow shard is not a dead shard; the breaker must stay closed\n{metrics}"
    );
    client::shutdown(&router_addr).unwrap();
    handle.join().unwrap();
}

/// Copies every `.snap` file — a crash-consistent view of a shard's state
/// directory at this instant, exactly what a SIGKILLed shard leaves behind.
fn copy_snapshots(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap().filter_map(Result::ok) {
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "snap") {
            std::fs::copy(&path, to.join(path.file_name().unwrap())).unwrap();
        }
    }
}

#[test]
fn crash_recovery_restores_warm_state_written_before_the_crash() {
    let dir = temp_dir("chaos");
    let s0_dir = dir.join("shard-0");
    let s1_dir = dir.join("shard-1");
    let (shard0_addr, _shard0_handle) = start_daemon(ServerConfig {
        state_dir: Some(s0_dir.clone()),
        ..ServerConfig::default()
    });
    let (shard1_addr, shard1_handle) = start_daemon(ServerConfig {
        state_dir: Some(s1_dir.clone()),
        ..ServerConfig::default()
    });
    let (router_addr, router, router_handle) = start_router(vec![
        shard0_addr.parse().unwrap(),
        shard1_addr.parse().unwrap(),
    ]);

    let request_for = |k2: f64| {
        let mut request = virus_request();
        request.params.insert("k2".into(), k2);
        request
    };
    let k2 = [k2_routed_to(0, 2), k2_routed_to(1, 2)];

    // Warm both shards. The write-behind in record_success means shard 0's
    // snapshot is on disk as soon as its check returns — no drain needed.
    let baseline0 = client::post_check(&router_addr, &request_for(k2[0])).unwrap();
    let baseline1 = client::post_check(&router_addr, &request_for(k2[1])).unwrap();
    let snaps = |dir: &Path| -> usize {
        std::fs::read_dir(dir)
            .map(|iter| {
                iter.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
                    .count()
            })
            .unwrap_or(0)
    };
    assert_eq!(
        snaps(&s0_dir),
        1,
        "warm state must be on disk before any drain — that is what survives SIGKILL"
    );

    // "SIGKILL" shard 0: capture its state dir as-is, no graceful drain
    // ever happens for it (the daemon thread just stops being routed to).
    let crashed_dir = dir.join("shard-0-crashed");
    copy_snapshots(&s0_dir, &crashed_dir);

    // Revive from the crash-consistent copy, swap into the same slot.
    let (revived_addr, revived_handle) = start_daemon(ServerConfig {
        state_dir: Some(crashed_dir.clone()),
        ..ServerConfig::default()
    });
    assert!(router.replace_shard(0, revived_addr.parse().unwrap()));

    // First post-restart request on the crashed shard's key: warm, bitwise
    // identical, zero fresh solves on the revived shard.
    let revived = client::post_check(&router_addr, &request_for(k2[0])).unwrap();
    assert!(revived.warm, "revived shard must warm-restore from the eager snapshot");
    assert_eq!(revived.verdicts, baseline0.verdicts, "verdicts must survive the crash bitwise");
    let revived_metrics = client::get_text(&revived_addr, "/metrics").unwrap();
    assert_eq!(
        metric_value(&revived_metrics, "mfcsld_engine_trajectory_solves_total"),
        Some(0.0),
        "the revived shard's first request must pay no fresh solve\n{revived_metrics}"
    );
    assert_eq!(
        metric_value(&revived_metrics, "mfcsld_snapshot_loaded_total"),
        Some(1.0),
        "{revived_metrics}"
    );

    // The surviving shard was never disturbed: still warm, still bitwise.
    let survivor = client::post_check(&router_addr, &request_for(k2[1])).unwrap();
    assert!(survivor.warm);
    assert_eq!(survivor.verdicts, baseline1.verdicts);

    let metrics = client::get_text(&router_addr, "/metrics").unwrap();
    assert_eq!(
        metric_value(&metrics, "mfcsld_router_shard_restarts_total"),
        Some(1.0),
        "{metrics}"
    );

    client::shutdown(&router_addr).unwrap();
    router_handle.join().unwrap();
    revived_handle.join().unwrap();
    shard1_handle.join().unwrap();
    // shard 0's original daemon thread is deliberately left running
    // (sigkilled processes don't join); it dies with the test process.
    let _ = std::fs::remove_dir_all(&dir);
}
