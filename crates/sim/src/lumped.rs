//! The explicit overall CTMC for finite `N`.
//!
//! For `N` exchangeable objects with `K` local states, the exact overall
//! model is a CTMC on the count vectors `{c : Σ c_s = N}` — a state space
//! of size `C(N+K-1, K-1)`. This is the state-space explosion the
//! mean-field method exists to avoid (Sec. I of the paper): with `K = 3`,
//! `N = 1000` already gives ~500 000 states. This module builds that chain
//! explicitly (guarded by a size limit) so that small-`N` exact transients
//! can validate both the SSA and the mean-field approximation, and so that
//! the scalability bench can measure the explosion.

use mfcsl_core::{CoreError, LocalModel, Occupancy};
use mfcsl_ctmc::{Ctmc, Labeling};
use mfcsl_math::Matrix;

/// A lumped overall chain: the CTMC plus the count vector of each state.
#[derive(Debug, Clone)]
pub struct LumpedChain {
    ctmc: Ctmc,
    states: Vec<Vec<usize>>,
    population: usize,
}

impl LumpedChain {
    /// The underlying CTMC.
    #[must_use]
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// Count vectors, indexed like the CTMC's states.
    #[must_use]
    pub fn states(&self) -> &[Vec<usize>] {
        &self.states
    }

    /// Population size `N`.
    #[must_use]
    pub fn population(&self) -> usize {
        self.population
    }

    /// Number of lumped states `C(N+K-1, K-1)`.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// Index of a count vector.
    #[must_use]
    pub fn index_of(&self, counts: &[usize]) -> Option<usize> {
        self.states.iter().position(|c| c == counts)
    }

    /// The exact expected occupancy `E[c(t)/N]` starting from a fixed
    /// count vector, via uniformization on the lumped chain.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for an unknown start vector
    /// and propagates transient-analysis failures.
    pub fn expected_occupancy(
        &self,
        counts0: &[usize],
        t: f64,
        eps: f64,
    ) -> Result<Vec<f64>, CoreError> {
        self.expected_occupancy_on(None, counts0, t, eps)
    }

    /// [`LumpedChain::expected_occupancy`] with the Kolmogorov steps split
    /// into column blocks on `pool` — bitwise identical to the serial path
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// As [`LumpedChain::expected_occupancy`].
    pub fn expected_occupancy_on(
        &self,
        pool: Option<&mfcsl_pool::ThreadPool>,
        counts0: &[usize],
        t: f64,
        eps: f64,
    ) -> Result<Vec<f64>, CoreError> {
        let start = self.index_of(counts0).ok_or_else(|| {
            CoreError::InvalidArgument(format!("counts {counts0:?} are not a state"))
        })?;
        let mut pi0 = vec![0.0; self.n_states()];
        pi0[start] = 1.0;
        let pi = mfcsl_ctmc::transient::transient_distribution_on(pool, &self.ctmc, &pi0, t, eps)?;
        let k = counts0.len();
        let n = self.population as f64;
        let mut occ = vec![0.0; k];
        for (idx, prob) in pi.iter().enumerate() {
            for (s, &c) in self.states[idx].iter().enumerate() {
                occ[s] += prob * c as f64 / n;
            }
        }
        Ok(occ)
    }

    /// The exact distribution over count vectors at time `t`.
    ///
    /// # Errors
    ///
    /// As [`LumpedChain::expected_occupancy`].
    pub fn transient_distribution(
        &self,
        counts0: &[usize],
        t: f64,
        eps: f64,
    ) -> Result<Vec<f64>, CoreError> {
        let start = self.index_of(counts0).ok_or_else(|| {
            CoreError::InvalidArgument(format!("counts {counts0:?} are not a state"))
        })?;
        let mut pi0 = vec![0.0; self.n_states()];
        pi0[start] = 1.0;
        Ok(mfcsl_ctmc::transient::transient_distribution(
            &self.ctmc, &pi0, t, eps,
        )?)
    }
}

/// Enumerates all count vectors of length `k` summing to `n`, in
/// lexicographic order.
#[must_use]
pub fn enumerate_count_vectors(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = vec![0usize; k];
    fill(&mut out, &mut current, 0, n);
    out
}

fn fill(out: &mut Vec<Vec<usize>>, current: &mut Vec<usize>, pos: usize, remaining: usize) {
    if pos + 1 == current.len() {
        current[pos] = remaining;
        out.push(current.clone());
        return;
    }
    for v in 0..=remaining {
        current[pos] = v;
        fill(out, current, pos + 1, remaining - v);
    }
}

/// The number of lumped states, `C(n+k-1, k-1)`.
#[must_use]
pub fn n_lumped_states(n: usize, k: usize) -> u128 {
    if k == 0 {
        return 0;
    }
    binomial((n + k - 1) as u128, (k - 1) as u128)
}

fn binomial(n: u128, k: u128) -> u128 {
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

/// A lumped overall chain in sparse (CSR) form — the same Markov chain as
/// [`LumpedChain`] but storing only the `≤ K(K-1)` transitions per state,
/// which keeps six-digit state spaces tractable.
#[derive(Debug, Clone)]
pub struct SparseLumpedChain {
    chain: mfcsl_ctmc::sparse::SparseCtmc,
    states: Vec<Vec<usize>>,
    population: usize,
}

impl SparseLumpedChain {
    /// The underlying sparse chain.
    #[must_use]
    pub fn chain(&self) -> &mfcsl_ctmc::sparse::SparseCtmc {
        &self.chain
    }

    /// Count vectors, indexed like the chain's states.
    #[must_use]
    pub fn states(&self) -> &[Vec<usize>] {
        &self.states
    }

    /// Population size `N`.
    #[must_use]
    pub fn population(&self) -> usize {
        self.population
    }

    /// Number of lumped states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// Index of a count vector (binary search over the lexicographic
    /// enumeration).
    #[must_use]
    pub fn index_of(&self, counts: &[usize]) -> Option<usize> {
        self.states
            .binary_search_by(|probe| probe.as_slice().cmp(counts))
            .ok()
    }

    /// Exact expected occupancy `E[c(t)/N]` from a fixed start vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for an unknown start vector
    /// and propagates transient-analysis failures.
    pub fn expected_occupancy(
        &self,
        counts0: &[usize],
        t: f64,
        eps: f64,
    ) -> Result<Vec<f64>, CoreError> {
        self.expected_occupancy_on(None, counts0, t, eps)
    }

    /// [`SparseLumpedChain::expected_occupancy`] with the Kolmogorov steps
    /// split into column blocks on `pool` — bitwise identical to the
    /// serial path at any thread count. This is the large-state-space
    /// workload of the scalability bench.
    ///
    /// # Errors
    ///
    /// As [`SparseLumpedChain::expected_occupancy`].
    pub fn expected_occupancy_on(
        &self,
        pool: Option<&mfcsl_pool::ThreadPool>,
        counts0: &[usize],
        t: f64,
        eps: f64,
    ) -> Result<Vec<f64>, CoreError> {
        let start = self.index_of(counts0).ok_or_else(|| {
            CoreError::InvalidArgument(format!("counts {counts0:?} are not a state"))
        })?;
        let mut pi0 = vec![0.0; self.n_states()];
        pi0[start] = 1.0;
        let pi = self.chain.transient_distribution_on(pool, &pi0, t, eps)?;
        let k = counts0.len();
        let n = self.population as f64;
        let mut occ = vec![0.0; k];
        for (idx, prob) in pi.iter().enumerate() {
            if *prob == 0.0 {
                continue;
            }
            for (s, &c) in self.states[idx].iter().enumerate() {
                occ[s] += prob * c as f64 / n;
            }
        }
        Ok(occ)
    }
}

/// Builds the lumped overall chain in sparse form.
///
/// Same semantics as [`build`], different representation; use this for
/// `N` beyond a few dozen.
///
/// # Errors
///
/// As [`build`].
pub fn build_sparse(
    model: &LocalModel,
    n: usize,
    max_states: usize,
) -> Result<SparseLumpedChain, CoreError> {
    if n == 0 {
        return Err(CoreError::InvalidArgument(
            "population size must be positive".into(),
        ));
    }
    let k = model.n_states();
    let predicted = n_lumped_states(n, k);
    if predicted > max_states as u128 {
        return Err(CoreError::InvalidArgument(format!(
            "lumped chain would have {predicted} states, exceeding the limit {max_states}"
        )));
    }
    let states = enumerate_count_vectors(n, k);
    let index_of = |c: &[usize]| -> usize {
        states
            .binary_search_by(|probe| probe.as_slice().cmp(c))
            .expect("successor count vector is enumerated")
    };
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(states.len() * k);
    for (idx, c) in states.iter().enumerate() {
        let m = Occupancy::project(c.iter().map(|&x| x as f64 / n as f64).collect())?;
        let local_q = model.generator_at(&m)?;
        for s in 0..k {
            if c[s] == 0 {
                continue;
            }
            for j in 0..k {
                if j == s {
                    continue;
                }
                let rate = c[s] as f64 * local_q[(s, j)];
                if rate <= 0.0 {
                    continue;
                }
                let mut target = c.clone();
                target[s] -= 1;
                target[j] += 1;
                triplets.push((idx, index_of(&target), rate));
            }
        }
    }
    let chain = mfcsl_ctmc::sparse::SparseCtmc::from_triplets(states.len(), &triplets)?;
    Ok(SparseLumpedChain {
        chain,
        states,
        population: n,
    })
}

/// Builds the lumped overall CTMC for population `n`.
///
/// The transition `c → c - e_s + e_j` fires at rate `c_s · Q_{s,j}(c/N)`
/// (density-dependent convention: each of the `c_s` objects jumps at the
/// local rate evaluated at the current empirical occupancy).
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] if the state count would exceed
/// `max_states` (the guard against accidental explosion) or `n == 0`, and
/// propagates rate-evaluation failures.
pub fn build(model: &LocalModel, n: usize, max_states: usize) -> Result<LumpedChain, CoreError> {
    if n == 0 {
        return Err(CoreError::InvalidArgument(
            "population size must be positive".into(),
        ));
    }
    let k = model.n_states();
    let predicted = n_lumped_states(n, k);
    if predicted > max_states as u128 {
        return Err(CoreError::InvalidArgument(format!(
            "lumped chain would have {predicted} states, exceeding the limit {max_states}"
        )));
    }
    let states = enumerate_count_vectors(n, k);
    let n_states = states.len();
    // Fast index lookup: states are lexicographically sorted, use binary
    // search through a sorted clone of indices.
    let index_of = |c: &[usize]| -> usize {
        states
            .binary_search_by(|probe| probe.as_slice().cmp(c))
            .expect("successor count vector is enumerated")
    };
    let mut q = Matrix::zeros(n_states, n_states);
    for (idx, c) in states.iter().enumerate() {
        let m = Occupancy::project(c.iter().map(|&x| x as f64 / n as f64).collect())?;
        let local_q = model.generator_at(&m)?;
        for s in 0..k {
            if c[s] == 0 {
                continue;
            }
            for j in 0..k {
                if j == s {
                    continue;
                }
                let rate = c[s] as f64 * local_q[(s, j)];
                if rate <= 0.0 {
                    continue;
                }
                let mut target = c.clone();
                target[s] -= 1;
                target[j] += 1;
                q[(idx, index_of(&target))] += rate;
            }
        }
    }
    let names: Vec<String> = states
        .iter()
        .map(|c| {
            let parts: Vec<String> = c.iter().map(usize::to_string).collect();
            format!("c({})", parts.join(","))
        })
        .collect();
    let ctmc = Ctmc::from_parts(names, q, Labeling::new(n_states))?;
    Ok(LumpedChain {
        ctmc,
        states,
        population: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sis() -> LocalModel {
        LocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", |m: &Occupancy| 2.0 * m[1])
            .unwrap()
            .constant_transition("i", "s", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn enumeration_and_counting() {
        let states = enumerate_count_vectors(3, 2);
        assert_eq!(states.len(), 4);
        assert_eq!(states[0], vec![0, 3]);
        assert_eq!(states[3], vec![3, 0]);
        assert_eq!(n_lumped_states(3, 2), 4);
        assert_eq!(n_lumped_states(10, 3), 66);
        assert_eq!(n_lumped_states(1000, 3), 501_501);
        // Enumerated count always matches the formula.
        for (n, k) in [(1, 1), (4, 3), (6, 4)] {
            assert_eq!(
                enumerate_count_vectors(n, k).len() as u128,
                n_lumped_states(n, k)
            );
        }
    }

    #[test]
    fn lumped_chain_is_well_formed() {
        let model = sis();
        let lumped = build(&model, 4, 100).unwrap();
        assert_eq!(lumped.n_states(), 5);
        assert_eq!(lumped.population(), 4);
        // From (4 healthy, 0 infected) nothing happens.
        let frozen_idx = lumped.index_of(&[4, 0]).unwrap();
        assert!(lumped.ctmc().is_absorbing(frozen_idx));
        // From (3, 1): infection reaction rate = 3 * 2 * 1/4 = 1.5,
        // recovery rate = 1 * 1 = 1.
        let idx = lumped.index_of(&[3, 1]).unwrap();
        let to_infect = lumped.index_of(&[2, 2]).unwrap();
        let to_recover = lumped.index_of(&[4, 0]).unwrap();
        let q = lumped.ctmc().generator();
        assert!((q[(idx, to_infect)] - 1.5).abs() < 1e-12);
        assert!((q[(idx, to_recover)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn size_guard_trips() {
        let model = sis();
        assert!(build(&model, 1000, 100).is_err());
        assert!(build(&model, 0, 100).is_err());
    }

    #[test]
    fn exact_small_n_matches_ssa_average() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = sis();
        let lumped = build(&model, 10, 1000).unwrap();
        let exact = lumped.expected_occupancy(&[8, 2], 1.0, 1e-12).unwrap();
        // SSA average over many runs.
        let mut rng = StdRng::seed_from_u64(5);
        let runs = 6000;
        let mut acc = 0.0;
        for _ in 0..runs {
            let traj = crate::ssa::simulate(&model, vec![8, 2], 1.0, &mut rng).unwrap();
            acc += traj.occupancy_at(1.0)[1];
        }
        let est = acc / runs as f64;
        assert!(
            (est - exact[1]).abs() < 0.01,
            "ssa {est} vs lumped exact {}",
            exact[1]
        );
    }

    #[test]
    fn transient_distribution_is_a_distribution() {
        let model = sis();
        let lumped = build(&model, 5, 100).unwrap();
        let pi = lumped.transient_distribution(&[4, 1], 0.7, 1e-12).unwrap();
        assert_eq!(pi.len(), lumped.n_states());
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&p| p >= -1e-12));
        // Unknown start state.
        assert!(lumped.transient_distribution(&[9, 9], 0.7, 1e-12).is_err());
    }

    #[test]
    fn sparse_and_dense_lumped_agree() {
        let model = sis();
        let dense = build(&model, 12, 10_000).unwrap();
        let sparse = build_sparse(&model, 12, 10_000).unwrap();
        assert_eq!(dense.n_states(), sparse.n_states());
        assert_eq!(sparse.population(), 12);
        let c0 = vec![9, 3];
        for &t in &[0.3, 1.0, 4.0] {
            let ed = dense.expected_occupancy(&c0, t, 1e-12).unwrap();
            let es = sparse.expected_occupancy(&c0, t, 1e-12).unwrap();
            for (a, b) in ed.iter().zip(&es) {
                assert!((a - b).abs() < 1e-9, "t = {t}: {ed:?} vs {es:?}");
            }
        }
        assert!(sparse.index_of(&[12, 0]).is_some());
        assert!(sparse.index_of(&[13, 0]).is_none());
        assert!(sparse.expected_occupancy(&[13, 0], 1.0, 1e-12).is_err());
    }

    #[test]
    fn pooled_expected_occupancy_is_bitwise_identical() {
        let model = sis();
        // N = 500 on 2 states: 501 lumped states, above the blocking
        // threshold, so the pooled path really splits the steps.
        let sparse = build_sparse(&model, 500, 10_000).unwrap();
        let c0 = vec![400, 100];
        let serial = sparse.expected_occupancy(&c0, 1.0, 1e-12).unwrap();
        for threads in [1, 2, 8] {
            let pool = mfcsl_pool::ThreadPool::new(threads);
            let parallel = sparse
                .expected_occupancy_on(Some(&pool), &c0, 1.0, 1e-12)
                .unwrap();
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn sparse_handles_larger_populations() {
        let model = sis();
        // N = 400 on 2 states: 401 lumped states, trivial sparse, painful
        // dense. Bias to mean field should be tiny.
        let sparse = build_sparse(&model, 400, 10_000).unwrap();
        let e = sparse.expected_occupancy(&[320, 80], 1.0, 1e-10).unwrap();
        let m0 = Occupancy::new(vec![0.8, 0.2]).unwrap();
        let sol = mfcsl_core::meanfield::solve(&model, &m0, 1.0, &mfcsl_ode::OdeOptions::default())
            .unwrap();
        let mf = sol.occupancy_at(1.0);
        assert!((e[1] - mf[1]).abs() < 2e-3, "{} vs {}", e[1], mf[1]);
    }

    #[test]
    fn finite_n_converges_toward_mean_field() {
        // E[i(t)] for growing N approaches the mean-field value; the bias
        // should shrink with N (Theorem 1).
        let model = sis();
        let t = 1.0;
        let mean_field = {
            let m0 = Occupancy::new(vec![0.8, 0.2]).unwrap();
            let sol =
                mfcsl_core::meanfield::solve(&model, &m0, t, &mfcsl_ode::OdeOptions::default())
                    .unwrap();
            sol.occupancy_at(t)[1]
        };
        let bias = |n: usize| {
            let lumped = build(&model, n, 100_000).unwrap();
            let c0 = vec![n * 4 / 5, n / 5];
            let e = lumped.expected_occupancy(&c0, t, 1e-12).unwrap();
            (e[1] - mean_field).abs()
        };
        let b5 = bias(5);
        let b40 = bias(40);
        assert!(
            b40 < b5,
            "bias should shrink with N: N=5 gives {b5}, N=40 gives {b40}"
        );
        assert!(b40 < 0.02, "N=40 bias {b40}");
    }
}
