//! Finite-`N` baselines for the mean-field model checker.
//!
//! The mean-field method (Theorem 1 of the paper) is exact only in the
//! `N → ∞` limit; this crate provides the finite-population ground truth it
//! is compared against in the benches:
//!
//! * [`ssa`] — exact stochastic simulation (Gillespie) of `N` interacting
//!   objects through their count vector, including a *tagged object* whose
//!   individual path realizes the random-local-object semantics of MF-CSL's
//!   `EP` operator at finite `N`;
//! * [`lumped`] — the explicit overall CTMC for finite `N`: the state space
//!   is all count vectors summing to `N` (`C(N+K-1, K-1)` states — the very
//!   state-space explosion the mean-field method avoids), built on
//!   `mfcsl-ctmc` so exact transient analysis is available for small `N`;
//! * [`paths`] — checking CSL until formulas on sampled piecewise-constant
//!   paths (statistical model checking);
//! * [`estimator`] — Monte-Carlo proportion/mean estimators with confidence
//!   intervals, and a thread-parallel replication runner.

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they classify NaN as invalid input instead of letting it
// through, which is exactly the intent of the validation sites.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod estimator;
pub mod lumped;
pub mod paths;
pub mod ssa;

pub use ssa::CountTrajectory;
