//! Monte-Carlo estimators with confidence intervals.

use mfcsl_core::CoreError;

/// A point estimate with a two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub mean: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// Number of samples behind the estimate.
    pub n: usize,
}

impl Estimate {
    /// Half-width of the interval.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// `true` if `value` lies inside the interval.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }
}

/// Wilson score interval for a binomial proportion — well-behaved near 0
/// and 1, where the standard CSL probability thresholds live.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for zero trials,
/// `successes > trials`, or a non-positive `z`.
///
/// # Example
///
/// ```
/// use mfcsl_sim::estimator::proportion_ci;
///
/// let est = proportion_ci(720, 1000, 1.96)?;
/// assert!((est.mean - 0.72).abs() < 1e-12);
/// assert!(est.contains(0.7));
/// # Ok::<(), mfcsl_core::CoreError>(())
/// ```
pub fn proportion_ci(successes: usize, trials: usize, z: f64) -> Result<Estimate, CoreError> {
    if trials == 0 {
        return Err(CoreError::InvalidArgument(
            "proportion estimate needs at least one trial".into(),
        ));
    }
    if successes > trials {
        return Err(CoreError::InvalidArgument(format!(
            "{successes} successes out of {trials} trials"
        )));
    }
    if !(z > 0.0) || !z.is_finite() {
        return Err(CoreError::InvalidArgument(format!(
            "z-score must be positive and finite, got {z}"
        )));
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Ok(Estimate {
        mean: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
        n: trials,
    })
}

/// Normal-approximation interval for the mean of real-valued samples.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for fewer than two samples, a
/// non-finite sample, or a non-positive `z`.
pub fn mean_ci(samples: &[f64], z: f64) -> Result<Estimate, CoreError> {
    if samples.len() < 2 {
        return Err(CoreError::InvalidArgument(
            "mean estimate needs at least two samples".into(),
        ));
    }
    if samples.iter().any(|v| !v.is_finite()) {
        return Err(CoreError::InvalidArgument("samples must be finite".into()));
    }
    if !(z > 0.0) || !z.is_finite() {
        return Err(CoreError::InvalidArgument(format!(
            "z-score must be positive and finite, got {z}"
        )));
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    let half = z * (var / n).sqrt();
    Ok(Estimate {
        mean,
        lo: mean - half,
        hi: mean + half,
        n: samples.len(),
    })
}

/// Runs `n` independent replications of `f` across `threads` OS threads,
/// feeding each replication a distinct seed derived from `base_seed`
/// (SplitMix64 over the replication index, so results are independent of
/// the thread count).
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_replications<T, F>(n: usize, threads: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = threads.max(1);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (worker, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (offset, slot) in slice.iter_mut().enumerate() {
                    let index = worker * chunk + offset;
                    *slot = Some(f(splitmix64(base_seed.wrapping_add(index as u64))));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("worker filled slot"))
        .collect()
}

/// SplitMix64: turns sequential indices into well-spread seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_basics() {
        let e = proportion_ci(50, 100, 1.96).unwrap();
        assert!((e.mean - 0.5).abs() < 1e-12);
        assert!(e.contains(0.5));
        assert!(e.lo > 0.39 && e.hi < 0.61);
        assert_eq!(e.n, 100);
        // Extreme proportions stay in [0, 1].
        let e = proportion_ci(0, 10, 1.96).unwrap();
        assert_eq!(e.lo, 0.0);
        assert!(e.hi > 0.0);
        let e = proportion_ci(10, 10, 1.96).unwrap();
        assert_eq!(e.hi, 1.0);
        assert!(e.lo < 1.0);
    }

    #[test]
    fn wilson_validation() {
        assert!(proportion_ci(1, 0, 1.96).is_err());
        assert!(proportion_ci(5, 3, 1.96).is_err());
        assert!(proportion_ci(1, 2, 0.0).is_err());
    }

    #[test]
    fn mean_interval() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        let e = mean_ci(&samples, 1.96).unwrap();
        assert!((e.mean - 3.0).abs() < 1e-12);
        assert!(e.contains(3.0));
        assert!(e.half_width() > 0.0);
        assert!(mean_ci(&[1.0], 1.96).is_err());
        assert!(mean_ci(&[1.0, f64::NAN], 1.96).is_err());
        assert!(mean_ci(&samples, -1.0).is_err());
    }

    #[test]
    fn replication_runner_is_deterministic_across_thread_counts() {
        let single = run_replications(17, 1, 42, |seed| seed % 1000);
        let multi = run_replications(17, 4, 42, |seed| seed % 1000);
        assert_eq!(single, multi);
        assert_eq!(single.len(), 17);
        // Seeds are distinct.
        let mut sorted = single.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 17);
    }

    #[test]
    fn replication_runner_parallel_monte_carlo() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Estimate P(U < 0.3) with 20k samples across 4 threads.
        let hits = run_replications(20_000, 4, 7, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            u8::from(rng.gen_range(0.0..1.0_f64) < 0.3)
        });
        let successes: usize = hits.iter().map(|&h| h as usize).sum();
        let e = proportion_ci(successes, hits.len(), 2.58).unwrap();
        assert!(e.contains(0.3), "{e:?}");
    }
}
