//! Monte-Carlo estimators with confidence intervals.

use mfcsl_core::CoreError;

/// A point estimate with a two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub mean: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// Number of samples behind the estimate.
    pub n: usize,
}

impl Estimate {
    /// Half-width of the interval.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// `true` if `value` lies inside the interval.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }
}

/// Wilson score interval for a binomial proportion — well-behaved near 0
/// and 1, where the standard CSL probability thresholds live.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for zero trials,
/// `successes > trials`, or a non-positive `z`.
///
/// # Example
///
/// ```
/// use mfcsl_sim::estimator::proportion_ci;
///
/// let est = proportion_ci(720, 1000, 1.96)?;
/// assert!((est.mean - 0.72).abs() < 1e-12);
/// assert!(est.contains(0.7));
/// # Ok::<(), mfcsl_core::CoreError>(())
/// ```
pub fn proportion_ci(successes: usize, trials: usize, z: f64) -> Result<Estimate, CoreError> {
    if trials == 0 {
        return Err(CoreError::InvalidArgument(
            "proportion estimate needs at least one trial".into(),
        ));
    }
    if successes > trials {
        return Err(CoreError::InvalidArgument(format!(
            "{successes} successes out of {trials} trials"
        )));
    }
    if !(z > 0.0) || !z.is_finite() {
        return Err(CoreError::InvalidArgument(format!(
            "z-score must be positive and finite, got {z}"
        )));
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Ok(Estimate {
        mean: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
        n: trials,
    })
}

/// Wald (normal-approximation) interval for a binomial proportion — kept
/// for comparison against [`proportion_ci`]. The Wald interval collapses
/// to zero width at `p̂ ∈ {0, 1}` (common for near-sure until formulas),
/// which is exactly why the Wilson score interval is the default.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for zero trials,
/// `successes > trials`, or a non-positive `z`.
pub fn proportion_ci_normal(successes: usize, trials: usize, z: f64) -> Result<Estimate, CoreError> {
    if trials == 0 {
        return Err(CoreError::InvalidArgument(
            "proportion estimate needs at least one trial".into(),
        ));
    }
    if successes > trials {
        return Err(CoreError::InvalidArgument(format!(
            "{successes} successes out of {trials} trials"
        )));
    }
    if !(z > 0.0) || !z.is_finite() {
        return Err(CoreError::InvalidArgument(format!(
            "z-score must be positive and finite, got {z}"
        )));
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let half = z * (p * (1.0 - p) / n).sqrt();
    Ok(Estimate {
        mean: p,
        lo: (p - half).max(0.0),
        hi: (p + half).min(1.0),
        n: trials,
    })
}

/// Normal-approximation interval for the mean of real-valued samples.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for fewer than two samples, a
/// non-finite sample, or a non-positive `z`.
pub fn mean_ci(samples: &[f64], z: f64) -> Result<Estimate, CoreError> {
    if samples.len() < 2 {
        return Err(CoreError::InvalidArgument(
            "mean estimate needs at least two samples".into(),
        ));
    }
    if samples.iter().any(|v| !v.is_finite()) {
        return Err(CoreError::InvalidArgument("samples must be finite".into()));
    }
    if !(z > 0.0) || !z.is_finite() {
        return Err(CoreError::InvalidArgument(format!(
            "z-score must be positive and finite, got {z}"
        )));
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    let half = z * (var / n).sqrt();
    Ok(Estimate {
        mean,
        lo: mean - half,
        hi: mean + half,
        n: samples.len(),
    })
}

/// Derives the seed for replication `index` from `base_seed` via one
/// xorshift64 round over a golden-ratio-strided mix. Replication `i`
/// always receives the same seed no matter how the work is sharded, which
/// is what makes [`run_replications`] bitwise identical at any thread
/// count — the same discipline the thread pool uses for solver kernels.
///
/// The mix is injective in `index` for a fixed base, and xorshift64 is a
/// bijection, so seeds never collide across replications. xorshift64
/// fixes 0, so a vanished mix is nudged onto an arbitrary odd constant.
#[must_use]
pub fn replication_seed(base_seed: u64, index: u64) -> u64 {
    let mut x = base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if x == 0 {
        x = 0x4D59_5DF4_D0F3_3173;
    }
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Runs `n` independent replications of `f` across `threads` OS threads,
/// feeding each replication the seed [`replication_seed`]`(base_seed, i)`
/// — a pure function of the replication index, so results are independent
/// of the thread count.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_replications<T, F>(n: usize, threads: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = threads.max(1);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (worker, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (offset, slot) in slice.iter_mut().enumerate() {
                    let index = worker * chunk + offset;
                    *slot = Some(f(replication_seed(base_seed, index as u64)));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wilson_interval_basics() {
        let e = proportion_ci(50, 100, 1.96).unwrap();
        assert!((e.mean - 0.5).abs() < 1e-12);
        assert!(e.contains(0.5));
        assert!(e.lo > 0.39 && e.hi < 0.61);
        assert_eq!(e.n, 100);
        // Extreme proportions stay in [0, 1].
        let e = proportion_ci(0, 10, 1.96).unwrap();
        assert_eq!(e.lo, 0.0);
        assert!(e.hi > 0.0);
        let e = proportion_ci(10, 10, 1.96).unwrap();
        assert_eq!(e.hi, 1.0);
        assert!(e.lo < 1.0);
    }

    #[test]
    fn wilson_validation() {
        assert!(proportion_ci(1, 0, 1.96).is_err());
        assert!(proportion_ci(5, 3, 1.96).is_err());
        assert!(proportion_ci(1, 2, 0.0).is_err());
    }

    #[test]
    fn mean_interval() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        let e = mean_ci(&samples, 1.96).unwrap();
        assert!((e.mean - 3.0).abs() < 1e-12);
        assert!(e.contains(3.0));
        assert!(e.half_width() > 0.0);
        assert!(mean_ci(&[1.0], 1.96).is_err());
        assert!(mean_ci(&[1.0, f64::NAN], 1.96).is_err());
        assert!(mean_ci(&samples, -1.0).is_err());
    }

    #[test]
    fn wald_interval_degenerates_at_extremes() {
        // At p̂ ∈ {0, 1} the Wald interval collapses to zero width while
        // Wilson keeps a nonzero margin — the reason Wilson is the default.
        for (s, t) in [(0, 20), (20, 20)] {
            let wald = proportion_ci_normal(s, t, 1.96).unwrap();
            let wilson = proportion_ci(s, t, 1.96).unwrap();
            assert_eq!(wald.half_width(), 0.0, "wald at {s}/{t}");
            assert!(wilson.half_width() > 0.0, "wilson at {s}/{t}");
        }
        // Away from the extremes and at large n the two intervals agree.
        let wald = proportion_ci_normal(500, 1000, 1.96).unwrap();
        let wilson = proportion_ci(500, 1000, 1.96).unwrap();
        assert!((wald.lo - wilson.lo).abs() < 2e-3);
        assert!((wald.hi - wilson.hi).abs() < 2e-3);
        assert_eq!(wald.mean, wilson.mean);
        // Same validation as the Wilson path.
        assert!(proportion_ci_normal(1, 0, 1.96).is_err());
        assert!(proportion_ci_normal(5, 3, 1.96).is_err());
        assert!(proportion_ci_normal(1, 2, 0.0).is_err());
        assert!(proportion_ci_normal(1, 2, f64::NAN).is_err());
    }

    #[test]
    fn replication_seeds_are_distinct_and_nonzero() {
        let seeds: Vec<u64> = (0..1000).map(|i| replication_seed(42, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 1000);
        assert!(seeds.iter().all(|&s| s != 0));
        // The zero fixed point of xorshift64 is guarded: base 0, index 0
        // mixes to 0 and must still produce a usable seed.
        assert_ne!(replication_seed(0, 0), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Sharding across 1, 2, or 8 threads never changes which seed a
        /// replication receives, so results are bitwise identical.
        #[test]
        fn prop_runner_thread_count_invariant(n in 1usize..48, base in 0u64..u64::MAX) {
            let one = run_replications(n, 1, base, |seed| seed);
            let two = run_replications(n, 2, base, |seed| seed);
            let eight = run_replications(n, 8, base, |seed| seed);
            prop_assert_eq!(&one, &two);
            prop_assert_eq!(&one, &eight);
            for (i, s) in one.iter().enumerate() {
                prop_assert_eq!(*s, replication_seed(base, i as u64));
            }
        }
    }

    #[test]
    fn replication_runner_is_deterministic_across_thread_counts() {
        let single = run_replications(17, 1, 42, |seed| seed % 1000);
        let multi = run_replications(17, 4, 42, |seed| seed % 1000);
        assert_eq!(single, multi);
        assert_eq!(single.len(), 17);
        // Seeds are distinct.
        let mut sorted = single.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 17);
    }

    #[test]
    fn replication_runner_parallel_monte_carlo() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Estimate P(U < 0.3) with 20k samples across 4 threads.
        let hits = run_replications(20_000, 4, 7, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            u8::from(rng.gen_range(0.0..1.0_f64) < 0.3)
        });
        let successes: usize = hits.iter().map(|&h| h as usize).sum();
        let e = proportion_ci(successes, hits.len(), 2.58).unwrap();
        assert!(e.contains(0.3), "{e:?}");
    }
}
