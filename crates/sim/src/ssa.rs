//! Exact stochastic simulation of `N` interacting objects.
//!
//! Because the objects are exchangeable, the full system state is the
//! count vector `c` with `Σ c_s = N`; the empirical occupancy is `c/N`.
//! One object in state `s` jumps to `s'` at rate `Q_{s,s'}(c/N)`, so the
//! aggregate rate of the `(s → s')` reaction is `c_s · Q_{s,s'}(c/N)`
//! (a density-dependent Markov chain in Kurtz's sense). The Gillespie
//! (SSA) loop samples these reactions exactly.

use mfcsl_core::{CoreError, LocalModel, Occupancy};
use mfcsl_math::Matrix;
use rand::Rng;

/// A piecewise-constant trajectory of the count vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CountTrajectory {
    n: usize,
    times: Vec<f64>,
    counts: Vec<Vec<usize>>,
    t_end: f64,
}

impl CountTrajectory {
    /// Population size `N`.
    #[must_use]
    pub fn population(&self) -> usize {
        self.n
    }

    /// End of the observation window.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.t_end
    }

    /// Number of reaction events.
    #[must_use]
    pub fn n_events(&self) -> usize {
        self.times.len() - 1
    }

    /// Event times (the first entry is 0).
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The count vector in force at time `t` (clamped to the window).
    #[must_use]
    pub fn counts_at(&self, t: f64) -> &[usize] {
        let i = match self.times.partition_point(|&x| x <= t) {
            0 => 0,
            p => p - 1,
        };
        &self.counts[i]
    }

    /// The empirical occupancy `c(t)/N`.
    #[must_use]
    pub fn occupancy_at(&self, t: f64) -> Occupancy {
        let c = self.counts_at(t);
        Occupancy::project(c.iter().map(|&x| x as f64 / self.n as f64).collect())
            .expect("counts sum to N > 0")
    }
}

/// Draws a count vector with `Σ = n` that matches the occupancy in
/// expectation, by largest-remainder rounding (deterministic).
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for `n == 0`.
pub fn counts_from_occupancy(m: &Occupancy, n: usize) -> Result<Vec<usize>, CoreError> {
    if n == 0 {
        return Err(CoreError::InvalidArgument(
            "population size must be positive".into(),
        ));
    }
    let raw: Vec<f64> = m.as_slice().iter().map(|&f| f * n as f64).collect();
    let mut counts: Vec<usize> = raw.iter().map(|&x| x.floor() as usize).collect();
    let mut assigned: usize = counts.iter().sum();
    // Distribute the remainder to the largest fractional parts.
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = raw[a] - raw[a].floor();
        let fb = raw[b] - raw[b].floor();
        fb.partial_cmp(&fa).expect("finite")
    });
    let mut cursor = 0;
    while assigned < n {
        counts[order[cursor % order.len()]] += 1;
        assigned += 1;
        cursor += 1;
    }
    Ok(counts)
}

/// Runs the SSA from an initial count vector up to `t_end`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for an empty population, a count
/// vector of the wrong dimension, or a negative horizon; rate-function
/// failures propagate as [`CoreError::InvalidRate`].
///
/// # Example
///
/// ```
/// use mfcsl_core::{LocalModel, Occupancy};
/// use mfcsl_sim::ssa;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = LocalModel::builder()
///     .state("s", ["healthy"])
///     .state("i", ["infected"])
///     .transition("s", "i", |m: &Occupancy| 2.0 * m[1])?
///     .constant_transition("i", "s", 1.0)?
///     .build()?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let traj = ssa::simulate(&model, vec![90, 10], 5.0, &mut rng)?;
/// assert_eq!(traj.population(), 100);
/// let m5 = traj.occupancy_at(5.0);
/// assert!((m5[0] + m5[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn simulate<R: Rng + ?Sized>(
    model: &LocalModel,
    counts0: Vec<usize>,
    t_end: f64,
    rng: &mut R,
) -> Result<CountTrajectory, CoreError> {
    let (traj, _) = simulate_inner(model, counts0, None, t_end, rng)?;
    Ok(traj)
}

/// A tagged object's piecewise-constant path inside a finite population.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedPath {
    /// Visited states.
    pub states: Vec<usize>,
    /// Entry times (parallel to `states`, first entry 0).
    pub times: Vec<f64>,
    /// End of the observation window.
    pub t_end: f64,
}

impl TaggedPath {
    /// The tagged object's state at time `t`.
    #[must_use]
    pub fn state_at(&self, t: f64) -> usize {
        let i = match self.times.partition_point(|&x| x <= t) {
            0 => 0,
            p => p - 1,
        };
        self.states[i]
    }

    /// Iterates over `(state, entry, exit)` sojourns.
    pub fn sojourns(&self) -> impl Iterator<Item = (usize, f64, f64)> + '_ {
        (0..self.states.len()).map(move |i| {
            let exit = if i + 1 < self.times.len() {
                self.times[i + 1]
            } else {
                self.t_end
            };
            (self.states[i], self.times[i], exit)
        })
    }
}

/// Runs the SSA while following one *tagged* object starting in
/// `tagged_state` — the finite-`N` realization of the paper's "random
/// object within the overall system".
///
/// # Errors
///
/// As [`simulate`], plus [`CoreError::InvalidArgument`] if the tagged
/// state has zero initial count.
pub fn simulate_tagged<R: Rng + ?Sized>(
    model: &LocalModel,
    counts0: Vec<usize>,
    tagged_state: usize,
    t_end: f64,
    rng: &mut R,
) -> Result<(CountTrajectory, TaggedPath), CoreError> {
    if tagged_state >= counts0.len() || counts0[tagged_state] == 0 {
        return Err(CoreError::InvalidArgument(format!(
            "tagged state {tagged_state} has no objects in the initial counts"
        )));
    }
    let (traj, tagged) = simulate_inner(model, counts0, Some(tagged_state), t_end, rng)?;
    Ok((traj, tagged.expect("tagged path requested")))
}

fn simulate_inner<R: Rng + ?Sized>(
    model: &LocalModel,
    counts0: Vec<usize>,
    tagged_state: Option<usize>,
    t_end: f64,
    rng: &mut R,
) -> Result<(CountTrajectory, Option<TaggedPath>), CoreError> {
    let k = model.n_states();
    if counts0.len() != k {
        return Err(CoreError::InvalidArgument(format!(
            "count vector has {} entries, model has {k} states",
            counts0.len()
        )));
    }
    let n: usize = counts0.iter().sum();
    if n == 0 {
        return Err(CoreError::InvalidArgument(
            "population must be nonempty".into(),
        ));
    }
    if !(t_end >= 0.0) || !t_end.is_finite() {
        return Err(CoreError::InvalidArgument(format!(
            "horizon must be finite and non-negative, got {t_end}"
        )));
    }

    let mut counts = counts0;
    let mut t = 0.0;
    let mut times = vec![0.0];
    let mut count_log = vec![counts.clone()];
    let mut tagged = tagged_state;
    let mut tagged_states = tagged.map(|s| vec![s]);
    let mut tagged_times = tagged.map(|_| vec![0.0]);

    let mut q = Matrix::zeros(k, k);
    loop {
        let m = Occupancy::project(counts.iter().map(|&c| c as f64 / n as f64).collect())?;
        // Validate rates through the checked entry point once per event.
        let q_checked = model.generator_at(&m)?;
        q.as_mut_slice().copy_from_slice(q_checked.as_slice());
        // Aggregate reaction rates: a_(s,j) = c_s * q_sj.
        let mut total = 0.0;
        for s in 0..k {
            if counts[s] == 0 {
                continue;
            }
            for j in 0..k {
                if j != s {
                    total += counts[s] as f64 * q[(s, j)];
                }
            }
        }
        if total <= 0.0 {
            break; // frozen configuration
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / total;
        if t >= t_end {
            break;
        }
        // Pick the reaction.
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = None;
        'outer: for s in 0..k {
            if counts[s] == 0 {
                continue;
            }
            for j in 0..k {
                if j == s {
                    continue;
                }
                let a = counts[s] as f64 * q[(s, j)];
                if a <= 0.0 {
                    continue;
                }
                if pick < a {
                    chosen = Some((s, j));
                    break 'outer;
                }
                pick -= a;
            }
        }
        let Some((s, j)) = chosen else { break };
        counts[s] -= 1;
        counts[j] += 1;
        // Was it the tagged object? Each of the c_s objects in s is equally
        // likely to be the one that jumped.
        if let Some(ts) = tagged {
            if ts == s && rng.gen_range(0.0..1.0) < 1.0 / (counts[s] + 1) as f64 {
                tagged = Some(j);
                tagged_states.as_mut().expect("tagged").push(j);
                tagged_times.as_mut().expect("tagged").push(t);
            }
        }
        times.push(t);
        count_log.push(counts.clone());
    }

    let traj = CountTrajectory {
        n,
        times,
        counts: count_log,
        t_end,
    };
    let tagged_path = tagged_states.map(|states| TaggedPath {
        states,
        times: tagged_times.expect("tagged"),
        t_end,
    });
    Ok((traj, tagged_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sis() -> LocalModel {
        LocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", |m: &Occupancy| 2.0 * m[1])
            .unwrap()
            .constant_transition("i", "s", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn counts_from_occupancy_rounds_exactly() {
        let m = Occupancy::new(vec![0.8, 0.15, 0.05]).unwrap();
        let c = counts_from_occupancy(&m, 100).unwrap();
        assert_eq!(c, vec![80, 15, 5]);
        let c = counts_from_occupancy(&m, 7).unwrap();
        assert_eq!(c.iter().sum::<usize>(), 7);
        assert!(counts_from_occupancy(&m, 0).is_err());
    }

    #[test]
    fn population_is_conserved() {
        let model = sis();
        let mut rng = StdRng::seed_from_u64(3);
        let traj = simulate(&model, vec![50, 50], 10.0, &mut rng).unwrap();
        for &t in &[0.0, 1.0, 5.0, 10.0] {
            assert_eq!(traj.counts_at(t).iter().sum::<usize>(), 100);
        }
        assert_eq!(traj.population(), 100);
        assert!(traj.n_events() > 0);
    }

    #[test]
    fn frozen_population_stops() {
        // All healthy, no infected: SIS has zero rates (infection needs
        // m_i > 0).
        let model = sis();
        let mut rng = StdRng::seed_from_u64(3);
        let traj = simulate(&model, vec![100, 0], 10.0, &mut rng).unwrap();
        assert_eq!(traj.n_events(), 0);
        assert_eq!(traj.occupancy_at(10.0)[0], 1.0);
    }

    #[test]
    fn large_population_tracks_mean_field() {
        // Mean-field SIS infected fraction at t=2 from i0=0.1:
        // 0.5/(1+4e^{-2}) ≈ 0.3252. Average 40 runs of N=2000.
        let model = sis();
        let mut rng = StdRng::seed_from_u64(7);
        let mut acc = 0.0;
        let runs = 40;
        for _ in 0..runs {
            let traj = simulate(&model, vec![1800, 200], 2.0, &mut rng).unwrap();
            acc += traj.occupancy_at(2.0)[1];
        }
        let est = acc / runs as f64;
        let exact = 0.5 / (1.0 + 4.0 * (-2.0_f64).exp());
        assert!(
            (est - exact).abs() < 0.01,
            "finite-N estimate {est} vs mean-field {exact}"
        );
    }

    #[test]
    fn tagged_object_jump_rate_matches_local_model() {
        // With constant recovery rate 1, a tagged infected object should
        // leave within t=1 with probability 1-e^{-1} regardless of N.
        let model = sis();
        let mut rng = StdRng::seed_from_u64(11);
        let runs = 4000;
        let mut recovered = 0;
        for _ in 0..runs {
            let (_, path) = simulate_tagged(&model, vec![10, 40], 1, 1.0, &mut rng).unwrap();
            // Did the tagged object leave state 1 at least once?
            if path.states.len() > 1 && path.times[1] <= 1.0 {
                recovered += 1;
            }
        }
        let est = recovered as f64 / runs as f64;
        let exact = 1.0 - (-1.0_f64).exp();
        assert!(
            (est - exact).abs() < 0.03,
            "tagged recovery estimate {est} vs {exact}"
        );
    }

    #[test]
    fn tagged_path_accessors() {
        let p = TaggedPath {
            states: vec![0, 1],
            times: vec![0.0, 2.0],
            t_end: 5.0,
        };
        assert_eq!(p.state_at(1.9), 0);
        assert_eq!(p.state_at(2.0), 1);
        let soj: Vec<_> = p.sojourns().collect();
        assert_eq!(soj, vec![(0, 0.0, 2.0), (1, 2.0, 5.0)]);
    }

    #[test]
    fn validation() {
        let model = sis();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(simulate(&model, vec![1], 1.0, &mut rng).is_err());
        assert!(simulate(&model, vec![0, 0], 1.0, &mut rng).is_err());
        assert!(simulate(&model, vec![1, 1], -1.0, &mut rng).is_err());
        assert!(simulate_tagged(&model, vec![1, 0], 1, 1.0, &mut rng).is_err());
        assert!(simulate_tagged(&model, vec![1, 0], 7, 1.0, &mut rng).is_err());
    }
}
