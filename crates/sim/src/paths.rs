//! Checking CSL path formulas on sampled piecewise-constant paths.
//!
//! Statistical model checking: the probability of a path formula is the
//! success frequency over many sampled paths. This module decides whether
//! one concrete path satisfies `Φ₁ U^[t₁,t₂] Φ₂` or `X^[t₁,t₂] Φ` given the
//! (time-independent) satisfaction sets of the operands — the ground truth
//! against which the analytic checkers are validated.

use mfcsl_core::CoreError;

/// A borrowed view of a piecewise-constant path: `(state, entry, exit)`
/// sojourns covering `[0, t_end]` contiguously.
pub type Sojourn = (usize, f64, f64);

/// Decides `σ ⊨ Φ₁ U^[t₁,t₂] Φ₂` on a concrete path.
///
/// Semantics (Def. 4 of the paper): there is `t' ∈ [t₁, t₂]` with
/// `σ@t' ⊨ Φ₂` and `σ@t'' ⊨ Φ₁` for all `t'' ∈ [0, t')`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for an empty sojourn list, a
/// state index out of range of the satisfaction vectors, or a reversed
/// interval.
///
/// # Example
///
/// ```
/// use mfcsl_sim::paths::until_holds;
///
/// // Path: state 0 on [0, 0.4), state 1 from 0.4 on.
/// let sojourns = [(0, 0.0, 0.4), (1, 0.4, 2.0)];
/// let sat1 = [true, false];
/// let sat2 = [false, true];
/// assert!(until_holds(&sojourns, &sat1, &sat2, 0.0, 1.0)?);
/// assert!(!until_holds(&sojourns, &sat1, &sat2, 0.0, 0.3)?);
/// # Ok::<(), mfcsl_core::CoreError>(())
/// ```
pub fn until_holds(
    sojourns: &[Sojourn],
    sat1: &[bool],
    sat2: &[bool],
    t1: f64,
    t2: f64,
) -> Result<bool, CoreError> {
    if sojourns.is_empty() {
        return Err(CoreError::InvalidArgument(
            "path must have at least one sojourn".into(),
        ));
    }
    if !(t1 >= 0.0) || !(t2 >= t1) {
        return Err(CoreError::InvalidArgument(format!(
            "until interval [{t1}, {t2}] is invalid"
        )));
    }
    // Walk sojourns, tracking whether Φ₁ has held on [0, current).
    for &(state, entry, exit) in sojourns {
        check_state(state, sat1)?;
        if sat2[state] {
            // Candidate t' range within this sojourn: σ@t' = state for
            // t' ∈ [entry, exit) (and at t_end for the last sojourn, but
            // exit bounds suffice — t' = exit belongs to the next sojourn).
            let lo = entry.max(t1);
            if sat1[state] {
                // Any t' in [lo, min(exit, t2)] works (the prefix up to
                // `entry` is Φ₁-valid if we got here, and [entry, t')
                // stays in this Φ₁ state).
                if lo <= t2 && lo < exit {
                    return Ok(true);
                }
            } else {
                // Only t' = entry can work: waiting inside a ¬Φ₁ state
                // would violate the prefix condition.
                if entry >= t1 && entry <= t2 {
                    return Ok(true);
                }
            }
        }
        if !sat1[state] {
            // The prefix condition fails for any later t'.
            return Ok(false);
        }
        if entry > t2 {
            return Ok(false);
        }
    }
    // Path ended (absorbing tail counts as occupying the last state until
    // t_end; if we are here, that state is Φ₁ ∧ ¬Φ₂, or the loop covered
    // everything without finding a witness).
    Ok(false)
}

/// Decides the *time-varying-set* until `σ ⊨ Γ₁ U^[0,T] Γ₂` on a concrete
/// path, where the sets are piecewise constant in (global) time: there is
/// `t' ∈ [0, T]` with `σ@t' ∈ Γ₂(t')` and `σ@t'' ∈ Γ₁(t'')` for all
/// `t'' ∈ [0, t')`. Both sets are right-continuous at their boundaries —
/// the ground truth for the nested-until machinery of Sec. IV-C.
///
/// `gamma1_at` / `gamma2_at` map a time to the membership vector in force.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for an empty sojourn list, a
/// negative horizon, or a state index out of range.
pub fn until_holds_time_varying<F1, F2>(
    sojourns: &[Sojourn],
    gamma1_at: F1,
    gamma2_at: F2,
    big_t: f64,
    boundaries: &[f64],
) -> Result<bool, CoreError>
where
    F1: Fn(f64) -> Vec<bool>,
    F2: Fn(f64) -> Vec<bool>,
{
    if sojourns.is_empty() {
        return Err(CoreError::InvalidArgument(
            "path must have at least one sojourn".into(),
        ));
    }
    if !(big_t >= 0.0) {
        return Err(CoreError::InvalidArgument(format!(
            "until horizon {big_t} is invalid"
        )));
    }
    // Build the merged event grid: path jumps plus set boundaries, within
    // [0, T]. On each cell the state and both sets are constant.
    let mut cuts: Vec<f64> = vec![0.0, big_t];
    for &(_, entry, _) in sojourns {
        if entry > 0.0 && entry < big_t {
            cuts.push(entry);
        }
    }
    for &b in boundaries {
        if b > 0.0 && b < big_t {
            cuts.push(b);
        }
    }
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let state_at = |t: f64| -> usize {
        // Right-continuous path lookup over sojourns.
        let mut current = sojourns[0].0;
        for &(s, entry, _) in sojourns {
            if entry <= t {
                current = s;
            } else {
                break;
            }
        }
        current
    };
    let check = |set: &[bool], s: usize| -> Result<bool, CoreError> {
        set.get(s).copied().ok_or_else(|| {
            CoreError::InvalidArgument(format!(
                "path visits state {s}, set has {} entries",
                set.len()
            ))
        })
    };
    // Walk cells [c_i, c_{i+1}): membership is decided at the left edge
    // (everything is right-continuous). The prefix condition must hold on
    // the whole cell for the walk to continue past it.
    for (i, &t) in cuts.iter().enumerate() {
        let s = state_at(t);
        if check(&gamma2_at(t), s)? {
            return Ok(true); // witness at t' = t, prefix held so far
        }
        if !check(&gamma1_at(t), s)? {
            return Ok(false); // prefix breaks on [t, next); no later witness
        }
        let _ = i;
    }
    Ok(false)
}

/// Decides `σ ⊨ X^[t₁,t₂] Φ` on a concrete path: the first jump exists,
/// happens within the interval, and lands in a `Φ` state.
///
/// # Errors
///
/// As [`until_holds`].
pub fn next_holds(
    sojourns: &[Sojourn],
    sat_inner: &[bool],
    t1: f64,
    t2: f64,
) -> Result<bool, CoreError> {
    if sojourns.is_empty() {
        return Err(CoreError::InvalidArgument(
            "path must have at least one sojourn".into(),
        ));
    }
    if !(t1 >= 0.0) || !(t2 >= t1) {
        return Err(CoreError::InvalidArgument(format!(
            "next interval [{t1}, {t2}] is invalid"
        )));
    }
    if sojourns.len() < 2 {
        return Ok(false); // no jump at all
    }
    let (second_state, jump_time, _) = sojourns[1];
    check_state(second_state, sat_inner)?;
    Ok(jump_time >= t1 && jump_time <= t2 && sat_inner[second_state])
}

fn check_state(state: usize, sat: &[bool]) -> Result<(), CoreError> {
    if state < sat.len() {
        Ok(())
    } else {
        Err(CoreError::InvalidArgument(format!(
            "path visits state {state}, satisfaction vector has {} entries",
            sat.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn until_basic_witnesses() {
        let path = [(0, 0.0, 1.0), (1, 1.0, 3.0)];
        let a = [true, false];
        let b = [false, true];
        // Reaches Φ₂ at t=1.
        assert!(until_holds(&path, &a, &b, 0.0, 2.0).unwrap());
        assert!(until_holds(&path, &a, &b, 1.0, 1.0).unwrap());
        assert!(!until_holds(&path, &a, &b, 0.0, 0.9).unwrap());
        assert!(until_holds(&path, &a, &b, 0.5, 1.5).unwrap());
        // After the jump the prefix is broken for later witnesses... but
        // state 1 is the goal, so the t1=2 query still finds t'=2 only if
        // Φ₁ holds on [0,2): state 1 on [1,2) is ¬Φ₁ ⇒ false.
        assert!(!until_holds(&path, &a, &b, 2.0, 3.0).unwrap());
    }

    #[test]
    fn until_immediate_goal() {
        let path = [(1, 0.0, 5.0)];
        let a = [true, false];
        let b = [false, true];
        // σ@0 ⊨ Φ₂ with empty prefix.
        assert!(until_holds(&path, &a, &b, 0.0, 1.0).unwrap());
        // t₁ > 0: must wait inside the ¬Φ₁ goal state — not allowed.
        assert!(!until_holds(&path, &a, &b, 0.5, 1.0).unwrap());
        // If the goal state also satisfies Φ₁, waiting is fine.
        let both = [true, true];
        assert!(until_holds(&path, &both, &b, 0.5, 1.0).unwrap());
    }

    #[test]
    fn until_broken_prefix() {
        // 0 -> 2 (neither) -> 1 (goal).
        let path = [(0, 0.0, 1.0), (2, 1.0, 2.0), (1, 2.0, 4.0)];
        let a = [true, false, false];
        let b = [false, true, false];
        assert!(!until_holds(&path, &a, &b, 0.0, 4.0).unwrap());
        // If state 2 satisfies Φ₁ the witness at t=2 is fine.
        let a2 = [true, false, true];
        assert!(until_holds(&path, &a2, &b, 0.0, 4.0).unwrap());
    }

    #[test]
    fn until_stuck_in_phi1_forever() {
        let path = [(0, 0.0, 10.0)];
        let a = [true, false];
        let b = [false, true];
        assert!(!until_holds(&path, &a, &b, 0.0, 5.0).unwrap());
    }

    #[test]
    fn next_semantics() {
        let path = [(0, 0.0, 1.5), (1, 1.5, 3.0)];
        let goal = [false, true];
        assert!(next_holds(&path, &goal, 1.0, 2.0).unwrap());
        assert!(!next_holds(&path, &goal, 0.0, 1.0).unwrap());
        assert!(!next_holds(&path, &goal, 2.0, 3.0).unwrap());
        let other = [true, false];
        assert!(!next_holds(&path, &other, 1.0, 2.0).unwrap());
        // No jump at all.
        assert!(!next_holds(&[(0, 0.0, 9.0)], &goal, 0.0, 5.0).unwrap());
    }

    #[test]
    fn validation() {
        let a = [true];
        assert!(until_holds(&[], &a, &a, 0.0, 1.0).is_err());
        assert!(until_holds(&[(0, 0.0, 1.0)], &a, &a, 1.0, 0.5).is_err());
        assert!(until_holds(&[(3, 0.0, 1.0)], &a, &a, 0.0, 1.0).is_err());
        assert!(next_holds(&[], &a, 0.0, 1.0).is_err());
        assert!(next_holds(&[(0, 0.0, 1.0), (2, 1.0, 2.0)], &a, 0.0, 1.5).is_err());
    }
}

#[cfg(test)]
mod time_varying_tests {
    use super::*;

    fn g(sets: &'static [(f64, [bool; 2])]) -> impl Fn(f64) -> Vec<bool> {
        move |t: f64| {
            let mut current = sets[0].1;
            for &(b, set) in sets {
                if b <= t {
                    current = set;
                } else {
                    break;
                }
            }
            current.to_vec()
        }
    }

    #[test]
    fn witness_when_goal_turns_on() {
        // Path stays in state 0 forever; goal set turns on for state 0 at
        // t = 2.
        let path = [(0usize, 0.0, 10.0)];
        let g1 = g(&[(0.0, [true, true])]);
        let g2 = g(&[(0.0, [false, false]), (2.0, [true, false])]);
        assert!(until_holds_time_varying(&path, &g1, &g2, 5.0, &[2.0]).unwrap());
        // Horizon before the switch: no witness.
        assert!(!until_holds_time_varying(&path, &g1, &g2, 1.5, &[2.0]).unwrap());
    }

    #[test]
    fn prefix_breaks_when_invariant_turns_off() {
        // State 0 leaves Γ₁ at t = 1; goal (state 1) reached by a jump at 3.
        let path = [(0usize, 0.0, 3.0), (1, 3.0, 10.0)];
        let g1 = g(&[(0.0, [true, true]), (1.0, [false, true])]);
        let g2 = g(&[(0.0, [false, true])]);
        assert!(!until_holds_time_varying(&path, &g1, &g2, 5.0, &[1.0]).unwrap());
        // With the invariant intact the jump is a witness.
        let g1_ok = g(&[(0.0, [true, true])]);
        assert!(until_holds_time_varying(&path, &g1_ok, &g2, 5.0, &[]).unwrap());
    }

    #[test]
    fn goal_at_exact_horizon_counts() {
        // Goal turns on exactly at t = T (right-continuous sets).
        let path = [(0usize, 0.0, 10.0)];
        let g1 = g(&[(0.0, [true, true])]);
        let g2 = g(&[(0.0, [false, false]), (5.0, [true, false])]);
        assert!(until_holds_time_varying(&path, &g1, &g2, 5.0, &[5.0]).unwrap());
    }

    #[test]
    fn validation() {
        let g1 = g(&[(0.0, [true, true])]);
        let g2 = g(&[(0.0, [false, true])]);
        assert!(until_holds_time_varying(&[], &g1, &g2, 1.0, &[]).is_err());
        let path = [(0usize, 0.0, 1.0)];
        assert!(until_holds_time_varying(&path, &g1, &g2, -1.0, &[]).is_err());
        let bad = [(7usize, 0.0, 1.0)];
        assert!(until_holds_time_varying(&bad, &g1, &g2, 1.0, &[]).is_err());
    }
}
