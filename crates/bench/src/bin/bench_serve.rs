//! Load benchmark of the `mfcsld` serving layer: writes
//! `BENCH_serve.json` at the repo root.
//!
//! Four workloads, plus a snapshot-restart probe:
//!
//! * **cold** — sequential requests that each carry a distinct parameter
//!   override, so every one misses the session store and pays the full
//!   session build (model instantiation + mean-field solve). This is the
//!   worst-case per-request latency. Sized so the p99 rank is resolvable
//!   (see `tail_resolved`).
//! * **warm** — a closed-loop fleet of concurrent clients hammering one
//!   `(model, params, tolerances)` session key over one connection per
//!   request (the historical baseline shape, kept for comparability with
//!   committed reports from the blocking core).
//! * **warm_keepalive** — ≥1000 simulated keep-alive clients (a few OS
//!   threads each round-robining hundreds of [`Client`]s, so every client
//!   holds its own live connection) with a mixed key population: ~90% of
//!   requests hit the shared hot key, the rest spread over tenant keys
//!   that start cold and warm up mid-run. The report records how many
//!   server-side connections the run opened; keep-alive demands
//!   connections ≪ requests.
//! * **sharded** — two in-process shard daemons behind the consistent-hash
//!   router on the epoll reactor; clients alternate between two keys that
//!   the hash pins to different shards. Latencies are reported per shard
//!   and in aggregate.
//!
//! **snapshot_restart** — a daemon with `--state-dir` serves a key warm,
//! drains (persisting the session), restarts on the same directory, and
//! the probe times the very first request of the second life: it must be
//! warm, bitwise identical, and within 5x the first life's warm p50.
//!
//! **chaos** — a real `mfcsl serve --shards 2 --state-dir` process (the
//! supervisor lives in the CLI, so this probe needs the actual binary);
//! one shard is SIGKILLed under warm load and a closed loop hammers both
//! keys until the supervisor revives it. Reported: the unavailability
//! window, errors during it, the restart count, and whether the revived
//! shard's first request was warm (restored from the eager write-behind
//! snapshot — zero fresh solves) with bitwise-unchanged verdicts on the
//! surviving shard throughout.
//!
//! Every workload asserts bitwise identity of responses against its
//! reference. The report is stamped with the git revision and the
//! machine's available parallelism; `--serve-baseline <path>` gates this
//! run against a previous report (throughput >= 0.75x, p99 <= 1.25x) and
//! refuses cross-core-count comparisons outright.
//!
//! Usage: `cargo run --release -p mfcsl-bench --bin bench_serve --
//! [--smoke] [--out <path>] [--models <dir>] [--serve-baseline <path>]`.

use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mfcsl_serve::metrics::ServerMetrics;
use mfcsl_serve::router::route_for;
use mfcsl_serve::{
    client, reactor, CheckRequest, Client, Json, ModelRegistry, ReactorOptions, RequestHandler,
    Router, RouterConfig, Server, ServerConfig, SessionKey, ShardSpec,
};

struct ShardStats {
    shard: usize,
    /// Sorted client-observed latencies in microseconds.
    latencies_us: Vec<u64>,
}

struct ServeWorkload {
    name: &'static str,
    description: String,
    requests: usize,
    concurrency: usize,
    wall_seconds: f64,
    /// Sorted client-observed latencies in microseconds.
    latencies_us: Vec<u64>,
    bitwise_equal: bool,
    /// Server-side connections the workload opened (keep-alive workloads
    /// only): must stay far below `requests`.
    connections: Option<u64>,
    /// Per-shard latency splits (sharded workload only).
    shards: Vec<ShardStats>,
}

impl ServeWorkload {
    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.wall_seconds
    }
}

/// Nearest-rank percentile of a sorted latency list.
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Whether the tail quantile `q` is resolvable at this sample count: the
/// nearest-rank p99 of 12 samples is just the max (and equals p95), which
/// is how a report ends up with degenerate `p95 == p99` columns. The
/// report carries this flag so consumers (and the regression gate) know
/// when the tail is real.
fn tail_resolved(samples: usize, q: f64) -> bool {
    samples as f64 * (1.0 - q) >= 1.0
}

struct SnapshotRestart {
    warm_p50_us: u64,
    first_request_us: u64,
    within_5x_warm_p50: bool,
    warm: bool,
    bitwise_equal: bool,
}

struct ChaosProbe {
    /// Closed-loop requests issued between the SIGKILL and the revived
    /// shard's first success (both keys, alternating).
    requests: usize,
    /// Errors among them (all on the killed shard's key; the breaker turns
    /// most into fast-fails).
    errors: usize,
    /// SIGKILL → first successful request on the killed shard's key.
    unavailability_ms: u64,
    /// `mfcsld_router_shard_restarts_total` after recovery.
    restarts: u64,
    /// The revived shard's first answer came from restored warm state.
    revived_warm: bool,
    /// Latency of that first post-restart request.
    revived_first_request_us: u64,
    /// Fresh mean-field solves on the revived shard after its first
    /// request — must be 0 (everything restored from the eager snapshot).
    revived_trajectory_solves: u64,
    /// The surviving shard's verdicts stayed bitwise identical throughout.
    survivor_bitwise_equal: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let models_dir = flag("--models").map(PathBuf::from).unwrap_or_else(default_models_dir);
    let baseline_path = flag("--serve-baseline");

    let workers = mfcsl_pool::default_parallelism().max(2);
    let server = Server::bind(
        load_registry(&models_dir),
        ServerConfig {
            workers,
            queue_capacity: 1024,
            max_sessions: 512,
            ..ServerConfig::default()
        },
    )
    .expect("daemon binds");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    // (cold, warm fleet x per-client, keep-alive threads x clients x
    // rounds over `tenants` cold-start keys, shard fleet x per-client,
    // snapshot warm probes)
    let (cold_n, fleet, per_client, ka, tenants, shard_per_client, probes) = if smoke {
        (8, 4, 5, (4, 32, 2), 16, 5, 5)
    } else {
        (120, 8, 25, (8, 128, 4), 64, 40, 20)
    };
    let (ka_threads, ka_clients, ka_rounds) = ka;

    let mut workloads = vec![
        cold_workload(&addr, cold_n),
        warm_workload(&addr, fleet, per_client),
        keepalive_workload(&addr, ka_threads, ka_clients, ka_rounds, tenants),
    ];
    client::shutdown(&addr).expect("daemon drains");
    daemon.join().expect("daemon thread").expect("daemon exits cleanly");

    workloads.push(sharded_workload(&models_dir, fleet, shard_per_client));
    let restart = snapshot_restart_probe(&models_dir, probes);
    let chaos = chaos_probe(&models_dir);

    let json = render_json(&workloads, &restart, &chaos, workers, smoke);
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("report written to {out_path}");
    for w in &workloads {
        println!(
            "{:<15} requests={:<5} concurrency={:<5} wall={:.4}s  rps={:.1}  \
             p50={}us p95={}us p99={}us{}  bitwise_equal={}",
            w.name,
            w.requests,
            w.concurrency,
            w.wall_seconds,
            w.throughput_rps(),
            percentile_us(&w.latencies_us, 0.50),
            percentile_us(&w.latencies_us, 0.95),
            percentile_us(&w.latencies_us, 0.99),
            w.connections
                .map(|c| format!("  connections={c}"))
                .unwrap_or_default(),
            w.bitwise_equal
        );
        for s in &w.shards {
            println!(
                "  shard {}: requests={} p50={}us p95={}us p99={}us",
                s.shard,
                s.latencies_us.len(),
                percentile_us(&s.latencies_us, 0.50),
                percentile_us(&s.latencies_us, 0.95),
                percentile_us(&s.latencies_us, 0.99),
            );
        }
    }
    println!(
        "snapshot_restart warm_p50={}us first_request={}us within_5x={} warm={} bitwise_equal={}",
        restart.warm_p50_us,
        restart.first_request_us,
        restart.within_5x_warm_p50,
        restart.warm,
        restart.bitwise_equal
    );
    println!(
        "chaos requests={} errors={} unavailability={}ms restarts={} revived_warm={} \
         revived_first_request={}us revived_trajectory_solves={} survivor_bitwise_equal={}",
        chaos.requests,
        chaos.errors,
        chaos.unavailability_ms,
        chaos.restarts,
        chaos.revived_warm,
        chaos.revived_first_request_us,
        chaos.revived_trajectory_solves,
        chaos.survivor_bitwise_equal
    );

    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read serve baseline {path}: {e}"));
        if !serve_gate(&json, &baseline) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `modelfiles/` under the working directory if it exists (running from
/// the repo root), otherwise resolved from this crate's source location.
fn default_models_dir() -> PathBuf {
    let cwd = PathBuf::from("modelfiles");
    if cwd.is_dir() {
        cwd
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../modelfiles")
    }
}

fn load_registry(models_dir: &PathBuf) -> ModelRegistry {
    ModelRegistry::load(std::slice::from_ref(models_dir)).expect("models load")
}

/// The request batch every workload checks: the paper's virus model under
/// a mixed batch of formula kinds (time-bounded path, expectation,
/// steady-state).
fn virus_request() -> CheckRequest {
    CheckRequest::new(
        "virus",
        &[0.8, 0.15, 0.05],
        &[
            "EP{<0.3}[ not_infected U[0,1] infected ]".to_string(),
            "E{<0.3}[ infected ]".to_string(),
            "ES{>0.1}[ infected ]".to_string(),
        ],
    )
}

/// A tenant key: the hot-key batch under a per-tenant `k2` override, so
/// each tenant owns its own warm session.
fn tenant_request(tenant: usize) -> CheckRequest {
    let mut req = virus_request();
    req.params.insert("k2".to_string(), 0.3 + tenant as f64 * 0.005);
    req
}

/// Sequential requests, each with a unique `k2` override: a forced session
/// miss per request.
fn cold_workload(addr: &str, n: usize) -> ServeWorkload {
    let mut latencies_us = Vec::with_capacity(n);
    let start = Instant::now();
    for i in 0..n {
        let mut req = virus_request();
        // Perturb a rate parameter just enough to change the session key.
        req.params.insert("k2".to_string(), 0.1 + (i + 1) as f64 * 1e-6);
        let t0 = Instant::now();
        let outcome = client::post_check(addr, &req).expect("cold request");
        latencies_us.push(t0.elapsed().as_micros() as u64);
        assert!(!outcome.warm, "override {i} unexpectedly hit a warm session");
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    latencies_us.sort_unstable();
    ServeWorkload {
        name: "cold",
        description: format!(
            "{n} sequential checks of a 3-formula batch on the virus model, each with a \
             distinct k2 override forcing a fresh session (full model build + mean-field solve)"
        ),
        requests: n,
        concurrency: 1,
        wall_seconds,
        latencies_us,
        bitwise_equal: true,
        connections: None,
        shards: Vec::new(),
    }
}

/// A closed-loop fleet on one session key, one connection per request (the
/// committed blocking-core baseline shape); all responses must be bitwise
/// identical to the warm-up reference.
fn warm_workload(addr: &str, fleet: usize, per_client: usize) -> ServeWorkload {
    let reference = client::post_check(addr, &virus_request()).expect("warm-up request");
    let start = Instant::now();
    let handles: Vec<_> = (0..fleet)
        .map(|_| {
            let addr = addr.to_string();
            let reference = reference.verdicts.clone();
            std::thread::spawn(move || {
                let mut lats = Vec::with_capacity(per_client);
                let mut identical = true;
                for _ in 0..per_client {
                    let t0 = Instant::now();
                    let outcome = client::post_check(&addr, &virus_request()).expect("warm request");
                    lats.push(t0.elapsed().as_micros() as u64);
                    identical &= outcome.warm && outcome.verdicts == reference;
                }
                (lats, identical)
            })
        })
        .collect();
    let mut latencies_us = Vec::with_capacity(fleet * per_client);
    let mut bitwise_equal = true;
    for h in handles {
        let (lats, identical) = h.join().expect("client thread");
        latencies_us.extend(lats);
        bitwise_equal &= identical;
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    latencies_us.sort_unstable();
    ServeWorkload {
        name: "warm",
        description: format!(
            "{fleet} concurrent closed-loop clients x {per_client} checks of the same \
             3-formula virus batch on one session key, one connection per request \
             (blocking-core baseline shape)"
        ),
        requests: fleet * per_client,
        concurrency: fleet,
        wall_seconds,
        latencies_us,
        bitwise_equal,
        connections: None,
        shards: Vec::new(),
    }
}

fn connections_total(addr: &str) -> u64 {
    let metrics = client::get_text(addr, "/metrics").expect("metrics fetch");
    metrics
        .lines()
        .find_map(|line| {
            let mut parts = line.split_whitespace();
            (parts.next() == Some("mfcsld_connections_total"))
                .then(|| parts.next())?
                .and_then(|v| v.parse().ok())
        })
        .expect("connections counter present")
}

/// `threads x clients` keep-alive [`Client`]s (each holding its own live
/// connection) round-robined by a few OS threads; ~90% of requests hit
/// the shared hot key, the rest a per-client tenant key from a pool of
/// `tenants` (cold on first touch, warm after). All hot-key responses
/// must be bitwise identical to the reference, and the run must open far
/// fewer server-side connections than it sends requests.
fn keepalive_workload(
    addr: &str,
    threads: usize,
    clients_per_thread: usize,
    rounds: usize,
    tenants: usize,
) -> ServeWorkload {
    let reference = client::post_check(addr, &virus_request()).expect("warm-up request");
    let before = connections_total(addr);
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let addr = addr.to_string();
            let reference = reference.verdicts.clone();
            std::thread::spawn(move || {
                let mut clients: Vec<Client> =
                    (0..clients_per_thread).map(|_| Client::new(&addr)).collect();
                let mut lats = Vec::with_capacity(clients_per_thread * rounds);
                let mut identical = true;
                let mut still_connected = true;
                for round in 0..rounds {
                    for (i, keep) in clients.iter_mut().enumerate() {
                        let global = t * clients_per_thread + i;
                        // Deterministic 1-in-10 mix of tenant keys.
                        let hot = !(global + round).is_multiple_of(10);
                        let req = if hot {
                            virus_request()
                        } else {
                            tenant_request(global % tenants)
                        };
                        let t0 = Instant::now();
                        let outcome = keep.check(&req).expect("keep-alive request");
                        lats.push(t0.elapsed().as_micros() as u64);
                        if hot {
                            identical &= outcome.warm && outcome.verdicts == reference;
                        } else {
                            identical &= !outcome.verdicts.is_empty();
                        }
                    }
                }
                still_connected &= clients.iter().all(Client::is_connected);
                (lats, identical, still_connected)
            })
        })
        .collect();
    let mut latencies_us = Vec::with_capacity(threads * clients_per_thread * rounds);
    let mut bitwise_equal = true;
    for h in handles {
        let (lats, identical, still_connected) = h.join().expect("keep-alive thread");
        latencies_us.extend(lats);
        bitwise_equal &= identical;
        assert!(still_connected, "a keep-alive client lost its connection mid-run");
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let connections = connections_total(addr) - before;
    let requests = threads * clients_per_thread * rounds;
    assert!(
        connections < requests as u64,
        "keep-alive must reuse connections: {connections} connections for {requests} requests"
    );
    latencies_us.sort_unstable();
    ServeWorkload {
        name: "warm_keepalive",
        description: format!(
            "{} keep-alive clients ({threads} threads x {clients_per_thread} connections) x \
             {rounds} rounds; ~90% of requests on the shared hot key, the rest on {tenants} \
             tenant keys that start cold and warm up mid-run",
            threads * clients_per_thread
        ),
        requests,
        concurrency: threads * clients_per_thread,
        wall_seconds,
        latencies_us,
        bitwise_equal,
        connections: Some(connections),
        shards: Vec::new(),
    }
}

/// Two in-process shard daemons behind the consistent-hash router on the
/// epoll reactor; keep-alive clients alternate between one key per shard.
fn sharded_workload(models_dir: &PathBuf, fleet: usize, per_client: usize) -> ServeWorkload {
    // Shard daemons on ephemeral ports.
    let mut shard_addrs: Vec<SocketAddr> = Vec::new();
    let mut shard_handles = Vec::new();
    for _ in 0..2 {
        let server = Server::bind(
            load_registry(models_dir),
            ServerConfig {
                workers: 2,
                queue_capacity: 1024,
                ..ServerConfig::default()
            },
        )
        .expect("shard binds");
        shard_addrs.push(server.local_addr());
        shard_handles.push(std::thread::spawn(move || server.run()));
    }
    // The router on its own reactor.
    let listener = TcpListener::bind("127.0.0.1:0").expect("router binds");
    let router_addr = listener.local_addr().expect("router addr").to_string();
    let router: Arc<dyn RequestHandler> = Arc::new(Router::new(&RouterConfig {
        shards: shard_addrs.iter().map(|&addr| ShardSpec { addr }).collect(),
        ..RouterConfig::default()
    }));
    let options = ReactorOptions {
        event_loops: 1,
        workers: 4,
        queue_capacity: 1024,
        max_body: 1 << 20,
        idle_timeout: Duration::from_secs(10),
        metrics: Arc::new(ServerMetrics::new()),
        shutdown: Arc::new(AtomicBool::new(false)),
        queue_depth: Arc::new(AtomicUsize::new(0)),
    };
    let router_handle = std::thread::spawn(move || reactor::run(listener, router, options));

    // One key per shard: scan k2 overrides until the consistent hash has
    // covered both shards (deterministic, so stable across runs).
    let request_for = |k2: f64| {
        let mut req = virus_request();
        req.params.insert("k2".to_string(), k2);
        req
    };
    let key_for = |k2: f64| {
        let mut params = std::collections::BTreeMap::new();
        params.insert("k2".to_string(), k2);
        SessionKey::new("virus", &params, false, None)
    };
    let mut per_shard_k2 = [None, None];
    for i in 1..64 {
        let v = 0.7 + f64::from(i) * 0.01;
        let slot = route_for(&key_for(v), 2);
        if per_shard_k2[slot].is_none() {
            per_shard_k2[slot] = Some(v);
        }
        if per_shard_k2.iter().all(Option::is_some) {
            break;
        }
    }
    let k2s = [per_shard_k2[0].expect("shard 0 key"), per_shard_k2[1].expect("shard 1 key")];
    let references: Vec<_> = k2s
        .iter()
        .map(|&k2| client::post_check(&router_addr, &request_for(k2)).expect("shard warm-up"))
        .collect();

    let start = Instant::now();
    let handles: Vec<_> = (0..fleet)
        .map(|c| {
            let addr = router_addr.clone();
            let refs: Vec<_> = references.iter().map(|r| r.verdicts.clone()).collect();
            std::thread::spawn(move || {
                let mut keep = Client::new(&addr);
                let mut lats: Vec<(usize, u64)> = Vec::with_capacity(per_client);
                let mut identical = true;
                for i in 0..per_client {
                    let shard = (c + i) % 2;
                    let t0 = Instant::now();
                    let outcome = keep.check(&request_for(k2s[shard])).expect("sharded request");
                    lats.push((shard, t0.elapsed().as_micros() as u64));
                    identical &= outcome.warm && outcome.verdicts == refs[shard];
                }
                (lats, identical)
            })
        })
        .collect();
    let mut by_shard = [Vec::new(), Vec::new()];
    let mut bitwise_equal = true;
    for h in handles {
        let (lats, identical) = h.join().expect("sharded client thread");
        for (shard, us) in lats {
            by_shard[shard].push(us);
        }
        bitwise_equal &= identical;
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    // Drain: the router fans the shutdown out to both shards.
    client::shutdown(&router_addr).expect("router drains");
    router_handle
        .join()
        .expect("router thread")
        .expect("router exits cleanly");
    for h in shard_handles {
        h.join().expect("shard thread").expect("shard exits cleanly");
    }

    let mut latencies_us: Vec<u64> = by_shard.iter().flatten().copied().collect();
    latencies_us.sort_unstable();
    let shards = by_shard
        .into_iter()
        .enumerate()
        .map(|(shard, mut lats)| {
            lats.sort_unstable();
            ShardStats { shard, latencies_us: lats }
        })
        .collect();
    ServeWorkload {
        name: "sharded",
        description: format!(
            "{fleet} keep-alive clients x {per_client} checks through the consistent-hash \
             router over 2 in-process shards, alternating between one pinned key per shard"
        ),
        requests: fleet * per_client,
        concurrency: fleet,
        wall_seconds,
        latencies_us,
        bitwise_equal,
        connections: None,
        shards,
    }
}

/// Warm-drain-restart on a `--state-dir`: the second life's first request
/// must hit the restored session (no re-solve) within 5x the first life's
/// warm p50.
fn snapshot_restart_probe(models_dir: &PathBuf, probes: usize) -> SnapshotRestart {
    let dir = std::env::temp_dir().join(format!("mfcsld-bench-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    let server = Server::bind(load_registry(models_dir), config()).expect("daemon binds");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());
    let reference = client::post_check(&addr, &virus_request()).expect("cold request");
    let mut warm_lats: Vec<u64> = (0..probes)
        .map(|_| {
            let t0 = Instant::now();
            let outcome = client::post_check(&addr, &virus_request()).expect("warm probe");
            assert!(outcome.warm);
            t0.elapsed().as_micros() as u64
        })
        .collect();
    warm_lats.sort_unstable();
    let warm_p50_us = percentile_us(&warm_lats, 0.50);
    client::shutdown(&addr).expect("daemon drains");
    daemon.join().expect("daemon thread").expect("daemon exits cleanly");

    let server = Server::bind(load_registry(models_dir), config()).expect("daemon rebinds");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());
    // Untimed transport warm-up: the probe measures what the snapshot
    // saves (the session build + mean-field solve), not first-connection
    // process jitter.
    let _ = client::get_text(&addr, "/healthz").expect("healthz");
    let t0 = Instant::now();
    let first = client::post_check(&addr, &virus_request()).expect("restored request");
    let first_request_us = t0.elapsed().as_micros() as u64;
    client::shutdown(&addr).expect("daemon drains");
    daemon.join().expect("daemon thread").expect("daemon exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);

    SnapshotRestart {
        warm_p50_us,
        first_request_us,
        within_5x_warm_p50: first_request_us <= 5 * warm_p50_us.max(1),
        warm: first.warm,
        bitwise_equal: first.verdicts == reference.verdicts,
    }
}

/// SIGKILL one shard of a real `mfcsl serve --shards 2` process under warm
/// load and measure the supervisor's recovery. Needs the `mfcsl` binary
/// (built by the same cargo profile, sibling of this executable) because
/// the supervisor is CLI-layer machinery, not library code.
fn chaos_probe(models_dir: &PathBuf) -> ChaosProbe {
    let exe = std::env::current_exe().expect("own path");
    let mfcsl = exe.with_file_name("mfcsl");
    assert!(
        mfcsl.is_file(),
        "chaos probe needs the mfcsl binary at {} — build the workspace first \
         (cargo build --release --workspace)",
        mfcsl.display()
    );
    let dir = std::env::temp_dir().join(format!("mfcsld-bench-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut fleet = std::process::Command::new(&mfcsl)
        .arg("serve")
        .arg(models_dir)
        .args(["--addr", "127.0.0.1:0", "--shards", "2", "--workers", "2"])
        .arg("--state-dir")
        .arg(&dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn shard fleet");
    // Announce line: `mfcsld router listening on <addr> (2 shards: a, b;
    // pids p0, p1; N models)`.
    let announce = {
        use std::io::BufRead as _;
        let stdout = fleet.stdout.take().expect("fleet stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout).read_line(&mut line).expect("read announce");
        line
    };
    let router_addr = announce
        .strip_prefix("mfcsld router listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("bad announce line: {announce}"))
        .to_string();
    let pids: Vec<u32> = announce
        .split("pids ")
        .nth(1)
        .and_then(|rest| rest.split(';').next())
        .map(|list| list.split(',').filter_map(|p| p.trim().parse().ok()).collect())
        .unwrap_or_default();
    assert_eq!(pids.len(), 2, "announce must carry both shard pids: {announce}");

    // One pinned key per shard (the hash is process-independent, so the
    // client-side prediction matches the router's placement).
    let request_for = |k2: f64| {
        let mut req = virus_request();
        req.params.insert("k2".to_string(), k2);
        req
    };
    let mut per_shard_k2: [Option<f64>; 2] = [None, None];
    for i in 0..256 {
        let k2 = 0.7 + i as f64 * 0.01;
        let mut params = std::collections::BTreeMap::new();
        params.insert("k2".to_string(), k2);
        let slot = route_for(&SessionKey::new("virus", &params, false, None), 2);
        if per_shard_k2[slot].is_none() {
            per_shard_k2[slot] = Some(k2);
        }
        if per_shard_k2.iter().all(Option::is_some) {
            break;
        }
    }
    let k2s = [per_shard_k2[0].expect("shard 0 key"), per_shard_k2[1].expect("shard 1 key")];
    // Warm both shards; the write-behind snapshot is on disk once these
    // return, which is exactly what the SIGKILL is about to test.
    let references: Vec<_> = k2s
        .iter()
        .map(|&k2| client::post_check(&router_addr, &request_for(k2)).expect("warm-up"))
        .collect();

    let victim_pid = pids[0];
    let killed_at = Instant::now();
    let status = std::process::Command::new("kill")
        .args(["-9", &victim_pid.to_string()])
        .status()
        .expect("send SIGKILL");
    assert!(status.success(), "SIGKILL shard pid {victim_pid}");

    // Closed loop over both keys until the killed shard's key serves again
    // (bounded: the supervisor needs ~1 s of detect + backoff + respawn).
    let mut requests = 0usize;
    let mut errors = 0usize;
    let mut survivor_bitwise_equal = true;
    let mut revived: Option<(Duration, u64, bool)> = None;
    while revived.is_none() {
        assert!(
            killed_at.elapsed() < Duration::from_secs(30),
            "supervisor failed to revive the shard within 30 s \
             ({requests} requests, {errors} errors)"
        );
        let t0 = Instant::now();
        requests += 1;
        match client::post_check(&router_addr, &request_for(k2s[0])) {
            Ok(outcome) => {
                revived = Some((
                    killed_at.elapsed(),
                    t0.elapsed().as_micros() as u64,
                    outcome.warm && outcome.verdicts == references[0].verdicts,
                ));
            }
            Err(_) => errors += 1,
        }
        requests += 1;
        match client::post_check(&router_addr, &request_for(k2s[1])) {
            Ok(outcome) => {
                survivor_bitwise_equal &=
                    outcome.warm && outcome.verdicts == references[1].verdicts;
            }
            Err(_) => survivor_bitwise_equal = false,
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let (unavailability, revived_first_request_us, revived_warm) =
        revived.expect("loop exits revived");

    // Restart counter from the aggregated metrics; the revived shard's own
    // solve counter from a direct scrape (its address is in /v1/shards).
    let metrics = client::get_text(&router_addr, "/metrics").expect("metrics");
    let metric = |name: &str| -> f64 {
        metrics
            .lines()
            .find_map(|line| {
                let mut parts = line.split_whitespace();
                (parts.next() == Some(name)).then(|| parts.next())?.and_then(|v| v.parse().ok())
            })
            .unwrap_or(0.0)
    };
    let restarts = metric("mfcsld_router_shard_restarts_total") as u64;
    let shards_json = client::get_text(&router_addr, "/v1/shards").expect("shards");
    let revived_addr = Json::parse(&shards_json)
        .ok()
        .and_then(|v| {
            v.get("shards")?
                .as_arr()?
                .iter()
                .find(|s| s.get("index").and_then(Json::as_f64) == Some(0.0))?
                .get("addr")?
                .as_str()
                .map(str::to_string)
        })
        .expect("revived shard address");
    let revived_metrics = client::get_text(&revived_addr, "/metrics").expect("revived metrics");
    let revived_trajectory_solves = revived_metrics
        .lines()
        .find_map(|line| {
            let mut parts = line.split_whitespace();
            (parts.next() == Some("mfcsld_engine_trajectory_solves_total"))
                .then(|| parts.next())?
                .and_then(|v| v.parse::<f64>().ok())
        })
        .unwrap_or(f64::NAN) as u64;

    client::shutdown(&router_addr).expect("fleet drains");
    let _ = fleet.wait();
    let _ = std::fs::remove_dir_all(&dir);

    ChaosProbe {
        requests,
        errors,
        unavailability_ms: unavailability.as_millis() as u64,
        restarts,
        revived_warm,
        revived_first_request_us,
        revived_trajectory_solves,
        survivor_bitwise_equal,
    }
}

/// Hand-rolled JSON (the workspace's serde is an offline stub without a
/// serializer).
fn render_json(
    workloads: &[ServeWorkload],
    restart: &SnapshotRestart,
    chaos: &ChaosProbe,
    workers: usize,
    smoke: bool,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"serve\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"git_revision\": \"{}\",", git_revision());
    let _ = writeln!(out, "  \"threads_available\": {},", mfcsl_pool::default_parallelism());
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"serving_core\": \"epoll\",");
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, w) in workloads.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(out, "      \"description\": \"{}\",", w.description);
        let _ = writeln!(out, "      \"requests\": {},", w.requests);
        let _ = writeln!(out, "      \"concurrency\": {},", w.concurrency);
        let _ = writeln!(out, "      \"wall_seconds\": {:.6},", w.wall_seconds);
        let _ = writeln!(out, "      \"throughput_rps\": {:.4},", w.throughput_rps());
        let _ = writeln!(out, "      \"samples\": {},", w.latencies_us.len());
        let _ = writeln!(out, "      \"p50_us\": {},", percentile_us(&w.latencies_us, 0.50));
        let _ = writeln!(out, "      \"p95_us\": {},", percentile_us(&w.latencies_us, 0.95));
        let _ = writeln!(out, "      \"p99_us\": {},", percentile_us(&w.latencies_us, 0.99));
        let _ = writeln!(
            out,
            "      \"tail_resolved\": {},",
            tail_resolved(w.latencies_us.len(), 0.99)
        );
        if let Some(connections) = w.connections {
            let _ = writeln!(out, "      \"connections\": {connections},");
        }
        if !w.shards.is_empty() {
            let _ = writeln!(out, "      \"shards\": [");
            for (j, s) in w.shards.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "        {{\"shard\": {}, \"requests\": {}, \"p50_us\": {}, \
                     \"p95_us\": {}, \"p99_us\": {}}}{}",
                    s.shard,
                    s.latencies_us.len(),
                    percentile_us(&s.latencies_us, 0.50),
                    percentile_us(&s.latencies_us, 0.95),
                    percentile_us(&s.latencies_us, 0.99),
                    if j + 1 < w.shards.len() { "," } else { "" }
                );
            }
            let _ = writeln!(out, "      ],");
        }
        let _ = writeln!(out, "      \"bitwise_equal\": {}", w.bitwise_equal);
        let _ = writeln!(out, "    }}{}", if i + 1 < workloads.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"snapshot_restart\": {{");
    let _ = writeln!(out, "    \"warm_p50_us\": {},", restart.warm_p50_us);
    let _ = writeln!(out, "    \"first_request_us\": {},", restart.first_request_us);
    let _ = writeln!(out, "    \"within_5x_warm_p50\": {},", restart.within_5x_warm_p50);
    let _ = writeln!(out, "    \"warm\": {},", restart.warm);
    let _ = writeln!(out, "    \"bitwise_equal\": {}", restart.bitwise_equal);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"chaos\": {{");
    let _ = writeln!(out, "    \"requests\": {},", chaos.requests);
    let _ = writeln!(out, "    \"errors\": {},", chaos.errors);
    let _ = writeln!(out, "    \"unavailability_ms\": {},", chaos.unavailability_ms);
    let _ = writeln!(out, "    \"restarts\": {},", chaos.restarts);
    let _ = writeln!(out, "    \"revived_warm\": {},", chaos.revived_warm);
    let _ = writeln!(out, "    \"revived_first_request_us\": {},", chaos.revived_first_request_us);
    let _ = writeln!(
        out,
        "    \"revived_trajectory_solves\": {},",
        chaos.revived_trajectory_solves
    );
    let _ = writeln!(out, "    \"survivor_bitwise_equal\": {}", chaos.survivor_bitwise_equal);
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}

/// Gates this run against a previous `BENCH_serve.json`: per workload,
/// throughput must hold >= 0.75x the baseline and (when both tails are
/// resolved) p99 must stay <= 1.25x. Comparisons across machines with
/// different core counts are refused outright — their wall-clock numbers
/// are not commensurable.
fn serve_gate(current_json: &str, baseline_json: &str) -> bool {
    let current = Json::parse(current_json).expect("current report parses");
    let baseline = Json::parse(baseline_json).expect("baseline report parses");
    let threads = |v: &Json| v.get("threads_available").and_then(Json::as_f64);
    let (now, then) = (threads(&current), threads(&baseline));
    if now != then {
        println!(
            "serve gate: REFUSED — baseline ran with threads_available={}, this host has {}; \
             cross-core-count comparisons are not commensurable",
            then.unwrap_or(0.0),
            now.unwrap_or(0.0)
        );
        return false;
    }
    let workload_map = |v: &Json| -> Vec<(String, f64, f64, bool)> {
        v.get("workloads")
            .and_then(Json::as_arr)
            .map(|ws| {
                ws.iter()
                    .filter_map(|w| {
                        Some((
                            w.get("name")?.as_str()?.to_string(),
                            w.get("throughput_rps")?.as_f64()?,
                            w.get("p99_us")?.as_f64()?,
                            w.get("tail_resolved").and_then(Json::as_bool).unwrap_or(true),
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let current_ws = workload_map(&current);
    let mut ok = true;
    for (name, base_rps, base_p99, base_tail) in workload_map(&baseline) {
        let Some((_, rps, p99, tail)) = current_ws.iter().find(|(n, ..)| *n == name) else {
            println!("serve gate {name}: SKIP (workload absent from this run)");
            continue;
        };
        let rps_ratio = rps / base_rps;
        let p99_ratio = p99 / base_p99;
        let compare_tail = base_tail && *tail;
        let pass = rps_ratio >= 0.75 && (!compare_tail || p99_ratio <= 1.25);
        println!(
            "serve gate {name}: {} (rps {rps_ratio:.2}x, p99 {p99_ratio:.2}x{})",
            if pass { "PASS" } else { "FAIL" },
            if compare_tail { "" } else { ", tail unresolved — p99 not gated" }
        );
        ok &= pass;
    }
    ok
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// checkout.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}
