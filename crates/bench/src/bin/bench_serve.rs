//! Load benchmark of the `mfcsld` serving layer: writes
//! `BENCH_serve.json` at the repo root.
//!
//! Two workloads against an in-process daemon on an ephemeral port:
//!
//! * **cold** — sequential requests that each carry a distinct parameter
//!   override, so every one misses the session store and pays the full
//!   session build (model instantiation + mean-field solve). This is the
//!   worst-case per-request latency.
//! * **warm** — a closed-loop fleet of concurrent clients hammering one
//!   `(model, params, tolerances)` session key. After the first request
//!   the session is warm: every verdict is served from the shared
//!   memoized `CheckSession`, and the report asserts all responses are
//!   bitwise identical to the first.
//!
//! Each workload records throughput and the p50/p95/p99 of the
//! client-observed request latency. The report is stamped with the git
//! revision and the machine's available parallelism (PR-3 conventions;
//! like the other reports, wall-clock from different hosts is not
//! commensurable).
//!
//! Usage: `cargo run --release -p mfcsl-bench --bin bench_serve --
//! [--smoke] [--out <path>] [--models <dir>]`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use mfcsl_serve::{client, CheckRequest, ModelRegistry, Server, ServerConfig};

struct ServeWorkload {
    name: &'static str,
    description: String,
    requests: usize,
    concurrency: usize,
    wall_seconds: f64,
    /// Sorted client-observed latencies in microseconds.
    latencies_us: Vec<u64>,
    bitwise_equal: bool,
}

impl ServeWorkload {
    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.wall_seconds
    }

    /// Nearest-rank percentile of the sorted latency list.
    fn percentile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = (q * self.latencies_us.len() as f64).ceil() as usize;
        self.latencies_us[rank.clamp(1, self.latencies_us.len()) - 1]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let models_dir = flag("--models").map(PathBuf::from).unwrap_or_else(default_models_dir);

    let registry = ModelRegistry::load(std::slice::from_ref(&models_dir)).expect("models load");
    let workers = mfcsl_pool::default_parallelism().max(2);
    let server = Server::bind(
        registry,
        ServerConfig {
            workers,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("daemon binds");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    let (cold_n, fleet, per_client) = if smoke { (3, 4, 5) } else { (12, 8, 25) };
    let workloads = vec![
        cold_workload(&addr, cold_n),
        warm_workload(&addr, fleet, per_client),
    ];

    client::shutdown(&addr).expect("daemon drains");
    daemon.join().expect("daemon thread").expect("daemon exits cleanly");

    let json = render_json(&workloads, workers, smoke);
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!("report written to {out_path}");
    for w in &workloads {
        println!(
            "{:<6} requests={:<4} concurrency={}  wall={:.4}s  rps={:.1}  \
             p50={}us p95={}us p99={}us  bitwise_equal={}",
            w.name,
            w.requests,
            w.concurrency,
            w.wall_seconds,
            w.throughput_rps(),
            w.percentile_us(0.50),
            w.percentile_us(0.95),
            w.percentile_us(0.99),
            w.bitwise_equal
        );
    }
}

/// `modelfiles/` under the working directory if it exists (running from
/// the repo root), otherwise resolved from this crate's source location.
fn default_models_dir() -> PathBuf {
    let cwd = PathBuf::from("modelfiles");
    if cwd.is_dir() {
        cwd
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../modelfiles")
    }
}

/// The request batch every workload checks: the paper's virus model under
/// a mixed batch of formula kinds (time-bounded path, expectation,
/// steady-state).
fn virus_request() -> CheckRequest {
    CheckRequest::new(
        "virus",
        &[0.8, 0.15, 0.05],
        &[
            "EP{<0.3}[ not_infected U[0,1] infected ]".to_string(),
            "E{<0.3}[ infected ]".to_string(),
            "ES{>0.1}[ infected ]".to_string(),
        ],
    )
}

/// Sequential requests, each with a unique `k2` override: a forced session
/// miss per request.
fn cold_workload(addr: &str, n: usize) -> ServeWorkload {
    let mut latencies_us = Vec::with_capacity(n);
    let start = Instant::now();
    for i in 0..n {
        let mut req = virus_request();
        // Perturb a rate parameter just enough to change the session key.
        req.params.insert("k2".to_string(), 0.1 + (i + 1) as f64 * 1e-6);
        let t0 = Instant::now();
        let outcome = client::post_check(addr, &req).expect("cold request");
        latencies_us.push(t0.elapsed().as_micros() as u64);
        assert!(!outcome.warm, "override {i} unexpectedly hit a warm session");
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    latencies_us.sort_unstable();
    ServeWorkload {
        name: "cold",
        description: format!(
            "{n} sequential checks of a 3-formula batch on the virus model, each with a \
             distinct k2 override forcing a fresh session (full model build + mean-field solve)"
        ),
        requests: n,
        concurrency: 1,
        wall_seconds,
        latencies_us,
        bitwise_equal: true,
    }
}

/// A closed-loop fleet on one session key; all responses must be bitwise
/// identical to the warm-up reference.
fn warm_workload(addr: &str, fleet: usize, per_client: usize) -> ServeWorkload {
    let reference = client::post_check(addr, &virus_request()).expect("warm-up request");
    let start = Instant::now();
    let handles: Vec<_> = (0..fleet)
        .map(|_| {
            let addr = addr.to_string();
            let reference = reference.verdicts.clone();
            std::thread::spawn(move || {
                let mut lats = Vec::with_capacity(per_client);
                let mut identical = true;
                for _ in 0..per_client {
                    let t0 = Instant::now();
                    let outcome = client::post_check(&addr, &virus_request()).expect("warm request");
                    lats.push(t0.elapsed().as_micros() as u64);
                    identical &= outcome.warm && outcome.verdicts == reference;
                }
                (lats, identical)
            })
        })
        .collect();
    let mut latencies_us = Vec::with_capacity(fleet * per_client);
    let mut bitwise_equal = true;
    for h in handles {
        let (lats, identical) = h.join().expect("client thread");
        latencies_us.extend(lats);
        bitwise_equal &= identical;
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    latencies_us.sort_unstable();
    ServeWorkload {
        name: "warm",
        description: format!(
            "{fleet} concurrent closed-loop clients x {per_client} checks of the same \
             3-formula virus batch on one session key, all served from the shared warm session"
        ),
        requests: fleet * per_client,
        concurrency: fleet,
        wall_seconds,
        latencies_us,
        bitwise_equal,
    }
}

/// Hand-rolled JSON (the workspace's serde is an offline stub without a
/// serializer).
fn render_json(workloads: &[ServeWorkload], workers: usize, smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"serve\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"git_revision\": \"{}\",", git_revision());
    let _ = writeln!(out, "  \"threads_available\": {},", mfcsl_pool::default_parallelism());
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, w) in workloads.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(out, "      \"description\": \"{}\",", w.description);
        let _ = writeln!(out, "      \"requests\": {},", w.requests);
        let _ = writeln!(out, "      \"concurrency\": {},", w.concurrency);
        let _ = writeln!(out, "      \"wall_seconds\": {:.6},", w.wall_seconds);
        let _ = writeln!(out, "      \"throughput_rps\": {:.4},", w.throughput_rps());
        let _ = writeln!(out, "      \"p50_us\": {},", w.percentile_us(0.50));
        let _ = writeln!(out, "      \"p95_us\": {},", w.percentile_us(0.95));
        let _ = writeln!(out, "      \"p99_us\": {},", w.percentile_us(0.99));
        let _ = writeln!(out, "      \"bitwise_equal\": {}", w.bitwise_equal);
        let _ = writeln!(out, "    }}{}", if i + 1 < workloads.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// checkout.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}
