//! Regenerates the paper's second Section-VI worked example (DESIGN.md id
//! "Sec. VI ex. 2"): the Setting-2 nested formula with a time-varying goal
//! set, including the discontinuity points, the reachability
//! probabilities, and the final verdicts.
//!
//! Run with `cargo run --release -p mfcsl-bench --bin example_nested`.

use mfcsl_bench::compare_line;
use mfcsl_core::meanfield;
use mfcsl_core::mfcsl::{parse_formula, Checker};
use mfcsl_csl::checker::InhomogeneousChecker;
use mfcsl_csl::{parse_path_formula, parse_state_formula, Tolerances};
use mfcsl_models::virus;

fn main() {
    let m0 = virus::example_occupancy_2().expect("paper occupancy");
    let s2 = virus::setting_2();
    for (tag, params) in [
        ("Table II Setting 2 (as printed)", s2),
        (
            "Setting 2, k2 ↔ k3 swapped",
            virus::Params {
                k2: s2.k3,
                k3: s2.k2,
                ..s2
            },
        ),
    ] {
        println!("══ {tag} ══");
        let model = virus::model(params, virus::InfectionLaw::SmartVirus).expect("valid params");
        let tol = Tolerances::default();
        let sol = meanfield::solve(&model, &m0, 16.0, &tol.ode).expect("solves");
        let tv = sol.local_tv_model().expect("valid model");
        let csl = InhomogeneousChecker::with_tolerances(&tv, tol);

        // Inner formula Φ₁ and its time-dependent satisfaction set.
        let phi1 = parse_state_formula("P{>0.8}[ tt U[0,0.5] infected ]").expect("parses");
        let sat = csl.sat_over_time(&phi1, 15.0).expect("evaluates");
        let boundaries = if sat.boundaries().is_empty() {
            "none in [0, 15]".to_string()
        } else {
            sat.boundaries()
                .iter()
                .map(|t| format!("{t:.4}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "{}",
            compare_line("discontinuity of Sat(Φ₁, m̄, t)", "10.443", &boundaries)
        );
        println!(
            "Sat(Φ₁) at t = 0 : {:?}  (paper: {{s2, s3}})",
            sat.set_at(0.0)
        );
        println!("Sat(Φ₁) at t = 15: {:?}", sat.set_at(15.0));

        // The outer until probabilities (paper: 0, 1, 1).
        let outer =
            parse_path_formula("infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ]").expect("parses");
        let probs = csl.path_probabilities(&outer).expect("evaluates");
        println!(
            "{}",
            compare_line(
                "Prob(s, infected U[0,15] Φ₁, m̄) per state",
                "(0, 1, 1)",
                &format!("({:.4}, {:.4}, {:.4})", probs[0], probs[1], probs[2]),
            )
        );

        // MF-CSL verdicts.
        let checker = Checker::with_tolerances(&model, Tolerances::default());
        let psi1 =
            parse_formula("E{>0.8}[ P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ] ]")
                .expect("parses");
        let psi2 = parse_formula("E{<0.1}[ active ]").expect("parses");
        let v1 = checker.check(&psi1, &m0).expect("checks");
        let v2 = checker.check(&psi2, &m0).expect("checks");
        let both = checker
            .check(&psi1.clone().and(psi2.clone()), &m0)
            .expect("checks");
        println!(
            "{}",
            compare_line(
                "m̄ ⊨ Ψ₁",
                "fails (0.15 ≯ 0.8)",
                if v1.holds() { "holds" } else { "fails" }
            )
        );
        println!(
            "{}",
            compare_line(
                "m̄ ⊨ E{<0.1}[active]",
                "holds",
                if v2.holds() { "holds" } else { "fails" }
            )
        );
        println!(
            "{}\n",
            compare_line(
                "m̄ ⊨ Ψ₁ ∧ Ψ₂",
                "fails",
                if both.holds() { "holds" } else { "fails" },
            )
        );
    }
}
