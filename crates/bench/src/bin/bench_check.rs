//! Scalability benchmark of the parallel checking runtime: writes
//! `BENCH_check.json` at the repo root.
//!
//! Three workloads, each timed at 1, 2, 4, and 8 pool threads with the
//! speedup relative to the 1-thread run:
//!
//! * **fig3** — the Figure 3 checking batch: several MF-CSL formulas on
//!   the virus model checked through one [`CheckSession`], fanning the
//!   per-formula checks out over the pool.
//! * **table2** — a CSat sweep over a grid of initial occupancies on
//!   Setting 2 (the per-initial-state analysis behind satisfaction
//!   regions), one pool task per occupancy.
//! * **scalability** — the transient solution of the exact lumped
//!   overall CTMC (`C(N+2, 2)` states) via column-blocked uniformization,
//!   the large-matrix workload the pool was built for.
//!
//! Every parallel run is compared against the serial result and must be
//! bitwise identical; the JSON records the outcome. Wall-clock speedup
//! requires a multicore host — the report includes the machine's
//! available parallelism so a 1-core CI box is not mistaken for a
//! scaling regression.
//!
//! Usage: `cargo run --release -p mfcsl-bench --bin bench_check --
//! [--smoke] [--out <path>]`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use mfcsl_core::mfcsl::{parse_formula, CheckSession};
use mfcsl_core::Occupancy;
use mfcsl_models::virus;
use mfcsl_pool::ThreadPool;
use mfcsl_sim::{lumped, ssa};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct WorkloadReport {
    name: &'static str,
    description: String,
    /// `(threads, wall_seconds, bitwise_equal_to_serial)` per run.
    runs: Vec<(usize, f64, bool)>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_check.json".to_string());

    let reports = vec![fig3_workload(smoke), table2_workload(smoke), scalability_workload(smoke)];

    let json = render_json(&reports, smoke);
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!("report written to {out_path}");
    for r in &reports {
        let base = r.runs[0].1;
        for (threads, wall, bitwise) in &r.runs {
            println!(
                "{:<12} threads={threads}  wall={wall:.4}s  speedup={:.2}x  bitwise_equal={bitwise}",
                r.name,
                base / wall
            );
        }
    }
}

/// The Figure 3 checking batch: distinct formulas with distinct horizons,
/// fanned out per formula.
fn fig3_workload(smoke: bool) -> WorkloadReport {
    let model =
        virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus).expect("valid params");
    let m0 = virus::example_occupancy().expect("paper occupancy");
    let texts: Vec<String> = if smoke {
        vec![
            "EP{<0.3}[ not_infected U[0,1] infected ]".to_string(),
            "E{>0.05}[ infected ]".to_string(),
        ]
    } else {
        (0..8)
            .map(|i| {
                format!(
                    "EP{{<0.3}}[ not_infected U[0,{}] infected ]",
                    1.0 + 0.5 * f64::from(i)
                )
            })
            .collect()
    };
    let psis: Vec<_> = texts.iter().map(|t| parse_formula(t).expect("parses")).collect();

    let serial_session = CheckSession::new(&model);
    let serial = serial_session.check_all(&psis, &m0).expect("checks");

    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = Arc::new(ThreadPool::new(threads));
        let session = CheckSession::new(&model).with_pool(pool);
        let start = Instant::now();
        let verdicts = session.check_all(&psis, &m0).expect("checks");
        let wall = start.elapsed().as_secs_f64();
        runs.push((threads, wall, verdicts == serial));
    }
    WorkloadReport {
        name: "fig3",
        description: format!(
            "check_all of {} Figure-3-style formulas on the virus model (Setting 1), \
             one pool task per formula",
            psis.len()
        ),
        runs,
    }
}

/// A CSat sweep over a grid of initial occupancies, fanned out per
/// occupancy.
fn table2_workload(smoke: bool) -> WorkloadReport {
    let model =
        virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).expect("valid params");
    let psi = parse_formula("E{<0.4}[ infected ]").expect("parses");
    let grid = if smoke { 3 } else { 12 };
    let m0s: Vec<Occupancy> = (1..=grid)
        .map(|i| {
            let infected = 0.5 * f64::from(i) / f64::from(grid);
            Occupancy::new(vec![1.0 - infected, infected / 2.0, infected / 2.0]).expect("valid")
        })
        .collect();
    let theta = if smoke { 5.0 } else { 15.0 };

    let serial_session = CheckSession::new(&model);
    let serial = serial_session.csat_sweep(&psi, &m0s, theta).expect("sweeps");
    let serial_bits = interval_bits(&serial);

    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = Arc::new(ThreadPool::new(threads));
        let session = CheckSession::new(&model).with_pool(pool);
        let start = Instant::now();
        let sets = session.csat_sweep(&psi, &m0s, theta).expect("sweeps");
        let wall = start.elapsed().as_secs_f64();
        runs.push((threads, wall, interval_bits(&sets) == serial_bits));
    }
    WorkloadReport {
        name: "table2",
        description: format!(
            "cSat sweep of E{{<0.4}}[infected] over {} initial occupancies on Setting 2, \
             one pool task per occupancy",
            m0s.len()
        ),
        runs,
    }
}

fn interval_bits(sets: &[mfcsl_math::IntervalSet]) -> Vec<u64> {
    sets.iter()
        .flat_map(|s| {
            s.intervals()
                .iter()
                .flat_map(|i| [i.lo().value.to_bits(), i.hi().value.to_bits()])
        })
        .collect()
}

/// The exact lumped overall CTMC: `C(N+2, 2)` states solved by
/// column-blocked uniformization on the sparse backend.
fn scalability_workload(smoke: bool) -> WorkloadReport {
    let model =
        virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).expect("valid params");
    let m0 = Occupancy::new(vec![0.8, 0.1, 0.1]).expect("valid");
    let n = if smoke { 60 } else { 320 };
    let t = 2.0;
    let chain = lumped::build_sparse(&model, n, 600_000).expect("builds");
    let c0 = ssa::counts_from_occupancy(&m0, n).expect("counts");

    let serial = chain.expected_occupancy(&c0, t, 1e-10).expect("transient");
    let serial_bits: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();

    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let start = Instant::now();
        let e = chain
            .expected_occupancy_on(Some(&pool), &c0, t, 1e-10)
            .expect("transient");
        let wall = start.elapsed().as_secs_f64();
        let bits: Vec<u64> = e.iter().map(|x| x.to_bits()).collect();
        runs.push((threads, wall, bits == serial_bits));
    }
    WorkloadReport {
        name: "scalability",
        description: format!(
            "transient solution of the lumped overall CTMC for N = {n} \
             ({} states, sparse backend, column-blocked uniformization)",
            lumped::n_lumped_states(n, 3)
        ),
        runs,
    }
}

/// Hand-rolled JSON (the workspace's serde is an offline stub without a
/// serializer).
fn render_json(reports: &[WorkloadReport], smoke: bool) -> String {
    let threads_available = mfcsl_pool::default_parallelism();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"check\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"threads_available\": {threads_available},");
    if threads_available < 2 {
        let _ = writeln!(
            out,
            "  \"note\": \"host exposes a single core: wall-clock speedup over the \
             1-thread run is not attainable on this machine; rerun on a multicore \
             host to measure scaling\","
        );
    }
    let _ = writeln!(out, "  \"workloads\": [");
    for (wi, r) in reports.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"description\": \"{}\",", r.description);
        let _ = writeln!(out, "      \"results\": [");
        let base = r.runs[0].1;
        for (i, (threads, wall, bitwise)) in r.runs.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"threads\": {threads}, \"wall_seconds\": {wall:.6}, \
                 \"speedup_vs_1\": {:.4}, \"bitwise_equal_to_serial\": {bitwise}}}{}",
                base / wall,
                if i + 1 < r.runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if wi + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}
