//! Scalability benchmark of the parallel checking runtime: writes
//! `BENCH_check.json` at the repo root.
//!
//! Four workloads, each timed at 1, 2, 4, and 8 pool threads with the
//! speedup relative to the 1-thread run:
//!
//! * **fig3** — the Figure 3 checking batch: several MF-CSL formulas on
//!   the virus model checked through one [`CheckSession`], fanning the
//!   per-formula checks out over the pool.
//! * **table2** — a CSat sweep over a grid of initial occupancies on
//!   Setting 2 (the per-initial-state analysis behind satisfaction
//!   regions), one pool task per occupancy.
//! * **scalability** — the transient solution of the exact lumped
//!   overall CTMC (`C(N+2, 2)` states) via column-blocked uniformization,
//!   the large-matrix workload the pool was built for.
//! * **sim** — the statistical lane: one SMC batch of SSA replications
//!   fanned out over the replication runner's threads, whose seeding makes
//!   every thread count bitwise identical to the serial run.
//!
//! Every parallel run is compared against the serial result and must be
//! bitwise identical; the JSON records the outcome. Wall-clock speedup
//! requires a multicore host — the report includes the machine's
//! available parallelism so a 1-core CI box is not mistaken for a
//! scaling regression.
//!
//! A fourth, serial **solver** workload times the individual hot-loop
//! kernels (mean-field solve, Eq. 5 matrix transient, Eq. 6 window
//! propagation with and without the steady-regime uniformization hand-off)
//! and — via the counting allocator installed in this binary — their
//! allocation counts and peak heap growth. It also times the large-`K`
//! sparse lane on the bounded-queue model (`K ∈ {64, 256}` in smoke mode,
//! plus `K = 1024` in full runs): GMRES steady state and the vector-path
//! until, whose `peak_bytes` must stay below one dense `K × K` matrix.
//! It writes a separate `BENCH_solver.json` so the schema of
//! `BENCH_check.json` stays stable for downstream comparisons.
//!
//! The solver workload also times the **batched SoA sweep** kernels
//! (`batch_sweep_perlane`, `batch_sweep_shared`): the same occupancy grid
//! propagated by one Dopri5 drive over a K × B structure-of-arrays state.
//! Their `rhs_evals` is the drive's `batch_rhs_calls` — the number of
//! batched kernel invocations — and the JSON additionally records
//! `batch_width`, `detached`, `restarts`, and the per-lane
//! accepted/rejected/rhs-eval tallies.
//!
//! Both reports are stamped with the git revision and the machine's
//! available parallelism. `--baseline <path>` compares the serial
//! (1-thread) wall-clock of each workload against a previous
//! `BENCH_check.json` and exits non-zero on a >25 % slowdown;
//! `--solver-baseline <path>` does the same for the solver kernels against
//! a previous `BENCH_solver.json`, gating on wall-clock AND RHS-evaluation
//! counts (evals are deterministic, so they get the tolerance but no noise
//! floor). Either comparison is refused (not failed) when the baseline was
//! taken on a host with a different core count or in a different smoke
//! mode, because such timings are not commensurable.
//!
//! Usage: `cargo run --release -p mfcsl-bench --bin bench_check --
//! [--smoke] [--out <path>] [--solver-out <path>] [--baseline <path>]
//! [--solver-baseline <path>]`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use mfcsl_core::meanfield;
use mfcsl_core::mfcsl::{parse_formula, CheckSession};
use mfcsl_core::Occupancy;
use mfcsl_ctmc::inhomogeneous::{
    propagate_window, propagate_window_from, transition_matrix, transition_matrix_trajectory,
    ConstantTail, FnGenerator,
};
use mfcsl_math::{alloc_counter, Matrix};
use mfcsl_models::virus;
use mfcsl_ode::{BatchMode, OdeOptions, SolverWorkspace};
use mfcsl_pool::ThreadPool;
use mfcsl_sim::{lumped, ssa};

/// Counts every allocation the workloads make, so the solver report can
/// show the hot loops run allocation-free (see `mfcsl_math::alloc_counter`).
#[global_allocator]
static GLOBAL: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Slowdown tolerance of the `--baseline` regression gate.
const GATE_TOLERANCE: f64 = 1.25;

/// Walls below this are scheduler noise, not signal: a workload whose
/// serial run finishes this fast (both now and in the baseline) passes the
/// gate unconditionally. Smoke-mode runs sit entirely below the floor, so
/// the gate's pass/fail verdict only ever comes from full-size runs.
const GATE_NOISE_FLOOR: f64 = 0.05;

struct WorkloadReport {
    name: &'static str,
    description: String,
    /// `(threads, wall_seconds, bitwise_equal_to_serial)` per run.
    runs: Vec<(usize, f64, bool)>,
}

/// One timed hot-loop kernel of the solver workload.
struct KernelReport {
    name: String,
    description: String,
    wall_seconds: f64,
    rhs_evals: usize,
    accepted_steps: usize,
    allocations: u64,
    peak_bytes: u64,
    /// Present for the `batch_sweep_*` kernels: drive counters and the
    /// per-lane controller tallies of the batched solve.
    batch: Option<BatchDetail>,
}

/// Drive-level counters of one batched kernel.
struct BatchDetail {
    width: usize,
    detached: usize,
    restarts: usize,
    /// `(lane, accepted, rejected, rhs_evals)` per lane, in input order.
    lanes: Vec<(usize, usize, usize, usize)>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_check.json".to_string());
    let solver_out_path = flag("--solver-out").unwrap_or_else(|| "BENCH_solver.json".to_string());
    let baseline_path = flag("--baseline");
    let solver_baseline_path = flag("--solver-baseline");

    let reports = vec![
        fig3_workload(smoke),
        table2_workload(smoke),
        scalability_workload(smoke),
        sim_workload(smoke),
    ];

    let json = render_json(&reports, smoke);
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!("report written to {out_path}");
    for r in &reports {
        let base = r.runs[0].1;
        for (threads, wall, bitwise) in &r.runs {
            println!(
                "{:<12} threads={threads}  wall={wall:.4}s  speedup={:.2}x  bitwise_equal={bitwise}",
                r.name,
                base / wall
            );
        }
    }

    let kernels = solver_workload(smoke);
    let solver_json = render_solver_json(&kernels, smoke);
    std::fs::write(&solver_out_path, solver_json).expect("write solver report");
    println!("solver report written to {solver_out_path}");
    for k in &kernels {
        println!(
            "{:<22} wall={:.4}s  rhs_evals={}  steps={}  allocs={}  peak_bytes={}",
            k.name, k.wall_seconds, k.rhs_evals, k.accepted_steps, k.allocations, k.peak_bytes
        );
    }

    let mut code = 0;
    if let Some(path) = baseline_path {
        code |= regression_gate(&path, &reports, smoke);
    }
    if let Some(path) = solver_baseline_path {
        code |= solver_regression_gate(&path, &kernels, smoke);
    }
    if code != 0 {
        std::process::exit(code);
    }
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// checkout.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The Figure 3 checking batch: distinct formulas with distinct horizons,
/// fanned out per formula.
fn fig3_workload(smoke: bool) -> WorkloadReport {
    let model =
        virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus).expect("valid params");
    let m0 = virus::example_occupancy().expect("paper occupancy");
    let texts: Vec<String> = if smoke {
        vec![
            "EP{<0.3}[ not_infected U[0,1] infected ]".to_string(),
            "E{>0.05}[ infected ]".to_string(),
        ]
    } else {
        (0..8)
            .map(|i| {
                format!(
                    "EP{{<0.3}}[ not_infected U[0,{}] infected ]",
                    1.0 + 0.5 * f64::from(i)
                )
            })
            .collect()
    };
    let psis: Vec<_> = texts.iter().map(|t| parse_formula(t).expect("parses")).collect();

    let serial_session = CheckSession::new(&model);
    let serial = serial_session.check_all(&psis, &m0).expect("checks");

    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = Arc::new(ThreadPool::new(threads));
        let session = CheckSession::new(&model).with_pool(pool);
        let start = Instant::now();
        let verdicts = session.check_all(&psis, &m0).expect("checks");
        let wall = start.elapsed().as_secs_f64();
        runs.push((threads, wall, verdicts == serial));
    }
    WorkloadReport {
        name: "fig3",
        description: format!(
            "check_all of {} Figure-3-style formulas on the virus model (Setting 1), \
             one pool task per formula",
            psis.len()
        ),
        runs,
    }
}

/// A CSat sweep over a grid of initial occupancies, fanned out per
/// occupancy.
fn table2_workload(smoke: bool) -> WorkloadReport {
    let model =
        virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).expect("valid params");
    let psi = parse_formula("E{<0.4}[ infected ]").expect("parses");
    let grid = if smoke { 3 } else { 12 };
    let m0s: Vec<Occupancy> = (1..=grid)
        .map(|i| {
            let infected = 0.5 * f64::from(i) / f64::from(grid);
            Occupancy::new(vec![1.0 - infected, infected / 2.0, infected / 2.0]).expect("valid")
        })
        .collect();
    let theta = if smoke { 5.0 } else { 15.0 };

    let serial_session = CheckSession::new(&model);
    let serial = serial_session.csat_sweep(&psi, &m0s, theta).expect("sweeps");
    let serial_bits = interval_bits(&serial);

    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = Arc::new(ThreadPool::new(threads));
        let session = CheckSession::new(&model).with_pool(pool);
        let start = Instant::now();
        let sets = session.csat_sweep(&psi, &m0s, theta).expect("sweeps");
        let wall = start.elapsed().as_secs_f64();
        runs.push((threads, wall, interval_bits(&sets) == serial_bits));
    }
    WorkloadReport {
        name: "table2",
        description: format!(
            "cSat sweep of E{{<0.4}}[infected] over {} initial occupancies on Setting 2, \
             one pool task per occupancy",
            m0s.len()
        ),
        runs,
    }
}

fn interval_bits(sets: &[mfcsl_math::IntervalSet]) -> Vec<u64> {
    sets.iter()
        .flat_map(|s| {
            s.intervals()
                .iter()
                .flat_map(|i| [i.lo().value.to_bits(), i.hi().value.to_bits()])
        })
        .collect()
}

/// The statistical lane: one SMC batch of SSA replications fanned out over
/// the replication runner's thread pool. Seeds are a pure function of
/// `(base seed, replication index)`, so every thread count must reproduce
/// the serial estimates bit for bit — the bitwise column checks it.
fn sim_workload(smoke: bool) -> WorkloadReport {
    let model =
        virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus).expect("valid params");
    let m0 = virus::example_occupancy().expect("paper occupancy");
    let psi = parse_formula("EP{>0}[ tt U[0,2] infected ]").expect("parses");
    let (population, replications) = if smoke { (100, 100) } else { (1000, 400) };

    let estimate_bits = |v: &mfcsl_smc::SmcVerdict| -> Vec<u64> {
        v.operators
            .iter()
            .flat_map(|op| {
                [
                    op.estimate.mean.to_bits(),
                    op.estimate.lo.to_bits(),
                    op.estimate.hi.to_bits(),
                ]
            })
            .collect()
    };
    let run = |threads: usize| {
        let mut options = mfcsl_smc::SmcOptions::new(population);
        options.replications = replications;
        options.seed = 42;
        options.threads = threads;
        let session = mfcsl_smc::SmcSession::new(&model, options).expect("valid options");
        let start = Instant::now();
        let verdict = session.check(&psi, &m0).expect("simulates");
        (start.elapsed().as_secs_f64(), estimate_bits(&verdict))
    };
    let (_, serial_bits) = run(1);

    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let (wall, bits) = run(threads);
        runs.push((threads, wall, bits == serial_bits));
    }
    WorkloadReport {
        name: "sim",
        description: format!(
            "SMC estimate of EP{{>0}}[ tt U[0,2] infected ] on the virus model (Setting 1) \
             at N = {population}, {replications} SSA replications fanned out per thread"
        ),
        runs,
    }
}

/// The exact lumped overall CTMC: `C(N+2, 2)` states solved by
/// column-blocked uniformization on the sparse backend.
fn scalability_workload(smoke: bool) -> WorkloadReport {
    let model =
        virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).expect("valid params");
    let m0 = Occupancy::new(vec![0.8, 0.1, 0.1]).expect("valid");
    let n = if smoke { 60 } else { 320 };
    let t = 2.0;
    let chain = lumped::build_sparse(&model, n, 600_000).expect("builds");
    let c0 = ssa::counts_from_occupancy(&m0, n).expect("counts");

    let serial = chain.expected_occupancy(&c0, t, 1e-10).expect("transient");
    let serial_bits: Vec<u64> = serial.iter().map(|x| x.to_bits()).collect();

    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let start = Instant::now();
        let e = chain
            .expected_occupancy_on(Some(&pool), &c0, t, 1e-10)
            .expect("transient");
        let wall = start.elapsed().as_secs_f64();
        let bits: Vec<u64> = e.iter().map(|x| x.to_bits()).collect();
        runs.push((threads, wall, bits == serial_bits));
    }
    WorkloadReport {
        name: "scalability",
        description: format!(
            "transient solution of the lumped overall CTMC for N = {n} \
             ({} states, sparse backend, column-blocked uniformization)",
            lumped::n_lumped_states(n, 3)
        ),
        runs,
    }
}

/// Hand-rolled JSON (the workspace's serde is an offline stub without a
/// serializer).
fn render_json(reports: &[WorkloadReport], smoke: bool) -> String {
    let threads_available = mfcsl_pool::default_parallelism();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"check\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"git_revision\": \"{}\",", git_revision());
    let _ = writeln!(out, "  \"threads_available\": {threads_available},");
    if threads_available < 2 {
        let _ = writeln!(
            out,
            "  \"note\": \"host exposes a single core: wall-clock speedup over the \
             1-thread run is not attainable on this machine; rerun on a multicore \
             host to measure scaling\","
        );
    }
    let _ = writeln!(out, "  \"workloads\": [");
    for (wi, r) in reports.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"description\": \"{}\",", r.description);
        let _ = writeln!(out, "      \"results\": [");
        let base = r.runs[0].1;
        for (i, (threads, wall, bitwise)) in r.runs.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"threads\": {threads}, \"wall_seconds\": {wall:.6}, \
                 \"speedup_vs_1\": {:.4}, \"bitwise_equal_to_serial\": {bitwise}}}{}",
                base / wall,
                if i + 1 < r.runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if wi + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Runs `f` inside an allocation-counter bracket and a wall-clock timer.
/// `f` returns the `(rhs_evals, accepted_steps)` counters reported by the
/// solver statistics of whatever it integrated.
fn timed_kernel(
    name: impl Into<String>,
    description: String,
    f: impl FnOnce() -> (usize, usize),
) -> KernelReport {
    let base = alloc_counter::begin();
    let start = Instant::now();
    let (rhs_evals, accepted_steps) = f();
    let wall_seconds = start.elapsed().as_secs_f64();
    let d = alloc_counter::delta(base);
    KernelReport {
        name: name.into(),
        description,
        wall_seconds,
        rhs_evals,
        accepted_steps,
        allocations: d.allocations,
        peak_bytes: d.peak_bytes,
        batch: None,
    }
}

/// [`timed_kernel`] for the batched kernels: `f` additionally returns the
/// drive counters and per-lane tallies recorded in the report.
fn timed_batch_kernel(
    name: impl Into<String>,
    description: String,
    f: impl FnOnce() -> ((usize, usize), BatchDetail),
) -> KernelReport {
    let mut detail = None;
    let mut report = timed_kernel(name, description, || {
        let (counters, d) = f();
        detail = Some(d);
        counters
    });
    report.batch = detail;
    report
}

/// The serial per-kernel workload behind `BENCH_solver.json`: the hot
/// loops every verdict bottoms out in, timed one by one with RHS-eval and
/// allocation counts.
fn solver_workload(smoke: bool) -> Vec<KernelReport> {
    let model =
        virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).expect("valid params");
    let grid = if smoke { 3 } else { 12 };
    let theta = if smoke { 5.0 } else { 15.0 };
    let m0s: Vec<Occupancy> = (1..=grid)
        .map(|i| {
            let infected = 0.5 * f64::from(i) / f64::from(grid);
            Occupancy::new(vec![1.0 - infected, infected / 2.0, infected / 2.0]).expect("valid")
        })
        .collect();
    let opts = OdeOptions::default();
    let stats_of = |t: &mfcsl_ode::Trajectory| (t.stats().rhs_evals, t.stats().accepted);

    // Warm-up outside the measured sections: faults in code pages and the
    // allocator's own arenas so the first kernel is not charged for them.
    let _ = meanfield::solve(&model, &m0s[0], 1.0, &opts).expect("solves");

    let mut kernels = Vec::new();

    kernels.push(timed_kernel(
        "meanfield_fresh",
        format!(
            "mean-field solve (Eq. 1) of Setting 2 over {grid} initial occupancies to \
             theta = {theta}, fresh solver workspace per solve"
        ),
        || {
            m0s.iter().fold((0, 0), |(rhs, acc), m0| {
                let sol = meanfield::solve(&model, m0, theta, &opts).expect("solves");
                let s = sol.trajectory().stats();
                (rhs + s.rhs_evals, acc + s.accepted)
            })
        },
    ));

    kernels.push(timed_kernel(
        "meanfield_workspace",
        "the same sweep through one shared SolverWorkspace: stage buffers k1..k7 and the \
         step arena are allocated once and reused across all solves"
            .to_string(),
        || {
            let mut ws = SolverWorkspace::new();
            m0s.iter().fold((0, 0), |(rhs, acc), m0| {
                let sol = meanfield::solve_with(&model, m0, theta, &opts, &mut ws).expect("solves");
                let s = sol.trajectory().stats();
                (rhs + s.rhs_evals, acc + s.accepted)
            })
        },
    ));

    // The same sweep as one structure-of-arrays batch: all occupancies ride
    // one Dopri5 drive. `rhs_evals` here is `batch_rhs_calls` — the number
    // of K×B kernel invocations that propagated the whole sweep, the
    // batched analogue of the scalar counter and the number the verify
    // budget compares against a single scalar solve.
    for (mode, mode_name, mode_desc) in [
        (
            BatchMode::PerLane,
            "batch_sweep_perlane",
            "per-lane controllers — every lane bitwise identical to its scalar solve",
        ),
        (
            BatchMode::Shared,
            "batch_sweep_shared",
            "one shared controller (error norm = max over lanes) — one accept/reject \
             decision propagates the whole sweep",
        ),
    ] {
        kernels.push(timed_batch_kernel(
            mode_name,
            format!(
                "the same {grid}-occupancy sweep as one batched SoA drive, {mode_desc}; \
                 rhs_evals counts batched K x B kernel invocations"
            ),
            || {
                let sweep =
                    meanfield::solve_batch(&model, &m0s, theta, &opts, mode).expect("solves");
                let lanes: Vec<(usize, usize, usize, usize)> = sweep
                    .lanes
                    .iter()
                    .enumerate()
                    .map(|(lane, r)| {
                        let s = r
                            .as_ref()
                            .map(|(t, _)| t.trajectory().stats())
                            .unwrap_or_default();
                        (lane, s.accepted, s.rejected, s.rhs_evals)
                    })
                    .collect();
                let accepted = lanes.iter().map(|&(_, a, _, _)| a).sum();
                (
                    (sweep.stats.batch_rhs_calls, accepted),
                    BatchDetail {
                        width: sweep.stats.width,
                        detached: sweep.stats.detached,
                        restarts: sweep.stats.restarts,
                        lanes,
                    },
                )
            },
        ));
    }

    let sol = meanfield::solve(&model, &m0s[0], theta, &opts).expect("solves");
    let gen = sol.generator();
    kernels.push(timed_kernel(
        "transition_matrix",
        format!(
            "forward Kolmogorov matrix transient (Eq. 5) of the Setting-2 trajectory \
             generator over T in [0, {theta}], Q(t) memoized by Runge-Kutta stage time"
        ),
        || {
            let traj = transition_matrix_trajectory(&gen, 0.0, theta, &opts).expect("integrates");
            stats_of(&traj)
        },
    ));

    // Eq. 6 window propagation on a generator that settles exactly at
    // t* = 2, so the full integration and the steady-regime hand-off solve
    // the same problem and the saved Runge-Kutta stages are visible.
    let settling = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
        let s = (2.0 - t).max(0.0);
        let r = 1.0 + s * s;
        q[(0, 0)] = -r;
        q[(0, 1)] = r;
        q[(1, 0)] = 0.7;
        q[(1, 1)] = -0.7;
    });
    let t_end = if smoke { 10.0 } else { 40.0 };
    let duration = 0.8;
    let init = transition_matrix(&settling, 0.0, duration, &opts).expect("integrates");

    kernels.push(timed_kernel(
        "window_full",
        format!(
            "combined-window propagation (Eq. 6, T = {duration}) over t in [0, {t_end}] of a \
             generator constant from t = 2, integrated as a matrix ODE throughout"
        ),
        || {
            let traj =
                propagate_window(&settling, &init, 0.0, t_end, duration, &opts).expect("propagates");
            stats_of(&traj)
        },
    ));

    kernels.push(timed_kernel(
        "window_fastpath",
        "the same propagation with the steady-regime hand-off: matrix ODE up to t* = 2, then \
         one uniformization (Eq. 14/15) covers the constant tail"
            .to_string(),
        || {
            let tail = ConstantTail {
                t_star: 2.0,
                eps: mfcsl_ctmc::transient::DEFAULT_EPSILON,
            };
            let traj =
                propagate_window_from(&settling, &init, 0.0, t_end, duration, &opts, Some(&tail))
                    .expect("propagates");
            stats_of(&traj)
        },
    ));

    // Large-K sparse-lane kernels on the bounded-queue model: steady state
    // through GMRES on the CSC generator and the vector-path until, the two
    // solves the dense lane cannot reach at these sizes. `peak_bytes` is
    // the headline number — it must stay below one dense K×K matrix
    // (8·K² bytes), demonstrating the lane runs in O(nnz) memory.
    let caps: &[usize] = if smoke { &[64, 256] } else { &[64, 256, 1024] };
    for &k in caps {
        let params = mfcsl_models::queueing::Params {
            cap: k - 1,
            ..mfcsl_models::queueing::default_params()
        };
        let qmodel = mfcsl_models::queueing::model(params).expect("valid params");
        let m0 = Occupancy::unit(k, 0).expect("valid occupancy");
        let horizon = 1.0;
        // The mean-field solve and model plumbing stay outside the
        // brackets: the kernels charge only the sparse solves themselves.
        let sol = meanfield::solve(&qmodel, &m0, horizon, &opts).expect("solves");
        let frozen_m = sol.occupancy_at(horizon);

        kernels.push(timed_kernel(
            format!("sparse_steady_k{k}"),
            format!(
                "stationary distribution of the K = {k} bounded-queue chain frozen at the \
                 t = {horizon} occupancy: CSC assembly + bordered GMRES (power-iteration \
                 fallback), never materializing the dense generator"
            ),
            || {
                let (from, to) = qmodel.sparsity();
                let mut rates = vec![0.0; from.len()];
                qmodel.write_rates_at(&frozen_m, &mut rates);
                let triplets: Vec<(usize, usize, f64)> = from
                    .iter()
                    .zip(to)
                    .zip(&rates)
                    .map(|((&f, &t), &r)| (f, t, r))
                    .collect();
                let chain = mfcsl_ctmc::sparse::SparseCtmc::from_triplets(k, &triplets)
                    .expect("valid chain");
                let pi = mfcsl_ctmc::steady::steady_state_sparse(&chain).expect("converges");
                assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                (0, 0)
            },
        ));

        let tv = sol.local_tv_model().expect("valid model");
        let sat2 = tv.sat_ap("congested").expect("labeled");
        kernels.push(timed_kernel(
            format!("sparse_until_k{k}"),
            format!(
                "EP[ tt U[0,0.8] congested ] on the K = {k} bounded-queue trajectory via the \
                 vector-path backward solve: one length-K payload through the sparse \
                 time-varying generator instead of a K x K matrix transient"
            ),
            || {
                let interval = mfcsl_csl::TimeInterval::new(0.0, 0.8).expect("valid interval");
                let p = mfcsl_csl::until::until_probabilities_sparse(
                    &tv,
                    &vec![true; k],
                    &sat2,
                    interval,
                    &mfcsl_csl::Tolerances::default(),
                )
                .expect("solves")
                .expect("sparse lane engages at this size");
                assert_eq!(p.len(), k);
                (0, 0)
            },
        ));
    }

    kernels
}

/// Hand-rolled JSON for `BENCH_solver.json` (same reason as
/// [`render_json`]: the workspace's serde stub has no serializer).
fn render_solver_json(kernels: &[KernelReport], smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"solver\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"git_revision\": \"{}\",", git_revision());
    let _ = writeln!(out, "  \"threads_available\": {},", mfcsl_pool::default_parallelism());
    let _ = writeln!(out, "  \"allocation_counters\": {},", alloc_counter::installed());
    let _ = writeln!(out, "  \"kernels\": [");
    for (i, k) in kernels.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", k.name);
        let _ = writeln!(out, "      \"description\": \"{}\",", k.description);
        let _ = writeln!(out, "      \"wall_seconds\": {:.6},", k.wall_seconds);
        let _ = writeln!(out, "      \"rhs_evals\": {},", k.rhs_evals);
        let _ = writeln!(out, "      \"accepted_steps\": {},", k.accepted_steps);
        let _ = writeln!(out, "      \"allocations\": {},", k.allocations);
        if let Some(b) = &k.batch {
            let _ = writeln!(out, "      \"peak_bytes\": {},", k.peak_bytes);
            let _ = writeln!(out, "      \"batch_width\": {},", b.width);
            let _ = writeln!(out, "      \"detached\": {},", b.detached);
            let _ = writeln!(out, "      \"restarts\": {},", b.restarts);
            let _ = writeln!(out, "      \"lanes\": [");
            for (li, (lane, accepted, rejected, rhs_evals)) in b.lanes.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "        {{\"lane\": {lane}, \"accepted\": {accepted}, \
                     \"rejected\": {rejected}, \"rhs_evals\": {rhs_evals}}}{}",
                    if li + 1 < b.lanes.len() { "," } else { "" }
                );
            }
            let _ = writeln!(out, "      ]");
        } else {
            let _ = writeln!(out, "      \"peak_bytes\": {}", k.peak_bytes);
        }
        let _ = writeln!(out, "    }}{}", if i + 1 < kernels.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// What the regression gate needs from a previous `BENCH_check.json`.
struct Baseline {
    smoke: bool,
    threads_available: usize,
    git_revision: String,
    /// Serial (1-thread) wall-clock per workload name.
    serial_walls: Vec<(String, f64)>,
}

/// Extracts the gate-relevant fields from a report produced by
/// [`render_json`] with a line-oriented scan (no JSON parser in the
/// offline workspace). Returns `None` when a required field is missing.
fn parse_baseline(text: &str) -> Option<Baseline> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let rest = line.trim().strip_prefix(key)?;
        Some(rest.trim_end_matches(','))
    }
    let mut bench = None;
    let mut smoke = None;
    let mut threads_available = None;
    let mut git_revision = String::from("unknown");
    let mut serial_walls = Vec::new();
    let mut workload: Option<String> = None;
    for line in text.lines() {
        if let Some(v) = field(line, "\"bench\": ") {
            bench = Some(v.trim_matches('"').to_string());
        } else if let Some(v) = field(line, "\"smoke\": ") {
            smoke = v.parse::<bool>().ok();
        } else if let Some(v) = field(line, "\"threads_available\": ") {
            threads_available = v.parse::<usize>().ok();
        } else if let Some(v) = field(line, "\"git_revision\": ") {
            git_revision = v.trim_matches('"').to_string();
        } else if let Some(v) = field(line, "\"name\": ") {
            workload = Some(v.trim_matches('"').to_string());
        } else if line.contains("\"threads\": 1,") {
            // The first run of each workload is the serial one.
            if let Some(name) = workload.take() {
                let wall = line
                    .split("\"wall_seconds\": ")
                    .nth(1)?
                    .split(',')
                    .next()?
                    .trim()
                    .parse::<f64>()
                    .ok()?;
                serial_walls.push((name, wall));
            }
        }
    }
    if bench.as_deref() != Some("check") {
        return None;
    }
    Some(Baseline {
        smoke: smoke?,
        threads_available: threads_available?,
        git_revision,
        serial_walls,
    })
}

/// What the solver-kernel gate needs from a previous `BENCH_solver.json`:
/// `(name, wall_seconds, rhs_evals)` per kernel, plus the commensurability
/// fields.
struct SolverBaseline {
    smoke: bool,
    threads_available: usize,
    git_revision: String,
    kernels: Vec<(String, f64, usize)>,
}

/// Line-oriented scan of a report produced by [`render_solver_json`]. The
/// per-lane objects of the batched kernels render as compact one-line
/// `{"lane": …}` entries, so the kernel-level `"rhs_evals"` scan below never
/// matches them.
fn parse_solver_baseline(text: &str) -> Option<SolverBaseline> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let rest = line.trim().strip_prefix(key)?;
        Some(rest.trim_end_matches(','))
    }
    let mut bench = None;
    let mut smoke = None;
    let mut threads_available = None;
    let mut git_revision = String::from("unknown");
    let mut kernels = Vec::new();
    let mut name: Option<String> = None;
    let mut wall: Option<f64> = None;
    for line in text.lines() {
        if let Some(v) = field(line, "\"bench\": ") {
            bench = Some(v.trim_matches('"').to_string());
        } else if let Some(v) = field(line, "\"smoke\": ") {
            smoke = v.parse::<bool>().ok();
        } else if let Some(v) = field(line, "\"threads_available\": ") {
            threads_available = v.parse::<usize>().ok();
        } else if let Some(v) = field(line, "\"git_revision\": ") {
            git_revision = v.trim_matches('"').to_string();
        } else if let Some(v) = field(line, "\"name\": ") {
            name = Some(v.trim_matches('"').to_string());
        } else if let Some(v) = field(line, "\"wall_seconds\": ") {
            wall = v.parse::<f64>().ok();
        } else if let Some(v) = field(line, "\"rhs_evals\": ") {
            if let (Some(n), Some(w), Ok(evals)) = (name.take(), wall.take(), v.parse::<usize>()) {
                kernels.push((n, w, evals));
            }
        }
    }
    if bench.as_deref() != Some("solver") {
        return None;
    }
    Some(SolverBaseline {
        smoke: smoke?,
        threads_available: threads_available?,
        git_revision,
        kernels,
    })
}

/// Compares this run's solver kernels against a previous
/// `BENCH_solver.json`, gating on wall-clock AND RHS-evaluation counts.
/// Wall-clock uses the same tolerance and noise floor as the workload gate;
/// RHS evals are deterministic counters, so they get the tolerance but no
/// noise floor. Returns the process exit code: 0 on pass or refused
/// comparison, 1 on a regression or an unreadable baseline.
fn solver_regression_gate(path: &str, kernels: &[KernelReport], smoke: bool) -> i32 {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("solver gate: cannot read {path}");
        return 1;
    };
    let Some(base) = parse_solver_baseline(&text) else {
        eprintln!("solver gate: {path} is not a bench_check solver report");
        return 1;
    };
    let threads_available = mfcsl_pool::default_parallelism();
    if base.threads_available != threads_available || base.smoke != smoke {
        println!(
            "solver gate: refusing to compare against {path} (rev {}): baseline has \
             threads_available={} smoke={}, this run has threads_available={} smoke={} — \
             wall-clock from differing hosts or modes is not commensurable",
            base.git_revision, base.threads_available, base.smoke, threads_available, smoke
        );
        return 0;
    }
    let mut failed = false;
    for k in kernels {
        let Some((_, base_wall, base_evals)) =
            base.kernels.iter().find(|(name, _, _)| *name == k.name)
        else {
            println!("solver gate: {:<22} not in baseline, skipped", k.name);
            continue;
        };
        let wall_ratio = k.wall_seconds / base_wall;
        let wall_verdict = if k.wall_seconds < GATE_NOISE_FLOOR && *base_wall < GATE_NOISE_FLOOR {
            "ok (below noise floor)"
        } else if wall_ratio > GATE_TOLERANCE {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "solver gate: {:<22} wall {:.4}s vs {base_wall:.4}s (rev {}) = {wall_ratio:.2}x  {wall_verdict}",
            k.name, k.wall_seconds, base.git_revision
        );
        if *base_evals > 0 {
            let eval_ratio = k.rhs_evals as f64 / *base_evals as f64;
            let eval_verdict = if eval_ratio > GATE_TOLERANCE {
                failed = true;
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "solver gate: {:<22} rhs_evals {} vs {base_evals} = {eval_ratio:.2}x  {eval_verdict}",
                k.name, k.rhs_evals
            );
        }
    }
    i32::from(failed)
}

/// Compares this run's serial wall-clock against a previous report.
/// Returns the process exit code: 0 on pass or refused comparison, 1 on a
/// regression or an unreadable baseline.
fn regression_gate(path: &str, reports: &[WorkloadReport], smoke: bool) -> i32 {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("baseline gate: cannot read {path}");
        return 1;
    };
    let Some(base) = parse_baseline(&text) else {
        eprintln!("baseline gate: {path} is not a bench_check report");
        return 1;
    };
    let threads_available = mfcsl_pool::default_parallelism();
    if base.threads_available != threads_available || base.smoke != smoke {
        println!(
            "baseline gate: refusing to compare against {path} (rev {}): baseline has \
             threads_available={} smoke={}, this run has threads_available={} smoke={} — \
             wall-clock from differing hosts or modes is not commensurable",
            base.git_revision, base.threads_available, base.smoke, threads_available, smoke
        );
        return 0;
    }
    let mut failed = false;
    for r in reports {
        let Some((_, base_wall)) =
            base.serial_walls.iter().find(|(name, _)| name == r.name)
        else {
            println!("baseline gate: {:<12} not in baseline, skipped", r.name);
            continue;
        };
        let wall = r.runs[0].1;
        let ratio = wall / base_wall;
        let verdict = if wall < GATE_NOISE_FLOOR && *base_wall < GATE_NOISE_FLOOR {
            "ok (below noise floor)"
        } else if ratio > GATE_TOLERANCE {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "baseline gate: {:<12} serial {wall:.4}s vs {base_wall:.4}s (rev {}) = {ratio:.2}x  {verdict}",
            r.name, base.git_revision
        );
    }
    i32::from(failed)
}
