//! Ext-B: mean-field accuracy versus finite-`N` ground truth (DESIGN.md id
//! "Ext-B") — the empirical side of the paper's convergence theorem.
//!
//! Two experiments on the virus (Setting 2) and SIS models:
//! * occupancy bias `|E_N[m(t)] − m̄(t)|` via the exact lumped chain
//!   (small N) and SSA averages (large N);
//! * the `EP` operator vs the tagged-object success frequency.
//!
//! Run with `cargo run --release -p mfcsl-bench --bin accuracy`.

use mfcsl_bench::{report_dir, write_csv};
use mfcsl_core::mfcsl::Checker;
use mfcsl_core::{meanfield, Occupancy};
use mfcsl_csl::{parse_path_formula, Tolerances};
use mfcsl_models::{sis, virus};
use mfcsl_ode::OdeOptions;
use mfcsl_sim::estimator::{mean_ci, proportion_ci, run_replications};
use mfcsl_sim::{lumped, paths, ssa};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    occupancy_bias();
    ep_accuracy();
    println!("CSV written to {}/", report_dir().display());
}

fn occupancy_bias() {
    println!("── occupancy bias |E_N[infected(t)] − mf| (virus, Setting 2, t = 2) ──");
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).expect("valid");
    let m0 = Occupancy::new(vec![0.8, 0.1, 0.1]).expect("valid");
    let t = 2.0;
    let sol = meanfield::solve(&model, &m0, t, &OdeOptions::default()).expect("solves");
    let mf = sol.occupancy_at(t);
    let mf_inf = mf[1] + mf[2];
    println!("mean-field infected fraction: {mf_inf:.6}");
    println!(
        "{:>6} {:>10} {:>12} {:>10}",
        "N", "method", "E_N[inf]", "|bias|"
    );
    let mut rows = Vec::new();
    for n in [5usize, 10, 20, 40, 80] {
        let chain = lumped::build(&model, n, 200_000).expect("builds");
        let c0 = ssa::counts_from_occupancy(&m0, n).expect("counts");
        let e = chain.expected_occupancy(&c0, t, 1e-12).expect("transient");
        let inf = e[1] + e[2];
        println!(
            "{:>6} {:>10} {:>12.6} {:>10.2e}",
            n,
            "lumped",
            inf,
            (inf - mf_inf).abs()
        );
        rows.push(vec![n as f64, inf, (inf - mf_inf).abs()]);
    }
    for n in [200usize, 1000, 5000] {
        let c0 = ssa::counts_from_occupancy(&m0, n).expect("counts");
        let samples = run_replications(400, 8, 11, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let traj = ssa::simulate(&model, c0.clone(), t, &mut rng).expect("simulates");
            let occ = traj.occupancy_at(t);
            occ[1] + occ[2]
        });
        let est = mean_ci(&samples, 1.96).expect("estimate");
        println!(
            "{:>6} {:>10} {:>12.6} {:>10.2e}   (95% CI ± {:.2e})",
            n,
            "ssa",
            est.mean,
            (est.mean - mf_inf).abs(),
            est.half_width()
        );
        rows.push(vec![n as f64, est.mean, (est.mean - mf_inf).abs()]);
    }
    write_csv(
        &report_dir().join("accuracy_occupancy.csv"),
        "n,expected_infected,bias",
        &rows,
    );
}

fn ep_accuracy() {
    println!("\n── EP operator vs tagged-object simulation (SIS β=2 γ=1, t ∈ [0,1]) ──");
    let model = sis::model(2.0, 1.0).expect("valid");
    let m0 = Occupancy::new(vec![0.8, 0.2]).expect("valid");
    let checker = Checker::with_tolerances(&model, Tolerances::default());
    let path = parse_path_formula("healthy U[0,1] infected").expect("parses");
    let curve = checker.ep_curve(&path, &m0, 0.0).expect("evaluates");
    let analytic = curve.expected_at(0.0);
    println!("mean-field EP: {analytic:.6}");
    println!("{:>6} {:>12} {:>22}", "N", "estimate", "95% CI");
    let mut rows = Vec::new();
    for n in [20usize, 100, 500, 2500] {
        let c0 = ssa::counts_from_occupancy(&m0, n).expect("counts");
        let trials = 6000;
        let hits = run_replications(trials, 8, 23, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            // Tag distributed like m0: 80% healthy starters.
            let tagged0 = usize::from(seed % 5 == 4);
            let (_, tagged) = ssa::simulate_tagged(&model, c0.clone(), tagged0, 1.0, &mut rng)
                .expect("simulates");
            let sojourns: Vec<_> = tagged.sojourns().collect();
            u8::from(
                paths::until_holds(&sojourns, &[true, false], &[false, true], 0.0, 1.0)
                    .expect("path check"),
            )
        });
        let successes: usize = hits.iter().map(|&h| h as usize).sum();
        let est = proportion_ci(successes, trials, 1.96).expect("estimate");
        println!(
            "{:>6} {:>12.6} {:>22}",
            n,
            est.mean,
            format!("[{:.4}, {:.4}]", est.lo, est.hi)
        );
        rows.push(vec![n as f64, est.mean, est.lo, est.hi, analytic]);
    }
    write_csv(
        &report_dir().join("accuracy_ep.csv"),
        "n,estimate,ci_lo,ci_hi,mean_field",
        &rows,
    );
}
