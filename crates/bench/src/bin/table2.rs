//! Regenerates Table II of the paper: the two parameter settings, the
//! derived overall ODE (Eq. 21), and the fixed-point landscape of each
//! setting (including the k2↔k3-swapped variants the reproduction sweeps).
//!
//! Run with `cargo run --release --bin table2`.

use mfcsl_core::fixedpoint::{self, FixedPointOptions};
use mfcsl_models::virus;

fn main() {
    println!("Table II — parameter settings\n");
    println!(
        "{:<42} {:>9} {:>9} {:>9} {:>9}",
        "parameter", "Set. 1", "Set. 2", "1-swap", "2-swap"
    );
    let s1 = virus::setting_1();
    let s2 = virus::setting_2();
    let s1s = virus::setting_1_swapped();
    let s2s = virus::Params {
        k2: s2.k3,
        k3: s2.k2,
        ..s2
    };
    type Getter = fn(&virus::Params) -> f64;
    let rows: [(&str, Getter); 5] = [
        ("attack k1", |p| p.k1),
        ("inactive computer recovery k2", |p| p.k2),
        ("inactive computers getting active k3", |p| p.k3),
        ("active computer returns to inactive k4", |p| p.k4),
        ("active computer recovery k5", |p| p.k5),
    ];
    for (label, get) in rows {
        println!(
            "{:<42} {:>9} {:>9} {:>9} {:>9}",
            label,
            get(&s1),
            get(&s2),
            get(&s1s),
            get(&s2s)
        );
    }

    println!("\nderived overall ODE (Eq. 21), per setting:");
    for (name, p) in [
        ("Setting 1", s1),
        ("Setting 2", s2),
        ("Setting 1 swapped", s1s),
        ("Setting 2 swapped", s2s),
    ] {
        println!(
            "  {name}: dm1 = {:+.2}·m3 {:+.2}·m2, dm2 = {:+.2}·m3 {:+.2}·m2, dm3 = {:+.2}·m2 {:+.2}·m3",
            -p.k1 + p.k5,
            p.k2,
            p.k1 + p.k4,
            -(p.k2 + p.k3),
            p.k3,
            -(p.k4 + p.k5),
        );
        // Epidemic growth/decay from the (m2, m3) subsystem determinant:
        // negative determinant ⇒ saddle ⇒ the infection grows.
        let det = (p.k2 + p.k3) * (p.k4 + p.k5) - p.k3 * (p.k1 + p.k4);
        println!(
            "      (m2, m3) subsystem det = {det:+.4} ⇒ infection {}",
            if det > 0.0 { "decays" } else { "grows" }
        );
        let model = virus::model(p, virus::InfectionLaw::SmartVirus).expect("valid params");
        match fixedpoint::find_all(&model, 10, 7, &FixedPointOptions::default()) {
            Ok(fps) => {
                for fp in fps {
                    println!(
                        "      fixed point m̃ = {} ({:?}, abscissa {:+.4})",
                        fp.occupancy, fp.stability, fp.spectral_abscissa
                    );
                }
            }
            Err(e) => println!("      fixed-point search failed: {e}"),
        }
    }
}
