//! Regenerates the three curves of the paper's Figure 3 and their
//! threshold crossings, for every parameter variant the reproduction
//! sweeps.
//!
//! * **green** — `Prob(s₁, ¬infected U[0,1] infected, m̄, t)`;
//! * **red** — the expected probability `EP(¬infected U[0,1] infected)(t)`,
//!   both under standard CSL semantics (`Σ m_j·Prob(s_j)`) and under the
//!   paper's convention (`m₁(t)·Prob(s₁, t)` — already-infected machines
//!   contribute 0), with the crossing of the 0.3 bound;
//! * **blue** — `Prob(s₁, tt U[0,0.5] infected, m̄, t)` under Setting 2,
//!   with the crossing of the 0.8 bound (the paper's `T₁ = 10.443`).
//!
//! CSV series land in `reports/`. Run with
//! `cargo run --release --bin fig3`.

use mfcsl_bench::{compare_line, crossings, report_dir, sample_curve, write_csv};
use mfcsl_core::mfcsl::Checker;
use mfcsl_csl::{parse_path_formula, Tolerances};
use mfcsl_models::virus;

fn main() {
    let theta = 20.0;
    let grid = 800;
    let m0 = virus::example_occupancy().expect("paper occupancy");

    for (tag, params) in [
        ("setting1", virus::setting_1()),
        ("setting1_swapped", virus::setting_1_swapped()),
    ] {
        println!("══ Figure 3, green/red curves — {tag} ══");
        let model = virus::model(params, virus::InfectionLaw::SmartVirus).expect("valid params");
        let checker = Checker::with_tolerances(&model, Tolerances::default());
        let path = parse_path_formula("not_infected U[0,1] infected").expect("parses");
        let curve = checker.ep_curve(&path, &m0, theta).expect("evaluates");

        let green: Vec<Vec<f64>> = sample_curve(|t| curve.state_prob_at(0, t), 0.0, theta, grid)
            .into_iter()
            .map(|(t, v)| vec![t, v])
            .collect();
        write_csv(
            &report_dir().join(format!("fig3_green_{tag}.csv")),
            "t,prob_s1",
            &green,
        );

        let red: Vec<Vec<f64>> = sample_curve(|t| t, 0.0, theta, grid)
            .into_iter()
            .map(|(t, _)| {
                let standard = curve.expected_at(t);
                let paper = curve.occupancy_at(t)[0] * curve.state_prob_at(0, t);
                vec![t, standard, paper]
            })
            .collect();
        write_csv(
            &report_dir().join(format!("fig3_red_{tag}.csv")),
            "t,ep_standard,ep_paper_convention",
            &red,
        );

        let fmt_crossings = |c: &[f64]| {
            if c.is_empty() {
                "none in [0, 20]".to_string()
            } else {
                c.iter()
                    .map(|t| format!("{t:.4}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        let std_cross = crossings(|t| curve.expected_at(t), 0.0, theta, grid, 0.3);
        let paper_cross = crossings(
            |t| curve.occupancy_at(t)[0] * curve.state_prob_at(0, t),
            0.0,
            theta,
            grid,
            0.3,
        );
        println!(
            "EP(0) standard semantics        : {:.6}",
            curve.expected_at(0.0)
        );
        println!(
            "{}",
            compare_line(
                "EP(0) paper convention (m1·Prob(s1))",
                "0.072",
                &format!(
                    "{:.6}",
                    curve.occupancy_at(0.0)[0] * curve.state_prob_at(0, 0.0)
                ),
            )
        );
        println!(
            "{}",
            compare_line(
                "0.3-crossing of EP (standard)",
                "14.5412",
                &fmt_crossings(&std_cross),
            )
        );
        println!(
            "{}",
            compare_line(
                "0.3-crossing of EP (paper convention)",
                "14.5412",
                &fmt_crossings(&paper_cross),
            )
        );
        // cSat of the MF-CSL formula itself.
        let psi = mfcsl_core::mfcsl::parse_formula("EP{<0.3}[ not_infected U[0,1] infected ]")
            .expect("parses");
        let cs = checker.csat(&psi, &m0, theta).expect("evaluates");
        println!(
            "{}\n",
            compare_line(
                "cSat(EP{<0.3}[…]) on [0, 20]",
                "[0, 14.5412)",
                &cs.to_string()
            ),
        );
    }

    // Blue curve: Setting 2 (and its swapped variant), m̄ = (0.85, 0.1, 0.05).
    let m0 = virus::example_occupancy_2().expect("paper occupancy");
    let s2 = virus::setting_2();
    for (tag, params) in [
        ("setting2", s2),
        (
            "setting2_swapped",
            virus::Params {
                k2: s2.k3,
                k3: s2.k2,
                ..s2
            },
        ),
    ] {
        println!("══ Figure 3, blue curve — {tag} ══");
        let model = virus::model(params, virus::InfectionLaw::SmartVirus).expect("valid params");
        let checker = Checker::with_tolerances(&model, Tolerances::default());
        let path = parse_path_formula("tt U[0,0.5] infected").expect("parses");
        let curve = checker.ep_curve(&path, &m0, 15.0).expect("evaluates");
        let blue: Vec<Vec<f64>> = sample_curve(|t| curve.state_prob_at(0, t), 0.0, 15.0, grid)
            .into_iter()
            .map(|(t, v)| vec![t, v])
            .collect();
        write_csv(
            &report_dir().join(format!("fig3_blue_{tag}.csv")),
            "t,prob_s1",
            &blue,
        );
        let cross = crossings(|t| curve.state_prob_at(0, t), 0.0, 15.0, grid, 0.8);
        let fmt = if cross.is_empty() {
            "none in [0, 15]".to_string()
        } else {
            cross
                .iter()
                .map(|t| format!("{t:.4}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "{}\n",
            compare_line("0.8-crossing of Prob(s1, tt U[0,0.5] inf)", "10.443", &fmt),
        );
    }
    println!("CSV series written to {}/", report_dir().display());
}
