//! Regenerates the paper's first Section-VI worked example (DESIGN.md id
//! "Sec. VI ex. 1"): checking
//! `m̄ ⊨ EP{<0.3}[ not_infected U[0,1] infected ]` for
//! `m̄ = (0.8, 0.15, 0.05)` under Table II Setting 1, with every
//! intermediate quantity the paper prints.
//!
//! Run with `cargo run --release -p mfcsl-bench --bin example_ep`.

use mfcsl_bench::compare_line;
use mfcsl_core::meanfield;
use mfcsl_core::mfcsl::{parse_formula, Checker};
use mfcsl_csl::until::MaskedGenerator;
use mfcsl_csl::{parse_path_formula, Tolerances};
use mfcsl_ctmc::inhomogeneous::transition_matrix;
use mfcsl_models::virus;

fn main() {
    let m0 = virus::example_occupancy().expect("paper occupancy");
    for (tag, params) in [
        ("Table II Setting 1 (as printed)", virus::setting_1()),
        ("Setting 1, k2 ↔ k3 swapped", virus::setting_1_swapped()),
    ] {
        println!("══ {tag} ══");
        let model = virus::model(params, virus::InfectionLaw::SmartVirus).expect("valid params");
        let tol = Tolerances::default();

        // Step 1: the mean-field trajectory; step 2: Π'(0,1) on M[infected].
        let sol = meanfield::solve(&model, &m0, 1.0, &tol.ode).expect("solves");
        let tv = sol.local_tv_model().expect("valid model");
        let masked =
            MaskedGenerator::new(tv.generator(), vec![false, true, true]).expect("valid mask");
        let pi = transition_matrix(&masked, 0.0, 1.0, &tol.ode).expect("integrates");
        println!(
            "{}",
            compare_line(
                "Π'(0,1)[s1→s1] (survival of a healthy machine)",
                "0.91",
                &format!("{:.6}", pi[(0, 0)]),
            )
        );
        println!(
            "{}",
            compare_line(
                "Π'(0,1)[s1→s2] (infection within one time unit)",
                "0.09",
                &format!("{:.6}", pi[(0, 1)]),
            )
        );

        // Step 3: the expectation of Def. 6.
        let checker = Checker::with_tolerances(&model, tol);
        let path = parse_path_formula("not_infected U[0,1] infected").expect("parses");
        let curve = checker.ep_curve(&path, &m0, 0.0).expect("evaluates");
        println!(
            "{}",
            compare_line(
                "Prob(s1, φ, m̄)",
                "0.09",
                &format!("{:.6}", curve.state_prob_at(0, 0.0)),
            )
        );
        println!(
            "{}",
            compare_line(
                "Prob(s2, φ, m̄) / Prob(s3, φ, m̄)",
                "0 / 0",
                &format!(
                    "{} / {}  (standard semantics: Φ₂-states succeed at t' = 0)",
                    curve.state_prob_at(1, 0.0),
                    curve.state_prob_at(2, 0.0)
                ),
            )
        );
        println!(
            "{}",
            compare_line(
                "EP(φ) paper convention m₁·Prob(s₁)",
                "0.072",
                &format!("{:.6}", m0[0] * curve.state_prob_at(0, 0.0)),
            )
        );
        println!(
            "{}",
            compare_line(
                "EP(φ) standard semantics Σ m_j·Prob(s_j)",
                "—",
                &format!("{:.6}", curve.expected_at(0.0)),
            )
        );
        let psi = parse_formula("EP{<0.3}[ not_infected U[0,1] infected ]").expect("parses");
        let v = checker.check(&psi, &m0).expect("checks");
        println!(
            "{}\n",
            compare_line(
                "verdict m̄ ⊨ EP{<0.3}[φ]",
                "holds",
                if v.holds() { "holds" } else { "fails" },
            )
        );
    }
}
