//! Ext-A: the state-space explosion the mean-field method avoids,
//! measured (DESIGN.md id "Ext-A").
//!
//! For the paper's virus model (`K = 3`), compares wall-clock time and
//! state-space size of three routes to the occupancy at `t = 2`:
//! the mean-field ODE (N-independent), the exact lumped overall CTMC
//! (`C(N+2, 2)` states), and a single Gillespie run.
//!
//! Run with `cargo run --release -p mfcsl-bench --bin scalability_report`.

use std::time::Instant;

use mfcsl_bench::{report_dir, write_csv};
use mfcsl_core::{meanfield, Occupancy};
use mfcsl_models::virus;
use mfcsl_ode::OdeOptions;
use mfcsl_sim::{lumped, ssa};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).expect("valid");
    let m0 = Occupancy::new(vec![0.8, 0.1, 0.1]).expect("valid");
    let t = 2.0;

    let start = Instant::now();
    let sol = meanfield::solve(&model, &m0, t, &OdeOptions::default()).expect("solves");
    let mf = sol.occupancy_at(t);
    let mf_time = start.elapsed();
    println!(
        "mean-field ODE (any N): {:.6} s, infected fraction {:.6}",
        mf_time.as_secs_f64(),
        mf[1] + mf[2]
    );
    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "N", "states", "dense(s)", "sparse(s)", "ssa(s)", "E_N[inf]", "|bias|"
    );

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for n in [5usize, 10, 20, 40, 80, 160, 320, 640] {
        let c0 = ssa::counts_from_occupancy(&m0, n).expect("counts");
        let states = lumped::n_lumped_states(n, 3);

        // Dense lumped chains above a few thousand states cost minutes and
        // gigabytes; the sparse CSR route stretches the exact computation
        // to six-digit state spaces before it, too, becomes the explosion.
        let start = Instant::now();
        let dense_time = if states <= 3_500 {
            let chain = lumped::build(&model, n, 200_000).expect("builds");
            let _ = chain.expected_occupancy(&c0, t, 1e-10).expect("transient");
            start.elapsed().as_secs_f64()
        } else {
            f64::NAN
        };
        let start = Instant::now();
        let (lumped_time, infected, bias) = if states <= 600_000 {
            let chain = lumped::build_sparse(&model, n, 600_000).expect("builds");
            let e = chain.expected_occupancy(&c0, t, 1e-10).expect("transient");
            let elapsed = start.elapsed().as_secs_f64();
            let inf = e[1] + e[2];
            (elapsed, inf, (inf - (mf[1] + mf[2])).abs())
        } else {
            (f64::NAN, f64::NAN, f64::NAN)
        };

        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(7);
        let reps = 20;
        for _ in 0..reps {
            let _ = ssa::simulate(&model, c0.clone(), t, &mut rng).expect("simulates");
        }
        let ssa_time = start.elapsed().as_secs_f64() / reps as f64;

        println!(
            "{:>6} {:>12} {:>12.4} {:>12.4} {:>12.6} {:>12.6} {:>12.2e}",
            n, states, dense_time, lumped_time, ssa_time, infected, bias
        );
        rows.push(vec![
            n as f64,
            states as f64,
            dense_time,
            lumped_time,
            ssa_time,
            infected,
            bias,
        ]);
    }
    write_csv(
        &report_dir().join("scalability.csv"),
        "n,lumped_states,dense_seconds,sparse_seconds,ssa_seconds,expected_infected,bias",
        &rows,
    );
    println!(
        "\nmean-field cost is flat at {:.4} s; the lumped chain grows as C(N+2,2) \
         and its transient cost explodes — the paper's motivating claim.",
        mf_time.as_secs_f64()
    );
    println!("CSV written to {}/scalability.csv", report_dir().display());
}
