//! Shared plumbing for the report binaries and benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! reproduced paper (see DESIGN.md's per-experiment index); the helpers
//! here handle CSV output and threshold-crossing extraction from sampled
//! curves.

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they classify NaN as invalid input instead of letting it
// through, which is exactly the intent of the validation sites.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Directory the report binaries write their CSV series into.
#[must_use]
pub fn report_dir() -> PathBuf {
    PathBuf::from("reports")
}

/// Writes a CSV file with a header row and one row per record.
///
/// # Panics
///
/// Panics on I/O failure (report binaries treat the filesystem as
/// infallible infrastructure).
pub fn write_csv(path: &Path, header: &str, rows: &[Vec<f64>]) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("create report directory");
    }
    let mut file = fs::File::create(path).expect("create report file");
    writeln!(file, "{header}").expect("write header");
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.9}")).collect();
        writeln!(file, "{}", line.join(",")).expect("write row");
    }
}

/// Samples `f` on a uniform grid of `n + 1` points over `[a, b]`.
pub fn sample_curve<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> Vec<(f64, f64)> {
    (0..=n)
        .map(|i| {
            let t = a + (b - a) * i as f64 / n as f64;
            (t, f(t))
        })
        .collect()
}

/// Finds all crossings of `level` in a sampled curve, refined by Brent's
/// method on the continuous function.
pub fn crossings<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize, level: f64) -> Vec<f64> {
    let samples = sample_curve(&mut f, a, b, n);
    let mut out = Vec::new();
    for w in samples.windows(2) {
        let (t0, v0) = w[0];
        let (t1, v1) = w[1];
        let f0 = v0 - level;
        let f1 = v1 - level;
        if f0 != 0.0 && f1 != 0.0 && f0.signum() != f1.signum() {
            if let Ok(root) = mfcsl_math::roots::brent(|t| f(t) - level, t0, t1, 1e-9) {
                out.push(root);
            }
        }
    }
    out
}

/// Formats a paper-vs-measured comparison line.
#[must_use]
pub fn compare_line(label: &str, paper: &str, measured: &str) -> String {
    format!("{label:<58} paper: {paper:<14} measured: {measured}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_and_crossings() {
        let c = crossings(|t: f64| t * t, 0.0, 3.0, 100, 4.0);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 2.0).abs() < 1e-8);
        let none = crossings(|t: f64| t, 0.0, 1.0, 10, 5.0);
        assert!(none.is_empty());
    }

    #[test]
    fn csv_writer_roundtrip() {
        let dir = std::env::temp_dir().join("mfcsl_bench_test");
        let path = dir.join("x.csv");
        write_csv(&path, "t,v", &[vec![0.0, 1.0], vec![0.5, 2.0]]);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("t,v\n"));
        assert_eq!(body.lines().count(), 3);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compare_line_contains_both() {
        let l = compare_line("x", "1", "2");
        assert!(l.contains("paper: 1"));
        assert!(l.contains("measured: 2"));
    }
}
