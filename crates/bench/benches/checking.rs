//! End-to-end MF-CSL checking cost on the paper's virus model: one bench
//! per operator class (E, EP single until, EP two-phase until, nested
//! until, cSat window development).

use criterion::{criterion_group, criterion_main, Criterion};
use mfcsl_core::mfcsl::{parse_formula, Checker};
use mfcsl_csl::Tolerances;
use mfcsl_models::virus;

fn bench_checking(c: &mut Criterion) {
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).expect("valid");
    let m0 = virus::example_occupancy_2().expect("valid");
    let checker = Checker::with_tolerances(&model, Tolerances::fast());

    let cases = [
        ("E_atomic", "E{>0.8}[ infected ]"),
        (
            "EP_single_until",
            "EP{<0.3}[ not_infected U[0,1] infected ]",
        ),
        (
            "EP_two_phase_until",
            "EP{<0.5}[ not_infected U[2,4] infected ]",
        ),
        (
            "E_nested_until",
            "E{>0.8}[ P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ] ]",
        ),
        ("E_steady_state", "ES{>=0.1}[ infected ]"),
    ];
    let mut group = c.benchmark_group("check");
    group.sample_size(10);
    for (name, text) in cases {
        let psi = parse_formula(text).expect("parses");
        group.bench_function(name, |b| {
            b.iter(|| checker.check(&psi, &m0).expect("checks"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("csat");
    group.sample_size(20);
    let psi = parse_formula("EP{<0.3}[ not_infected U[0,1] infected ]").expect("parses");
    group.bench_function("EP_window_20", |b| {
        b.iter(|| checker.csat(&psi, &m0, 20.0).expect("csat"));
    });
    let psi = parse_formula("E{<0.25}[ infected ] & !E{>0.05}[ active ]").expect("parses");
    group.bench_function("boolean_E_window_20", |b| {
        b.iter(|| checker.csat(&psi, &m0, 20.0).expect("csat"));
    });
    group.finish();
}

criterion_group!(benches, bench_checking);
criterion_main!(benches);
