//! Ablation: numerical-substrate choices (Ext-D in DESIGN.md).
//!
//! * mean-field ODE integration: adaptive DOPRI5 vs fixed-step RK4 vs the
//!   implicit trapezoid (tolerance-matched step counts);
//! * homogeneous CTMC transients: uniformization vs the matrix exponential.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfcsl_core::{meanfield, Occupancy};
use mfcsl_ctmc::transient::{transient_matrix, transient_matrix_expm};
use mfcsl_models::{supermarket, virus};
use mfcsl_ode::fixed::{integrate_fixed, FixedMethod};
use mfcsl_ode::problem::FnSystem;
use mfcsl_ode::stiff::ImplicitTrapezoid;
use mfcsl_ode::OdeOptions;

fn bench_mean_field_solvers(c: &mut Criterion) {
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).expect("valid");
    let m0 = virus::example_occupancy_2().expect("valid");
    let horizon = 15.0;
    let mut group = c.benchmark_group("mean_field_ode");
    group.sample_size(20);
    group.bench_function("dopri5_adaptive", |b| {
        b.iter(|| meanfield::solve(&model, &m0, horizon, &OdeOptions::default()).expect("solves"));
    });
    // Fixed-step methods on the equivalent raw system.
    let n = model.n_states();
    let sys = FnSystem::new(n, |_t, y: &[f64], dy: &mut [f64]| {
        let m = Occupancy::project(y.to_vec()).expect("on simplex");
        let d = model.drift(&m).expect("drift");
        dy.copy_from_slice(&d);
    });
    for steps in [600usize, 3000] {
        group.bench_with_input(BenchmarkId::new("rk4_fixed", steps), &steps, |b, &s| {
            b.iter(|| {
                integrate_fixed(&sys, FixedMethod::Rk4, 0.0, horizon, m0.as_slice(), s)
                    .expect("solves")
            });
        });
        group.bench_with_input(
            BenchmarkId::new("implicit_trapezoid", steps),
            &steps,
            |b, &s| {
                b.iter(|| {
                    ImplicitTrapezoid::default()
                        .solve(&sys, 0.0, horizon, m0.as_slice(), s)
                        .expect("solves")
                });
            },
        );
    }
    group.finish();
}

fn bench_transient_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("homogeneous_transient");
    group.sample_size(20);
    for cap in [4usize, 12, 24] {
        let model = supermarket::model(supermarket::Params {
            lambda: 0.7,
            mu: 1.0,
            d: 2,
            cap,
        })
        .expect("valid");
        let k = cap + 1;
        let m = Occupancy::uniform(k).expect("valid");
        let frozen = model.frozen_at(&m).expect("freezes");
        group.bench_with_input(BenchmarkId::new("uniformization", k), &k, |b, _| {
            b.iter(|| transient_matrix(&frozen, 2.0, 1e-12).expect("transient"));
        });
        group.bench_with_input(BenchmarkId::new("matrix_exponential", k), &k, |b, _| {
            b.iter(|| transient_matrix_expm(&frozen, 2.0).expect("transient"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mean_field_solvers, bench_transient_methods);
criterion_main!(benches);
