//! Scalability: mean-field checking vs the explicit finite-`N` overall
//! CTMC (Ext-A in DESIGN.md).
//!
//! The mean-field cost is *independent of N*; the lumped chain grows as
//! `C(N+K-1, K-1)` states and its uniformization cost explodes with it —
//! the motivating claim of the paper's introduction, measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfcsl_core::{meanfield, Occupancy};
use mfcsl_models::virus;
use mfcsl_ode::OdeOptions;
use mfcsl_sim::{lumped, ssa};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scalability(c: &mut Criterion) {
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).expect("valid");
    let m0 = Occupancy::new(vec![0.8, 0.1, 0.1]).expect("valid");
    let t = 2.0;

    let mut group = c.benchmark_group("transient_occupancy");
    group.sample_size(10);
    group.bench_function("mean_field_any_N", |b| {
        b.iter(|| {
            let sol = meanfield::solve(&model, &m0, t, &OdeOptions::default()).expect("solves");
            sol.occupancy_at(t)
        });
    });
    for n in [10usize, 20, 40, 80] {
        let c0 = ssa::counts_from_occupancy(&m0, n).expect("counts");
        group.bench_with_input(BenchmarkId::new("lumped_ctmc_sparse", n), &n, |b, &n| {
            b.iter(|| {
                let chain = lumped::build_sparse(&model, n, 1_000_000).expect("builds");
                chain.expected_occupancy(&c0, t, 1e-10).expect("transient")
            });
        });
        group.bench_with_input(BenchmarkId::new("ssa_single_run", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| ssa::simulate(&model, c0.clone(), t, &mut rng).expect("simulates"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
