//! Ablation: the paper's single fresh goal state `s*` vs the state-space
//! doubling of its reference \[14\] (Ext-C in DESIGN.md).
//!
//! Sec. IV-C argues the doubling "increases the computational complexity
//! and does not add any extra information": the matrix Kolmogorov
//! integrations run on `(K+1)²` entries instead of `(2K)²`. This bench
//! measures the actual gap for growing local state spaces on a birth–death
//! chain with a time-varying goal set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfcsl_csl::doubling::reach_probability_doubled;
use mfcsl_csl::nested::{reach_probability, PiecewiseSets, PiecewiseStateSet};
use mfcsl_csl::Tolerances;
use mfcsl_ctmc::inhomogeneous::ConstGenerator;
use mfcsl_ctmc::{Ctmc, CtmcBuilder};

/// Birth–death chain with `k` states.
fn chain(k: usize) -> Ctmc {
    let mut b = CtmcBuilder::new();
    for i in 0..k {
        b = b.state(format!("s{i}"), [format!("s{i}")]);
    }
    for i in 0..k - 1 {
        b = b
            .transition(format!("s{i}"), format!("s{}", i + 1), 0.8)
            .expect("valid rate");
        b = b
            .transition(format!("s{}", i + 1), format!("s{i}"), 0.5)
            .expect("valid rate");
    }
    b.build().expect("valid chain")
}

/// Time-varying sets: the top state is the goal; at t = 1 the goal grows
/// to the top two states; the bottom state leaves Γ₁ at t = 2.
fn sets(k: usize) -> PiecewiseSets {
    let top_goal = |extra: bool| -> Vec<bool> {
        (0..k)
            .map(|i| i == k - 1 || (extra && i == k - 2))
            .collect()
    };
    let g2 = PiecewiseStateSet::new(0.0, 5.0, vec![1.0], vec![top_goal(false), top_goal(true)])
        .expect("valid set");
    let all: Vec<bool> = vec![true; k];
    let without_bottom: Vec<bool> = (0..k).map(|i| i != 0).collect();
    let g1 =
        PiecewiseStateSet::new(0.0, 5.0, vec![2.0], vec![all, without_bottom]).expect("valid set");
    PiecewiseSets::new(g1, g2).expect("compatible sets")
}

fn bench_goal_state(c: &mut Criterion) {
    let tol = Tolerances::fast();
    let mut group = c.benchmark_group("nested_reachability");
    group.sample_size(10);
    for &k in &[3usize, 6, 12, 24] {
        let ctmc = chain(k);
        let gen = ConstGenerator::new(&ctmc);
        let s = sets(k);
        // Sanity: both constructions agree before we time them.
        let a = reach_probability(&gen, &s, 0.0, 3.0, &tol).expect("goal-state");
        let b = reach_probability_doubled(&gen, &s, 0.0, 3.0, &tol).expect("doubling");
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "constructions disagree at K = {k}");
        }
        group.bench_with_input(BenchmarkId::new("goal_state_s_star", k), &k, |bench, _| {
            bench.iter(|| reach_probability(&gen, &s, 0.0, 3.0, &tol).expect("goal-state"));
        });
        group.bench_with_input(
            BenchmarkId::new("state_doubling_ref14", k),
            &k,
            |bench, _| {
                bench.iter(|| {
                    reach_probability_doubled(&gen, &s, 0.0, 3.0, &tol).expect("doubling")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_goal_state);
criterion_main!(benches);
