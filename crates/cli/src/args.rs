//! Command-line flag parsing and validation.
//!
//! Every accessor validates as it parses, so malformed input dies with one
//! clear line (and a nonzero exit) before any model work starts: occupancies
//! must lie on the simplex, `--threads` must be at least 1, time-valued
//! flags (`--theta`, `--t-end`, `--timeout-ms`) must be finite and positive.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::commands::{parse_occupancy, CliError};

/// Flags common to the checking commands, parsed from everything after the
/// model path. Unknown `--flags` are rejected; bare words are collected as
/// positional arguments (formulas).
#[derive(Debug, Default)]
pub struct CommonFlags {
    /// Raw `--m0` values, in order.
    pub m0_texts: Vec<String>,
    /// `--theta`, validated finite and positive.
    pub theta: Option<f64>,
    /// `--t-end`, validated finite and positive.
    pub t_end: Option<f64>,
    /// `--points` (default 101).
    pub points: usize,
    /// `--threads`, validated at least 1.
    pub threads: Option<usize>,
    /// `--fast`.
    pub fast: bool,
    /// `--stats`.
    pub stats: bool,
    /// `--batch-shared`: drive csat sweep prewarms with one shared
    /// step-size controller instead of per-lane controllers.
    pub batch_shared: bool,
    /// `--population` (simulate): the finite population size `N`.
    pub population: Option<usize>,
    /// `--reps` (simulate): replication count (default 200).
    pub reps: Option<usize>,
    /// `--seed` (simulate): base seed of the replication family.
    pub seed: u64,
    /// `--confidence` (simulate): two-sided CI level (default 0.95).
    pub confidence: f64,
    /// `--sequential <half-width>` (simulate): grow the batch until every
    /// operator CI is at most this wide (Chow–Robbins stopping).
    pub sequential: Option<f64>,
    /// Positional arguments (formulas).
    pub positional: Vec<String>,
}

/// Parses the common checking flags.
///
/// # Errors
///
/// Returns a one-line [`CliError`] for unknown flags, missing values, and
/// out-of-domain values.
pub fn parse_common(rest: &[String]) -> Result<CommonFlags, CliError> {
    let mut flags = CommonFlags {
        points: 101,
        confidence: 0.95,
        ..CommonFlags::default()
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--m0" => {
                flags.m0_texts.push(flag_value(rest, i, "--m0")?);
                i += 2;
            }
            "--threads" => {
                flags.threads = Some(parse_threads(&flag_value(rest, i, "--threads")?)?);
                i += 2;
            }
            "--theta" => {
                flags.theta = Some(parse_positive_time(
                    "--theta",
                    &flag_value(rest, i, "--theta")?,
                )?);
                i += 2;
            }
            "--t-end" => {
                flags.t_end = Some(parse_positive_time(
                    "--t-end",
                    &flag_value(rest, i, "--t-end")?,
                )?);
                i += 2;
            }
            "--points" => {
                flags.points = flag_value(rest, i, "--points")?
                    .parse()
                    .map_err(|e| CliError(format!("bad --points: {e}")))?;
                i += 2;
            }
            "--fast" => {
                flags.fast = true;
                i += 1;
            }
            "--stats" => {
                flags.stats = true;
                i += 1;
            }
            "--batch-shared" => {
                flags.batch_shared = true;
                i += 1;
            }
            "--population" => {
                flags.population =
                    Some(parse_count("--population", &flag_value(rest, i, "--population")?)?);
                i += 2;
            }
            "--reps" => {
                flags.reps = Some(parse_count("--reps", &flag_value(rest, i, "--reps")?)?);
                i += 2;
            }
            "--seed" => {
                flags.seed = flag_value(rest, i, "--seed")?
                    .parse()
                    .map_err(|e| CliError(format!("bad --seed: {e}")))?;
                i += 2;
            }
            "--confidence" => {
                let text = flag_value(rest, i, "--confidence")?;
                let level: f64 = text
                    .parse()
                    .map_err(|e| CliError(format!("bad --confidence: {e}")))?;
                if !(level > 0.0 && level < 1.0) {
                    return Err(CliError(format!(
                        "--confidence must lie strictly between 0 and 1 (got `{text}`)"
                    )));
                }
                flags.confidence = level;
                i += 2;
            }
            "--sequential" => {
                let text = flag_value(rest, i, "--sequential")?;
                let hw: f64 = text
                    .parse()
                    .map_err(|e| CliError(format!("bad --sequential: {e}")))?;
                if !(hw > 0.0 && hw < 1.0) {
                    return Err(CliError(format!(
                        "--sequential expects a target CI half-width in (0, 1) (got `{text}`)"
                    )));
                }
                flags.sequential = Some(hw);
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(CliError(format!("unknown flag `{other}`")));
            }
            _ => {
                flags.positional.push(rest[i].clone());
                i += 1;
            }
        }
    }
    Ok(flags)
}

impl CommonFlags {
    /// The single `--m0` of a non-sweeping command, parsed onto the simplex.
    ///
    /// # Errors
    ///
    /// Fails when `--m0` is missing, repeated, malformed, or off-simplex.
    pub fn single_m0(&self) -> Result<mfcsl_core::Occupancy, CliError> {
        match self.m0_texts.as_slice() {
            [] => Err(CliError("--m0 is required for this command".into())),
            [one] => parse_occupancy(one),
            _ => Err(CliError(
                "this command takes a single --m0 (only csat sweeps several)".into(),
            )),
        }
    }

    /// All `--m0` values of a sweeping command (at least one).
    ///
    /// # Errors
    ///
    /// Fails when no `--m0` was given or any is malformed or off-simplex.
    pub fn all_m0s(&self) -> Result<Vec<mfcsl_core::Occupancy>, CliError> {
        if self.m0_texts.is_empty() {
            return Err(CliError("--m0 is required for this command".into()));
        }
        self.m0_texts.iter().map(|t| parse_occupancy(t)).collect()
    }

    /// The positional formulas (at least one).
    ///
    /// # Errors
    ///
    /// Fails when no formula was given.
    pub fn formulas(&self) -> Result<&[String], CliError> {
        if self.positional.is_empty() {
            Err(CliError("a formula argument is required".into()))
        } else {
            Ok(&self.positional)
        }
    }
}

/// Flags of `mfcsl serve`.
#[derive(Debug)]
pub struct ServeFlags {
    /// `.mf` files and/or directories to load into the registry.
    pub paths: Vec<PathBuf>,
    /// `--addr` (default `127.0.0.1:7171`; use port `0` for ephemeral).
    pub addr: String,
    /// `--workers` (default 4).
    pub workers: usize,
    /// `--queue` (default 64).
    pub queue: usize,
    /// `--threads` (default: the machine's available parallelism).
    pub threads: usize,
    /// `--max-sessions` (default 64): warm sessions retained before LRU
    /// eviction kicks in.
    pub max_sessions: usize,
    /// `--allow-sleep` (honor the debug `sleep_ms` request field).
    pub allow_sleep: bool,
    /// `--allow-faults` (honor the chaos `fault` request field).
    pub allow_faults: bool,
    /// `--blocking`: serve on the original thread-per-connection core
    /// instead of the epoll event loop.
    pub blocking: bool,
    /// `--loops` (default 2): event-loop threads (event-loop core only).
    pub event_loops: usize,
    /// `--state-dir`: persist warm session state here across restarts.
    pub state_dir: Option<PathBuf>,
    /// `--shards N`: fork N worker daemons and serve as their router.
    pub shards: usize,
}

/// Parses `mfcsl serve` flags: positional model paths plus daemon knobs.
///
/// # Errors
///
/// Returns a one-line [`CliError`] for unknown flags and invalid counts.
pub fn parse_serve(rest: &[String]) -> Result<ServeFlags, CliError> {
    let mut flags = ServeFlags {
        paths: Vec::new(),
        addr: "127.0.0.1:7171".into(),
        workers: 4,
        queue: 64,
        threads: 0,
        max_sessions: 64,
        allow_sleep: false,
        allow_faults: false,
        blocking: false,
        event_loops: 2,
        state_dir: None,
        shards: 0,
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" => {
                flags.addr = flag_value(rest, i, "--addr")?;
                i += 2;
            }
            "--workers" => {
                flags.workers = parse_count("--workers", &flag_value(rest, i, "--workers")?)?;
                i += 2;
            }
            "--queue" => {
                flags.queue = parse_count("--queue", &flag_value(rest, i, "--queue")?)?;
                i += 2;
            }
            "--threads" => {
                flags.threads = parse_threads(&flag_value(rest, i, "--threads")?)?;
                i += 2;
            }
            "--max-sessions" => {
                flags.max_sessions =
                    parse_count("--max-sessions", &flag_value(rest, i, "--max-sessions")?)?;
                i += 2;
            }
            "--allow-sleep" => {
                flags.allow_sleep = true;
                i += 1;
            }
            "--allow-faults" => {
                flags.allow_faults = true;
                i += 1;
            }
            "--blocking" => {
                flags.blocking = true;
                i += 1;
            }
            "--loops" => {
                flags.event_loops = parse_count("--loops", &flag_value(rest, i, "--loops")?)?;
                i += 2;
            }
            "--state-dir" => {
                flags.state_dir = Some(PathBuf::from(flag_value(rest, i, "--state-dir")?));
                i += 2;
            }
            "--shards" => {
                flags.shards = parse_count("--shards", &flag_value(rest, i, "--shards")?)?;
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(CliError(format!("unknown flag `{other}`")));
            }
            _ => {
                flags.paths.push(PathBuf::from(&rest[i]));
                i += 1;
            }
        }
    }
    if flags.paths.is_empty() {
        return Err(CliError(
            "serve needs at least one .mf file or model directory".into(),
        ));
    }
    Ok(flags)
}

/// Flags of `mfcsl client <addr> check`.
#[derive(Debug, Default)]
pub struct ClientCheckFlags {
    /// Raw `--m0` value.
    pub m0: Vec<f64>,
    /// `--fast`.
    pub fast: bool,
    /// `--timeout-ms`, validated finite and positive.
    pub timeout_ms: Option<f64>,
    /// `--param name=value` overrides.
    pub params: BTreeMap<String, f64>,
    /// `--simulate`: send `"mode": "simulate"` so the daemon answers with
    /// finite-N statistical verdicts instead of mean-field ones.
    pub simulate: bool,
    /// `--population` (simulate mode): finite population size `N`.
    pub population: Option<u64>,
    /// `--reps` (simulate mode): replication count.
    pub replications: Option<u64>,
    /// `--seed` (simulate mode): base seed of the replication family.
    pub seed: Option<u64>,
    /// `--retry N`: bounded retries of 429/503 responses, honoring the
    /// daemon's `Retry-After`. The default 0 keeps existing behavior (and
    /// output) byte-identical: one attempt, errors surface immediately.
    pub retry: usize,
    /// Positional formulas.
    pub formulas: Vec<String>,
}

/// Parses `mfcsl client <addr> check <model>` flags.
///
/// # Errors
///
/// Returns a one-line [`CliError`] for unknown flags and invalid values.
pub fn parse_client_check(rest: &[String]) -> Result<ClientCheckFlags, CliError> {
    let mut flags = ClientCheckFlags::default();
    let mut m0_seen = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--m0" => {
                if m0_seen {
                    return Err(CliError("client check takes a single --m0".into()));
                }
                m0_seen = true;
                // Validate on the simplex client-side for a fast local
                // error; the daemon re-validates anyway.
                let occupancy = parse_occupancy(&flag_value(rest, i, "--m0")?)?;
                flags.m0 = occupancy.as_slice().to_vec();
                i += 2;
            }
            "--fast" => {
                flags.fast = true;
                i += 1;
            }
            "--timeout-ms" => {
                flags.timeout_ms = Some(parse_positive_time(
                    "--timeout-ms",
                    &flag_value(rest, i, "--timeout-ms")?,
                )?);
                i += 2;
            }
            "--param" => {
                let text = flag_value(rest, i, "--param")?;
                let (name, value) = text.split_once('=').ok_or_else(|| {
                    CliError(format!("--param expects name=value, got `{text}`"))
                })?;
                let value: f64 = value
                    .trim()
                    .parse()
                    .map_err(|e| CliError(format!("bad --param `{text}`: {e}")))?;
                flags.params.insert(name.trim().to_string(), value);
                i += 2;
            }
            "--simulate" => {
                flags.simulate = true;
                i += 1;
            }
            "--population" => {
                flags.population = Some(
                    parse_count("--population", &flag_value(rest, i, "--population")?)? as u64,
                );
                i += 2;
            }
            "--reps" => {
                flags.replications =
                    Some(parse_count("--reps", &flag_value(rest, i, "--reps")?)? as u64);
                i += 2;
            }
            "--seed" => {
                flags.seed = Some(
                    flag_value(rest, i, "--seed")?
                        .parse()
                        .map_err(|e| CliError(format!("bad --seed: {e}")))?,
                );
                i += 2;
            }
            "--retry" => {
                flags.retry = flag_value(rest, i, "--retry")?
                    .parse()
                    .map_err(|e| CliError(format!("bad --retry: {e}")))?;
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(CliError(format!("unknown flag `{other}`")));
            }
            _ => {
                flags.formulas.push(rest[i].clone());
                i += 1;
            }
        }
    }
    if !m0_seen {
        return Err(CliError("--m0 is required for client check".into()));
    }
    if flags.formulas.is_empty() {
        return Err(CliError("a formula argument is required".into()));
    }
    Ok(flags)
}

fn flag_value(rest: &[String], i: usize, flag: &str) -> Result<String, CliError> {
    rest.get(i + 1)
        .cloned()
        .ok_or_else(|| CliError(format!("{flag} needs a value")))
}

/// `--threads`: an integer of at least 1.
///
/// # Errors
///
/// Fails on unparsable or zero values.
pub fn parse_threads(text: &str) -> Result<usize, CliError> {
    let n: usize = text
        .parse()
        .map_err(|e| CliError(format!("bad --threads: {e}")))?;
    if n == 0 {
        return Err(CliError(
            "--threads must be at least 1 (omit the flag for the machine's parallelism)".into(),
        ));
    }
    Ok(n)
}

fn parse_count(flag: &str, text: &str) -> Result<usize, CliError> {
    let n: usize = text
        .parse()
        .map_err(|e| CliError(format!("bad {flag}: {e}")))?;
    if n == 0 {
        return Err(CliError(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

/// A time-valued flag: must parse, be finite, and be strictly positive —
/// `NaN`, infinities, negatives and `0` all die here with the flag named.
///
/// # Errors
///
/// Returns a one-line [`CliError`] naming the flag and the offending value.
pub fn parse_positive_time(flag: &str, text: &str) -> Result<f64, CliError> {
    let value: f64 = text
        .parse()
        .map_err(|e| CliError(format!("bad {flag}: {e}")))?;
    if !(value.is_finite() && value > 0.0) {
        return Err(CliError(format!(
            "{flag} must be a finite, positive time (got `{text}`)"
        )));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn common_flags_roundtrip() {
        let flags = parse_common(&argv(&[
            "--m0", "0.9,0.1", "--theta", "12", "--threads", "4", "--fast", "--stats",
            "--batch-shared", "E{<0.3}[ infected ]",
        ]))
        .unwrap();
        assert_eq!(flags.m0_texts, vec!["0.9,0.1"]);
        assert_eq!(flags.theta, Some(12.0));
        assert_eq!(flags.threads, Some(4));
        assert!(flags.fast && flags.stats && flags.batch_shared);
        assert!(!parse_common(&argv(&["--m0", "0.9,0.1"])).unwrap().batch_shared);
        assert_eq!(flags.formulas().unwrap().len(), 1);
        assert_eq!(flags.single_m0().unwrap().len(), 2);
    }

    #[test]
    fn off_simplex_m0_is_one_line_error() {
        let flags = parse_common(&argv(&["--m0", "0.5,0.6"])).unwrap();
        let err = flags.single_m0().unwrap_err().to_string();
        assert!(err.contains("bad occupancy"), "{err}");
        assert!(!err.contains('\n'), "one line expected: {err:?}");
        // Negative fractions are off-simplex too.
        let flags = parse_common(&argv(&["--m0", "1.5,-0.5"])).unwrap();
        assert!(flags.single_m0().is_err());
        // And non-numeric input.
        let flags = parse_common(&argv(&["--m0", "a,b"])).unwrap();
        assert!(flags.single_m0().is_err());
    }

    #[test]
    fn threads_zero_rejected() {
        let err = parse_common(&argv(&["--threads", "0"])).unwrap_err().to_string();
        assert!(err.contains("--threads must be at least 1"), "{err}");
        assert!(!err.contains('\n'), "{err:?}");
        assert!(parse_common(&argv(&["--threads", "-3"])).is_err());
        assert!(parse_common(&argv(&["--threads", "two"])).is_err());
        assert_eq!(parse_common(&argv(&["--threads", "2"])).unwrap().threads, Some(2));
    }

    #[test]
    fn malformed_time_windows_rejected() {
        for bad in ["0", "-1", "nan", "inf", "-inf", "abc", ""] {
            for flag in ["--theta", "--t-end"] {
                let err = parse_common(&argv(&[flag, bad]))
                    .unwrap_err()
                    .to_string();
                assert!(err.contains(flag), "{flag} {bad}: {err}");
                assert!(!err.contains('\n'), "{err:?}");
            }
        }
        assert_eq!(
            parse_common(&argv(&["--t-end", "2.5"])).unwrap().t_end,
            Some(2.5)
        );
    }

    #[test]
    fn simulate_flags_roundtrip() {
        let flags = parse_common(&argv(&[
            "--m0", "0.9,0.1", "--population", "1000", "--reps", "400", "--seed", "7",
            "--confidence", "0.99", "--sequential", "0.02", "EP{<0.3}[ tt U[0,1] infected ]",
        ]))
        .unwrap();
        assert_eq!(flags.population, Some(1000));
        assert_eq!(flags.reps, Some(400));
        assert_eq!(flags.seed, 7);
        assert_eq!(flags.confidence, 0.99);
        assert_eq!(flags.sequential, Some(0.02));
        // Defaults.
        let flags = parse_common(&argv(&["--m0", "1.0"])).unwrap();
        assert_eq!(flags.confidence, 0.95);
        assert_eq!(flags.seed, 0);
        assert_eq!(flags.population, None);
        // Domain checks.
        assert!(parse_common(&argv(&["--population", "0"])).is_err());
        assert!(parse_common(&argv(&["--confidence", "1.0"])).is_err());
        assert!(parse_common(&argv(&["--confidence", "nan"])).is_err());
        assert!(parse_common(&argv(&["--sequential", "0"])).is_err());
        assert!(parse_common(&argv(&["--seed", "-1"])).is_err());
    }

    #[test]
    fn client_simulate_flags() {
        let flags = parse_client_check(&argv(&[
            "--m0", "0.9,0.1", "--simulate", "--population", "500", "--reps", "300",
            "--seed", "9", "E{<0.3}[ infected ]",
        ]))
        .unwrap();
        assert!(flags.simulate);
        assert_eq!(flags.population, Some(500));
        assert_eq!(flags.replications, Some(300));
        assert_eq!(flags.seed, Some(9));
        let flags = parse_client_check(&argv(&["--m0", "1.0", "f"])).unwrap();
        assert!(!flags.simulate);
        assert_eq!(flags.population, None);
    }

    #[test]
    fn unknown_and_valueless_flags_rejected() {
        assert!(parse_common(&argv(&["--bogus"])).unwrap_err().to_string().contains("unknown flag"));
        assert!(parse_common(&argv(&["--m0"])).unwrap_err().to_string().contains("needs a value"));
    }

    #[test]
    fn serve_flags() {
        let flags = parse_serve(&argv(&[
            "modelfiles", "--addr", "127.0.0.1:0", "--workers", "2", "--queue", "8",
            "--threads", "3", "--max-sessions", "16", "--allow-sleep",
        ]))
        .unwrap();
        assert_eq!(flags.paths.len(), 1);
        assert_eq!(flags.addr, "127.0.0.1:0");
        assert_eq!((flags.workers, flags.queue, flags.threads), (2, 8, 3));
        assert_eq!(flags.max_sessions, 16);
        assert!(flags.allow_sleep);
        assert!(parse_serve(&argv(&[])).is_err());
        assert!(parse_serve(&argv(&["m", "--workers", "0"])).is_err());
        assert!(parse_serve(&argv(&["m", "--queue", "0"])).is_err());
        assert!(parse_serve(&argv(&["m", "--max-sessions", "0"])).is_err());
    }

    #[test]
    fn client_check_flags() {
        let flags = parse_client_check(&argv(&[
            "--m0", "0.8,0.15,0.05", "--fast", "--timeout-ms", "500",
            "--param", "k2=0.5", "E{<0.3}[ infected ]",
        ]))
        .unwrap();
        assert_eq!(flags.m0.len(), 3);
        assert!(flags.fast);
        assert_eq!(flags.timeout_ms, Some(500.0));
        assert_eq!(flags.params["k2"], 0.5);
        assert!(parse_client_check(&argv(&["E{<0.3}[ x ]"])).is_err(), "m0 required");
        assert!(parse_client_check(&argv(&["--m0", "1.0"])).is_err(), "formula required");
        assert!(parse_client_check(&argv(&["--m0", "1.0", "--param", "k2", "f"])).is_err());
        assert!(parse_client_check(&argv(&["--m0", "1.0", "--timeout-ms", "-5", "f"])).is_err());
    }
}
