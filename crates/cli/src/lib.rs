//! Library backing the `mfcsl` command-line model checker.
//!
//! * [`args`] — command-line argument parsing and validation;
//! * [`commands`] — the implementations behind the CLI subcommands, kept
//!   in the library so they are unit-testable.
//!
//! The `.mf` model format and its rate-expression language live in the
//! shared [`mfcsl_modelfile`] crate (the serving daemon consumes them too);
//! they are re-exported here under their historical paths.

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they classify NaN as invalid input instead of letting it
// through, which is exactly the intent of the validation sites.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use mfcsl_modelfile::{expr, model_file};
