//! Library backing the `mfcsl` command-line model checker.
//!
//! * [`expr`] — the arithmetic rate-expression language of model files;
//! * [`model_file`] — the `.mf` model format (states, params, rates);
//! * [`commands`] — the implementations behind the CLI subcommands, kept
//!   in the library so they are unit-testable.

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they classify NaN as invalid input instead of letting it
// through, which is exactly the intent of the validation sites.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod commands;
pub mod expr;
pub mod model_file;
