//! `mfcsl` — the command-line MF-CSL model checker.
//!
//! ```text
//! mfcsl info <model.mf>
//! mfcsl check <model.mf> --m0 0.8,0.15,0.05 "EP{<0.3}[ not_infected U[0,1] infected ]"
//! mfcsl csat <model.mf> --m0 0.8,0.15,0.05 --theta 20 "<formula>"
//! mfcsl trajectory <model.mf> --m0 0.8,0.15,0.05 --t-end 20 [--points 101]
//! mfcsl fixed-points <model.mf>
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use mfcsl_cli::commands::{self, CliError};
use mfcsl_cli::model_file::ModelFile;

/// Counts allocations so `--stats` can report how much heap traffic a
/// check generated (see `mfcsl_math::alloc_counter`); the overhead is a
/// few relaxed atomic updates per allocation.
#[global_allocator]
static GLOBAL: mfcsl_math::alloc_counter::CountingAlloc =
    mfcsl_math::alloc_counter::CountingAlloc;

const USAGE: &str = "\
mfcsl — MF-CSL model checker for mean-field models

USAGE:
  mfcsl info <model.mf>
  mfcsl check <model.mf> --m0 <fractions> [--fast] [--threads <N>] [--stats] \"<formula>\"...
  mfcsl csat <model.mf> --m0 <fractions> [--m0 <fractions>]... --theta <T> [--threads <N>] [--stats] \"<formula>\"...
  mfcsl trajectory <model.mf> --m0 <fractions> --t-end <T> [--points <N>]
  mfcsl fixed-points <model.mf>

  <fractions> is comma-separated and must sum to 1, e.g. 0.8,0.15,0.05.
  Formulas use the MF-CSL text syntax, e.g.
      EP{<0.3}[ not_infected U[0,1] infected ]
      E{>0.8}[ P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ] ]
  All formulas of one invocation share a single analysis session (one
  mean-field solve, shared satisfaction-set and curve caches) and fan out
  over a work-stealing thread pool: --threads <N> sets the lane count
  (default: the machine's available parallelism; results are bitwise
  identical at any thread count). csat accepts --m0 repeatedly and sweeps
  every formula over all initial occupancies in parallel. --stats prints
  the session's cache counters, per-solve timings with RHS-evaluation
  counts, the command's allocation count, and the pool's per-thread task
  counts.
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<String, CliError> {
    let mut args = args.into_iter();
    let command = args.next().ok_or_else(|| CliError("no command".into()))?;
    let model_path = args
        .next()
        .ok_or_else(|| CliError("missing model file".into()))?;
    let file = ModelFile::load(&PathBuf::from(&model_path))?;
    let model = file.instantiate()?;

    // Collect remaining flags and the optional trailing formula.
    let mut m0_texts: Vec<String> = Vec::new();
    let mut theta: Option<f64> = None;
    let mut t_end: Option<f64> = None;
    let mut points: usize = 101;
    let mut threads: Option<usize> = None;
    let mut fast = false;
    let mut stats = false;
    let mut formulas: Vec<String> = Vec::new();
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        let parse_value = |rest: &[String], i: usize, flag: &str| -> Result<String, CliError> {
            rest.get(i + 1)
                .cloned()
                .ok_or_else(|| CliError(format!("{flag} needs a value")))
        };
        match rest[i].as_str() {
            "--m0" => {
                m0_texts.push(parse_value(&rest, i, "--m0")?);
                i += 2;
            }
            "--threads" => {
                let n: usize = parse_value(&rest, i, "--threads")?
                    .parse()
                    .map_err(|e| CliError(format!("bad --threads: {e}")))?;
                if n == 0 {
                    return Err(CliError("--threads must be at least 1".into()));
                }
                threads = Some(n);
                i += 2;
            }
            "--theta" => {
                theta = Some(
                    parse_value(&rest, i, "--theta")?
                        .parse()
                        .map_err(|e| CliError(format!("bad --theta: {e}")))?,
                );
                i += 2;
            }
            "--t-end" => {
                t_end = Some(
                    parse_value(&rest, i, "--t-end")?
                        .parse()
                        .map_err(|e| CliError(format!("bad --t-end: {e}")))?,
                );
                i += 2;
            }
            "--points" => {
                points = parse_value(&rest, i, "--points")?
                    .parse()
                    .map_err(|e| CliError(format!("bad --points: {e}")))?;
                i += 2;
            }
            "--fast" => {
                fast = true;
                i += 1;
            }
            "--stats" => {
                stats = true;
                i += 1;
            }
            other if other.starts_with("--") => {
                return Err(CliError(format!("unknown flag `{other}`")));
            }
            _ => {
                formulas.push(rest[i].clone());
                i += 1;
            }
        }
    }
    let need_m0 = || -> Result<mfcsl_core::Occupancy, CliError> {
        match m0_texts.as_slice() {
            [] => Err(CliError("--m0 is required for this command".into())),
            [one] => commands::parse_occupancy(one),
            _ => Err(CliError(
                "this command takes a single --m0 (only csat sweeps several)".into(),
            )),
        }
    };
    let need_m0s = || -> Result<Vec<mfcsl_core::Occupancy>, CliError> {
        if m0_texts.is_empty() {
            return Err(CliError("--m0 is required for this command".into()));
        }
        m0_texts
            .iter()
            .map(|t| commands::parse_occupancy(t))
            .collect()
    };
    let need_formulas = || -> Result<&[String], CliError> {
        if formulas.is_empty() {
            Err(CliError("a formula argument is required".into()))
        } else {
            Ok(&formulas)
        }
    };

    match command.as_str() {
        "info" => commands::info(&model, file.params()),
        "check" => {
            let m0 = need_m0()?;
            commands::check(&model, &m0, need_formulas()?, fast, stats, threads)
        }
        "csat" => {
            let m0s = need_m0s()?;
            let theta = theta.ok_or_else(|| CliError("--theta is required for csat".into()))?;
            commands::csat(&model, &m0s, theta, need_formulas()?, stats, threads)
        }
        "trajectory" => {
            let m0 = need_m0()?;
            let t_end =
                t_end.ok_or_else(|| CliError("--t-end is required for trajectory".into()))?;
            commands::trajectory(&model, &m0, t_end, points)
        }
        "fixed-points" => commands::fixed_points(&model),
        other => Err(CliError(format!("unknown command `{other}`"))),
    }
}
