//! `mfcsl` — the command-line MF-CSL model checker.
//!
//! ```text
//! mfcsl info <model.mf>
//! mfcsl check <model.mf> --m0 0.8,0.15,0.05 "EP{<0.3}[ not_infected U[0,1] infected ]"
//! mfcsl csat <model.mf> --m0 0.8,0.15,0.05 --theta 20 "<formula>"
//! mfcsl trajectory <model.mf> --m0 0.8,0.15,0.05 --t-end 20 [--points 101]
//! mfcsl fixed-points <model.mf>
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use mfcsl_cli::commands::{self, CliError};
use mfcsl_cli::model_file::ModelFile;

const USAGE: &str = "\
mfcsl — MF-CSL model checker for mean-field models

USAGE:
  mfcsl info <model.mf>
  mfcsl check <model.mf> --m0 <fractions> [--fast] [--stats] \"<formula>\"...
  mfcsl csat <model.mf> --m0 <fractions> --theta <T> [--stats] \"<formula>\"...
  mfcsl trajectory <model.mf> --m0 <fractions> --t-end <T> [--points <N>]
  mfcsl fixed-points <model.mf>

  <fractions> is comma-separated and must sum to 1, e.g. 0.8,0.15,0.05.
  Formulas use the MF-CSL text syntax, e.g.
      EP{<0.3}[ not_infected U[0,1] infected ]
      E{>0.8}[ P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ] ]
  All formulas of one invocation share a single analysis session (one
  mean-field solve, shared satisfaction-set and curve caches); --stats
  prints the session's cache counters and per-solve timings.
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<String, CliError> {
    let mut args = args.into_iter();
    let command = args.next().ok_or_else(|| CliError("no command".into()))?;
    let model_path = args
        .next()
        .ok_or_else(|| CliError("missing model file".into()))?;
    let file = ModelFile::load(&PathBuf::from(&model_path))?;
    let model = file.instantiate()?;

    // Collect remaining flags and the optional trailing formula.
    let mut m0_text: Option<String> = None;
    let mut theta: Option<f64> = None;
    let mut t_end: Option<f64> = None;
    let mut points: usize = 101;
    let mut fast = false;
    let mut stats = false;
    let mut formulas: Vec<String> = Vec::new();
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        let parse_value = |rest: &[String], i: usize, flag: &str| -> Result<String, CliError> {
            rest.get(i + 1)
                .cloned()
                .ok_or_else(|| CliError(format!("{flag} needs a value")))
        };
        match rest[i].as_str() {
            "--m0" => {
                m0_text = Some(parse_value(&rest, i, "--m0")?);
                i += 2;
            }
            "--theta" => {
                theta = Some(
                    parse_value(&rest, i, "--theta")?
                        .parse()
                        .map_err(|e| CliError(format!("bad --theta: {e}")))?,
                );
                i += 2;
            }
            "--t-end" => {
                t_end = Some(
                    parse_value(&rest, i, "--t-end")?
                        .parse()
                        .map_err(|e| CliError(format!("bad --t-end: {e}")))?,
                );
                i += 2;
            }
            "--points" => {
                points = parse_value(&rest, i, "--points")?
                    .parse()
                    .map_err(|e| CliError(format!("bad --points: {e}")))?;
                i += 2;
            }
            "--fast" => {
                fast = true;
                i += 1;
            }
            "--stats" => {
                stats = true;
                i += 1;
            }
            other if other.starts_with("--") => {
                return Err(CliError(format!("unknown flag `{other}`")));
            }
            _ => {
                formulas.push(rest[i].clone());
                i += 1;
            }
        }
    }
    let need_m0 = || -> Result<mfcsl_core::Occupancy, CliError> {
        commands::parse_occupancy(
            m0_text
                .as_deref()
                .ok_or_else(|| CliError("--m0 is required for this command".into()))?,
        )
    };
    let need_formulas = || -> Result<&[String], CliError> {
        if formulas.is_empty() {
            Err(CliError("a formula argument is required".into()))
        } else {
            Ok(&formulas)
        }
    };

    match command.as_str() {
        "info" => commands::info(&model, file.params()),
        "check" => {
            let m0 = need_m0()?;
            commands::check(&model, &m0, need_formulas()?, fast, stats)
        }
        "csat" => {
            let m0 = need_m0()?;
            let theta = theta.ok_or_else(|| CliError("--theta is required for csat".into()))?;
            commands::csat(&model, &m0, theta, need_formulas()?, stats)
        }
        "trajectory" => {
            let m0 = need_m0()?;
            let t_end =
                t_end.ok_or_else(|| CliError("--t-end is required for trajectory".into()))?;
            commands::trajectory(&model, &m0, t_end, points)
        }
        "fixed-points" => commands::fixed_points(&model),
        other => Err(CliError(format!("unknown command `{other}`"))),
    }
}
