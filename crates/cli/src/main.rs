//! `mfcsl` — the command-line MF-CSL model checker.
//!
//! ```text
//! mfcsl info <model.mf>
//! mfcsl check <model.mf> --m0 0.8,0.15,0.05 "EP{<0.3}[ not_infected U[0,1] infected ]"
//! mfcsl csat <model.mf> --m0 0.8,0.15,0.05 --theta 20 "<formula>"
//! mfcsl trajectory <model.mf> --m0 0.8,0.15,0.05 --t-end 20 [--points 101]
//! mfcsl fixed-points <model.mf>
//! mfcsl serve modelfiles/ --addr 127.0.0.1:7171
//! mfcsl client 127.0.0.1:7171 check virus --m0 0.8,0.15,0.05 "<formula>"
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use mfcsl_cli::args;
use mfcsl_cli::commands::{self, CliError};
use mfcsl_cli::model_file::ModelFile;

/// Counts allocations so `--stats` can report how much heap traffic a
/// check generated (see `mfcsl_math::alloc_counter`); the overhead is a
/// few relaxed atomic updates per allocation.
#[global_allocator]
static GLOBAL: mfcsl_math::alloc_counter::CountingAlloc =
    mfcsl_math::alloc_counter::CountingAlloc;

const USAGE: &str = "\
mfcsl — MF-CSL model checker for mean-field models

USAGE:
  mfcsl info <model.mf>
  mfcsl check <model.mf> --m0 <fractions> [--fast] [--threads <N>] [--stats] \"<formula>\"...
  mfcsl csat <model.mf> --m0 <fractions> [--m0 <fractions>]... --theta <T> [--threads <N>] [--stats] [--batch-shared] \"<formula>\"...
  mfcsl simulate <model.mf> --m0 <fractions> --population <N> [--reps <R>] [--seed <S>] [--confidence <L>] [--sequential <HW>] [--threads <N>] [--stats] \"<formula>\"...
  mfcsl trajectory <model.mf> --m0 <fractions> --t-end <T> [--points <N>]
  mfcsl fixed-points <model.mf>
  mfcsl vectors <spec.json> --out <dir>
  mfcsl serve <model.mf | dir>... [--addr <host:port>] [--workers <N>] [--queue <N>] [--threads <N>] [--max-sessions <N>] [--loops <N>] [--blocking] [--state-dir <dir>] [--shards <N>]
  mfcsl client <host:port> check <model> --m0 <fractions> [--fast] [--simulate] [--population <N>] [--reps <R>] [--seed <S>] [--timeout-ms <T>] [--retry <N>] [--param k=v]... \"<formula>\"...
  mfcsl client <host:port> health|metrics|models|shutdown

  <fractions> is comma-separated and must sum to 1, e.g. 0.8,0.15,0.05.
  Formulas use the MF-CSL text syntax, e.g.
      EP{<0.3}[ not_infected U[0,1] infected ]
      E{>0.8}[ P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ] ]
  All formulas of one invocation share a single analysis session (one
  mean-field solve, shared satisfaction-set and curve caches) and fan out
  over a work-stealing thread pool: --threads <N> sets the lane count
  (default: the machine's available parallelism; results are bitwise
  identical at any thread count). csat accepts --m0 repeatedly and sweeps
  every formula over all initial occupancies in parallel; the sweep's
  missing trajectories are solved up front by one batched Dopri5 drive
  (per-lane controllers by default — bitwise identical to scalar solving;
  --batch-shared switches to one shared controller, cheaper but only
  within-tolerance). --stats prints
  the session's cache counters, per-solve timings with RHS-evaluation
  counts, the command's allocation count, per-kernel heap peaks (the
  resident matrix bytes each check/csat kernel held), and the pool's
  per-thread task counts.

  simulate is the statistical lane: instead of the mean-field limit it
  estimates each formula at finite population <N> from SSA replications
  (deterministic per --seed at any thread count) and prints the verdict
  with one confidence-interval line per E/ES/EP operator. --sequential
  <HW> switches from fixed-sample to Chow-Robbins stopping at target
  half-width <HW>. vectors regenerates the golden conformance-vector
  suite from a spec (see vectors/spec.json); verify.sh byte-compares the
  output against the committed vectors/ directory.

  serve runs the mfcsld batch-checking daemon over the given models; it
  keeps sessions warm per (model, params, tolerances) and answers with
  verdicts bitwise identical to offline check. client talks to it.
  By default the daemon serves on an epoll event loop (--loops threads)
  with HTTP keep-alive; --blocking restores the thread-per-connection
  core. --state-dir persists warm session state across restarts. With
  --shards N the process forks N worker daemons and serves as their
  router, placing each (model, params, tolerances) key on a fixed shard
  by consistent hash.
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    match run(argv) {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            // One line per error: scripts (and humans) get the cause
            // without a usage dump scrolling it away.
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: Vec<String>) -> Result<String, CliError> {
    let mut argv = argv.into_iter();
    let command = argv.next().ok_or_else(|| CliError("no command".into()))?;
    let rest: Vec<String> = argv.collect();

    // Commands with their own argument shapes dispatch before the common
    // `<model.mf> [flags]` path.
    match command.as_str() {
        "help" | "--help" | "-h" => return Ok(USAGE.to_string()),
        "serve" => return commands::serve(args::parse_serve(&rest)?),
        "client" => {
            let mut rest = rest.into_iter();
            let addr = rest
                .next()
                .ok_or_else(|| CliError("client needs the daemon's <host:port>".into()))?;
            let action = rest
                .next()
                .ok_or_else(|| CliError("client needs an action (check, health, …)".into()))?;
            let tail: Vec<String> = rest.collect();
            return if action == "check" {
                let mut tail = tail.into_iter();
                let model = tail
                    .next()
                    .ok_or_else(|| CliError("client check needs a model name".into()))?;
                let flags = args::parse_client_check(&tail.collect::<Vec<_>>())?;
                commands::client_check(&addr, &model, &flags)
            } else {
                commands::client_control(&addr, &action)
            };
        }
        "vectors" => {
            let mut rest = rest.into_iter();
            let spec = rest
                .next()
                .ok_or_else(|| CliError("vectors needs a <spec.json>".into()))?;
            let tail: Vec<String> = rest.collect();
            let out_dir = match tail.as_slice() {
                [flag, dir] if flag == "--out" => PathBuf::from(dir),
                [] => return Err(CliError("vectors needs --out <dir>".into())),
                other => {
                    return Err(CliError(format!(
                        "unexpected vectors arguments {other:?} (expected --out <dir>)"
                    )))
                }
            };
            return commands::vectors(&PathBuf::from(spec), &out_dir);
        }
        _ => {}
    }

    let mut rest = rest.into_iter();
    let model_path = rest
        .next()
        .ok_or_else(|| CliError("missing model file".into()))?;
    let file = ModelFile::load(&PathBuf::from(&model_path))?;
    let model = file.instantiate()?;
    let flags = args::parse_common(&rest.collect::<Vec<_>>())?;

    match command.as_str() {
        "info" => commands::info(&model, file.params()),
        "check" => commands::check(
            &model,
            &flags.single_m0()?,
            flags.formulas()?,
            flags.fast,
            flags.stats,
            flags.threads,
        ),
        "csat" => {
            let theta = flags
                .theta
                .ok_or_else(|| CliError("--theta is required for csat".into()))?;
            commands::csat(
                &model,
                &flags.all_m0s()?,
                theta,
                flags.formulas()?,
                flags.stats,
                flags.threads,
                flags.batch_shared,
            )
        }
        "simulate" => {
            commands::simulate(&model, &flags.single_m0()?, flags.formulas()?, &flags)
        }
        "trajectory" => {
            let t_end = flags
                .t_end
                .ok_or_else(|| CliError("--t-end is required for trajectory".into()))?;
            commands::trajectory(&model, &flags.single_m0()?, t_end, flags.points)
        }
        "fixed-points" => commands::fixed_points(&model),
        other => Err(CliError(format!(
            "unknown command `{other}` (run `mfcsl help` for usage)"
        ))),
    }
}
