//! Implementations of the CLI subcommands.
//!
//! Each command takes parsed inputs and returns its report as a `String`,
//! which keeps the logic unit-testable; `main` only does argument parsing
//! and printing.

use std::fmt::Write as _;
use std::sync::Arc;

use mfcsl_core::fixedpoint::{self, FixedPointOptions};
use mfcsl_core::mfcsl::{parse_formula, CheckSession, EngineStats, MfFormula, SolveKind};
use mfcsl_core::{meanfield, LocalModel, Occupancy};
use mfcsl_csl::Tolerances;
use mfcsl_math::alloc_counter;
use mfcsl_ode::{BatchMode, OdeOptions};
use mfcsl_pool::{PoolStats, ThreadPool};

/// Error type of the CLI layer: a human-readable message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

macro_rules! from_error {
    ($($ty:ty),* $(,)?) => {
        $(impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError(e.to_string())
            }
        })*
    };
}

from_error!(
    mfcsl_core::CoreError,
    mfcsl_csl::CslError,
    mfcsl_ode::OdeError,
    mfcsl_math::MathError,
    crate::model_file::ModelFileError,
    crate::expr::ExprError,
);

/// Parses a comma-separated occupancy vector (`0.8,0.15,0.05`).
///
/// # Errors
///
/// Returns [`CliError`] for malformed numbers or an invalid distribution.
pub fn parse_occupancy(text: &str) -> Result<Occupancy, CliError> {
    let fractions: Result<Vec<f64>, _> = text.split(',').map(|p| p.trim().parse::<f64>()).collect();
    let fractions = fractions.map_err(|e| CliError(format!("bad occupancy `{text}`: {e}")))?;
    Occupancy::new(fractions).map_err(|e| CliError(format!("bad occupancy `{text}`: {e}")))
}

/// `mfcsl info <model>` — summarizes a model.
///
/// # Errors
///
/// Propagates evaluation failures as [`CliError`].
pub fn info(
    model: &LocalModel,
    params: &std::collections::BTreeMap<String, f64>,
) -> Result<String, CliError> {
    let mut out = String::new();
    writeln!(out, "states ({}):", model.n_states()).expect("write to string");
    for (i, name) in model.state_names().iter().enumerate() {
        let labels: Vec<String> = model.labeling().of(i).iter().cloned().collect();
        writeln!(out, "  {i}: {name}  [{}]", labels.join(", ")).expect("write to string");
    }
    writeln!(out, "parameters:").expect("write to string");
    for (k, v) in params {
        writeln!(out, "  {k} = {v}").expect("write to string");
    }
    let uniform = Occupancy::uniform(model.n_states())?;
    writeln!(
        out,
        "generator at the uniform occupancy:\n{}",
        model.generator_at(&uniform)?
    )
    .expect("write to string");
    Ok(out)
}

/// `mfcsl check <model> --m0 … [--fast] [--threads N] [--stats]
/// "<formula>"…`.
///
/// All formulas of the invocation are checked through one memoizing
/// [`CheckSession`], so they share the mean-field trajectory (solved once
/// to the batch's maximum horizon), the per-subformula CSL caches, and
/// the stationary regime. The per-formula checks fan out over a thread
/// pool of `threads` lanes (`None` → the machine's available
/// parallelism); verdicts are bitwise identical at any thread count.
/// `--stats` appends the session's counters and the pool's per-thread
/// task counts.
///
/// # Errors
///
/// Propagates parse/check failures as [`CliError`].
pub fn check(
    model: &LocalModel,
    m0: &Occupancy,
    formulas: &[String],
    fast: bool,
    show_stats: bool,
    threads: Option<usize>,
) -> Result<String, CliError> {
    let alloc_base = alloc_counter::begin();
    let psis = parse_formulas(formulas)?;
    let pool = pool(threads);
    let session = session(model, fast).with_pool(Arc::clone(&pool));
    let verdicts = session.check_all(&psis, m0)?;
    let mut out = String::new();
    for (psi, verdict) in psis.iter().zip(&verdicts) {
        out.push_str(&verdict_line(
            &m0.to_string(),
            &psi.to_string(),
            verdict.holds(),
            verdict.is_marginal(),
            fast,
        ));
        out.push('\n');
        if show_stats {
            if let Some(r) = verdict.refinement() {
                writeln!(
                    out,
                    "    refinement: {} round{}, final margin {:.3e}, {}",
                    r.rounds,
                    if r.rounds == 1 { "" } else { "s" },
                    r.final_margin,
                    if r.decided { "decided" } else { "budget exhausted" }
                )
                .expect("write to string");
            }
        }
    }
    if show_stats {
        out.push_str(&format_stats(&session.stats(), Some(&pool.stats()), alloc_base));
    }
    Ok(out)
}

/// `mfcsl csat <model> --m0 … [--m0 …]… --theta T [--threads N] [--stats]
/// [--batch-shared] "<formula>"…`.
///
/// Like [`check`], all formulas share one [`CheckSession`]. With several
/// `--m0` flags, each formula is swept over all initial occupancies: the
/// missing trajectories are first solved by **one** batched Dopri5 drive
/// ([`CheckSession::prewarm`]), then the per-occupancy checks fan out
/// over the pool, one task per occupancy, with bitwise-identical interval
/// sets at any thread count. `--batch-shared` switches the prewarm from
/// per-lane step-size controllers (bitwise identical to scalar solving)
/// to one shared controller (fewer RHS evaluations, within-tolerance).
/// `--stats` lists each solve with its accepted/rejected step counts and,
/// for batched solves, the lane it rode.
///
/// # Errors
///
/// Propagates parse/check failures as [`CliError`].
pub fn csat(
    model: &LocalModel,
    m0s: &[Occupancy],
    theta: f64,
    formulas: &[String],
    show_stats: bool,
    threads: Option<usize>,
    batch_shared: bool,
) -> Result<String, CliError> {
    let alloc_base = alloc_counter::begin();
    let psis = parse_formulas(formulas)?;
    let pool = pool(threads);
    let mode = if batch_shared {
        BatchMode::Shared
    } else {
        BatchMode::PerLane
    };
    let session = session(model, false)
        .with_pool(Arc::clone(&pool))
        .with_batch_mode(mode);
    let mut out = String::new();
    for psi in &psis {
        for (m0, set) in m0s.iter().zip(session.csat_sweep(psi, m0s, theta)?) {
            writeln!(
                out,
                "cSat({psi}, {m0}, {theta}) = {set}   (measure {:.6})",
                set.measure()
            )
            .expect("write to string");
        }
    }
    if show_stats {
        out.push_str(&format_stats(&session.stats(), Some(&pool.stats()), alloc_base));
    }
    Ok(out)
}

/// `mfcsl simulate <model> --m0 … --population N [--reps R] [--seed S]
/// [--confidence L] [--sequential HW] [--threads N] "<formula>"…`.
///
/// Statistical model checking at finite `N`: the formulas are estimated
/// by SSA replications through one [`mfcsl_smc::SmcSession`] (shared
/// sampled-path batch) and printed through the same [`verdict_line`] as
/// the mean-field `check`, followed by one estimate line per operator
/// with its confidence interval. `--sequential <hw>` switches from
/// fixed-sample to Chow–Robbins stopping with target half-width `hw`.
///
/// # Errors
///
/// Propagates parse/simulation failures as [`CliError`].
pub fn simulate(
    model: &LocalModel,
    m0: &Occupancy,
    formulas: &[String],
    flags: &crate::args::CommonFlags,
) -> Result<String, CliError> {
    let population = flags
        .population
        .ok_or_else(|| CliError("--population is required for simulate".into()))?;
    let psis = parse_formulas(formulas)?;
    let mut options = mfcsl_smc::SmcOptions::new(population);
    if let Some(reps) = flags.reps {
        options.replications = reps;
    }
    options.seed = flags.seed;
    options.z = z_for_confidence(flags.confidence)?;
    options.threads = flags.threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    if let Some(target_half_width) = flags.sequential {
        options.stopping = mfcsl_smc::Stopping::Sequential {
            target_half_width,
            step: options.replications,
            max_replications: options.replications.saturating_mul(50),
        };
    }
    let session = mfcsl_smc::SmcSession::new(model, options)?;
    let verdicts = session.check_all(&psis, m0)?;
    let mut out = String::new();
    for (psi, v) in psis.iter().zip(&verdicts) {
        out.push_str(&verdict_line(
            &m0.to_string(),
            &psi.to_string(),
            v.holds,
            v.marginal,
            false,
        ));
        out.push('\n');
        for op in &v.operators {
            writeln!(
                out,
                "    {}: estimate {:.6} in [{:.6}, {:.6}]  ({} replications, N = {}, {:.0}% CI)",
                op.operator,
                op.estimate.mean,
                op.estimate.lo,
                op.estimate.hi,
                op.estimate.n,
                v.population,
                flags.confidence * 100.0,
            )
            .expect("write to string");
        }
    }
    if flags.stats {
        let s = session.stats();
        writeln!(
            out,
            "smc statistics: {} replications run, {} batch hits, {} batch misses",
            s.replications_run, s.batch_hits, s.batch_misses
        )
        .expect("write to string");
    }
    Ok(out)
}

/// Two-sided z-scores for the supported `--confidence` levels.
fn z_for_confidence(level: f64) -> Result<f64, CliError> {
    const TABLE: &[(f64, f64)] = &[
        (0.80, 1.2816),
        (0.90, 1.6449),
        (0.95, 1.96),
        (0.98, 2.3263),
        (0.99, 2.5758),
        (0.999, 3.2905),
    ];
    for (l, z) in TABLE {
        if (level - l).abs() < 1e-9 {
            return Ok(*z);
        }
    }
    Err(CliError(format!(
        "--confidence {level} is not supported (use 0.8, 0.9, 0.95, 0.98, 0.99 or 0.999)"
    )))
}

/// Renders one verdict line. The offline `check` command and the wire
/// client both print through this helper, so daemon output is bitwise
/// identical to offline output for the same verdicts.
#[must_use]
pub fn verdict_line(m0: &str, psi: &str, holds: bool, marginal: bool, fast: bool) -> String {
    format!(
        "{} {} {}{}{}",
        m0,
        if holds { "⊨" } else { "⊭" },
        psi,
        if marginal {
            "   (marginal: value within numerical margin of the bound)"
        } else {
            ""
        },
        if fast { " (fast tolerances)" } else { "" },
    )
}

fn parse_formulas(formulas: &[String]) -> Result<Vec<MfFormula>, CliError> {
    formulas
        .iter()
        .map(|f| parse_formula(f).map_err(CliError::from))
        .collect()
}

fn session(model: &LocalModel, fast: bool) -> CheckSession<'_> {
    if fast {
        CheckSession::with_tolerances(model, Tolerances::fast())
    } else {
        CheckSession::new(model)
    }
}

/// Builds the checking pool: `--threads N` or the machine's available
/// parallelism.
fn pool(threads: Option<usize>) -> Arc<ThreadPool> {
    Arc::new(match threads {
        Some(n) => ThreadPool::new(n),
        None => ThreadPool::with_default_parallelism(),
    })
}

/// Renders a session's [`EngineStats`] as the `--stats` block.
///
/// `alloc_base` is the allocation-counter snapshot taken when the command
/// started; the allocation line only appears when the binary installed the
/// counting allocator (the `mfcsl` binary does, library tests do not).
fn format_stats(
    stats: &EngineStats,
    pool: Option<&PoolStats>,
    alloc_base: alloc_counter::Snapshot,
) -> String {
    let mut out = String::from("engine statistics:\n");
    writeln!(
        out,
        "  trajectories: {} solved, {} extended, {} reused",
        stats.trajectory_solves, stats.trajectory_extensions, stats.trajectory_reuses
    )
    .expect("write to string");
    writeln!(
        out,
        "  stationary regimes: {} solved, {} reused",
        stats.regime_solves, stats.regime_reuses
    )
    .expect("write to string");
    writeln!(
        out,
        "  recoveries: {} ({} stiff fallbacks)",
        stats.recoveries, stats.stiff_fallbacks
    )
    .expect("write to string");
    writeln!(
        out,
        "  refined verdicts: {} ({} tightening rounds)",
        stats.refined_verdicts, stats.refine_rounds
    )
    .expect("write to string");
    let c = &stats.cache;
    writeln!(
        out,
        "  interned formulas: {} state, {} path",
        c.interned_state_formulas, c.interned_path_formulas
    )
    .expect("write to string");
    writeln!(
        out,
        "  sat sets: {} hits, {} misses ({} cached)",
        c.set_hits, c.set_misses, c.cached_sets
    )
    .expect("write to string");
    writeln!(
        out,
        "  prob curves: {} hits, {} misses ({} cached)",
        c.curve_hits, c.curve_misses, c.cached_curves
    )
    .expect("write to string");
    if stats.batch_prewarmed > 0 {
        writeln!(
            out,
            "  batch prewarm: {} lanes solved by one batched drive",
            stats.batch_prewarmed
        )
        .expect("write to string");
    }
    for s in &stats.solves {
        let lane = match s.batch_lane {
            Some(l) => format!(", batch lane {l}"),
            None => String::new(),
        };
        writeln!(
            out,
            "  {} [{:.3}, {:.3}]: {} steps ({} rejected), {} rhs evals, {:.3} ms{lane}",
            match s.kind {
                SolveKind::Fresh => "solve ",
                SolveKind::Extension => "extend",
                SolveKind::Refinement => "refine",
            },
            s.t_from,
            s.t_to,
            s.ode_steps,
            s.rejected_steps,
            s.rhs_evals,
            s.wall.as_secs_f64() * 1e3
        )
        .expect("write to string");
    }
    let total_rhs: usize = stats.solves.iter().map(|s| s.rhs_evals).sum();
    writeln!(out, "  ode rhs evaluations: {total_rhs} total").expect("write to string");
    if !stats.kernel_allocs.is_empty() {
        out.push_str("  kernel heap peaks (resident matrix bytes above kernel entry):\n");
        for k in &stats.kernel_allocs {
            writeln!(
                out,
                "    {}: {} peak bytes ({} allocations)",
                k.kernel, k.peak_bytes, k.allocations
            )
            .expect("write to string");
        }
    }
    if alloc_counter::installed() {
        let d = alloc_counter::delta(alloc_base);
        writeln!(
            out,
            "  allocations: {} ({} peak bytes above entry)",
            d.allocations, d.peak_bytes
        )
        .expect("write to string");
    }
    if let Some(p) = pool {
        let per_thread: Vec<String> = p.tasks_per_thread.iter().map(u64::to_string).collect();
        writeln!(
            out,
            "  pool: {} threads, {} tasks (per thread: {}), utilization {:.1}%",
            p.threads,
            p.total_tasks,
            per_thread.join("/"),
            p.utilization * 100.0
        )
        .expect("write to string");
    }
    out
}

/// `mfcsl trajectory <model> --m0 … --t-end T [--points N]` — CSV of the
/// occupancy trajectory.
///
/// # Errors
///
/// Propagates solver failures as [`CliError`].
pub fn trajectory(
    model: &LocalModel,
    m0: &Occupancy,
    t_end: f64,
    points: usize,
) -> Result<String, CliError> {
    if points < 2 {
        return Err(CliError("--points must be at least 2".into()));
    }
    let sol = meanfield::solve(model, m0, t_end, &OdeOptions::default())?;
    let mut out = String::from("t");
    for name in model.state_names() {
        write!(out, ",{name}").expect("write to string");
    }
    out.push('\n');
    for i in 0..points {
        let t = t_end * i as f64 / (points - 1) as f64;
        let m = sol.occupancy_at(t);
        write!(out, "{t:.6}").expect("write to string");
        for v in m.as_slice() {
            write!(out, ",{v:.9}").expect("write to string");
        }
        out.push('\n');
    }
    Ok(out)
}

/// `mfcsl fixed-points <model>`.
///
/// # Errors
///
/// Propagates search failures as [`CliError`].
pub fn fixed_points(model: &LocalModel) -> Result<String, CliError> {
    let fps = fixedpoint::find_all(model, 16, 20_260_705, &FixedPointOptions::default())?;
    if fps.is_empty() {
        return Ok("no fixed points found from the search battery".into());
    }
    let mut out = String::new();
    for fp in fps {
        writeln!(
            out,
            "m̃ = {}  {:?} (spectral abscissa {:+.6}, residual {:.2e})",
            fp.occupancy, fp.stability, fp.spectral_abscissa, fp.residual
        )
        .expect("write to string");
    }
    Ok(out)
}

/// `mfcsl serve <models>… [--addr A] [--workers N] [--queue N]
/// [--threads N] [--max-sessions N] [--loops N] [--blocking]
/// [--state-dir D] [--shards N] [--allow-sleep]` — runs the `mfcsld`
/// daemon (or, with `--shards`, a shard router over forked daemons).
///
/// Prints a `mfcsld listening on <addr> …` line (flushed before the accept
/// loop starts, so scripts can parse the ephemeral port), then blocks until
/// a `POST /shutdown` drains the queue.
///
/// # Errors
///
/// Registry and bind failures become [`CliError`].
pub fn serve(flags: crate::args::ServeFlags) -> Result<String, CliError> {
    use std::io::Write as _;
    if flags.shards > 0 {
        return serve_router(&flags);
    }
    let registry =
        mfcsl_serve::ModelRegistry::load(&flags.paths).map_err(|e| CliError(e.to_string()))?;
    let n_models = registry.len();
    let core = if flags.blocking {
        mfcsl_serve::ServingCore::Blocking
    } else {
        mfcsl_serve::ServingCore::EventLoop
    };
    let config = mfcsl_serve::ServerConfig {
        addr: flags.addr,
        workers: flags.workers,
        queue_capacity: flags.queue,
        threads: flags.threads,
        max_sessions: flags.max_sessions,
        allow_sleep: flags.allow_sleep,
        allow_faults: flags.allow_faults,
        core,
        event_loops: flags.event_loops,
        state_dir: flags.state_dir.clone(),
    };
    let workers = config.workers;
    let queue = config.queue_capacity;
    let core_desc = match core {
        mfcsl_serve::ServingCore::EventLoop => format!("epoll x{}", flags.event_loops),
        mfcsl_serve::ServingCore::Blocking => "blocking".to_string(),
    };
    let server = mfcsl_serve::Server::bind(registry, config)
        .map_err(|e| CliError(format!("cannot bind: {e}")))?;
    println!(
        "mfcsld listening on {} ({n_models} models, {workers} workers, queue {queue}, {core_desc} core)",
        server.local_addr()
    );
    std::io::stdout().flush().expect("flush stdout");
    server
        .run()
        .map_err(|e| CliError(format!("daemon failed: {e}")))?;
    Ok("mfcsld stopped\n".into())
}

/// How often the supervisor sweeps the fleet (`try_wait` + liveness probe).
const SUPERVISE_INTERVAL: std::time::Duration = std::time::Duration::from_millis(250);
/// Budget for one supervisor `/healthz` probe (connect + write + read).
const PROBE_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(500);
/// Consecutive failed probes before a live-but-wedged shard is killed and
/// restarted (a dead process restarts immediately; this is for hangs).
const PROBE_FAILS_TO_RESTART: u32 = 3;
/// Restart backoff: `BASE · 2^attempt` + deterministic jitter, capped.
const BACKOFF_BASE_MS: u64 = 200;
const BACKOFF_CAP_MS: u64 = 5_000;

/// Deterministic restart jitter: an xorshift64 draw seeded from the shard
/// index and attempt number, so N shards crashing together never thunder
/// back in lockstep — and a given crash history always replays the same
/// schedule (no wall-clock or RNG state in the supervisor).
fn restart_jitter_ms(shard: usize, attempt: u32, span_ms: u64) -> u64 {
    let mut x = (shard as u64 + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(attempt + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x % (span_ms + 1)
}

/// Spawns worker shard `i` on an ephemeral port, parses its announce line,
/// and hands its stdout to a background drain thread (a shard that logs —
/// snapshot writes, stats — must never wedge on a full 64 KiB pipe because
/// the router stopped reading after the announce).
fn spawn_shard(
    exe: &std::path::Path,
    flags: &crate::args::ServeFlags,
    i: usize,
) -> Result<(std::process::Child, std::net::SocketAddr), CliError> {
    use std::io::{BufRead as _, BufReader};
    use std::process::{Command, Stdio};

    let mut cmd = Command::new(exe);
    cmd.arg("serve");
    for path in &flags.paths {
        cmd.arg(path);
    }
    cmd.arg("--addr").arg("127.0.0.1:0");
    cmd.arg("--workers").arg(flags.workers.to_string());
    cmd.arg("--queue").arg(flags.queue.to_string());
    cmd.arg("--max-sessions").arg(flags.max_sessions.to_string());
    cmd.arg("--loops").arg(flags.event_loops.to_string());
    if flags.threads > 0 {
        cmd.arg("--threads").arg(flags.threads.to_string());
    }
    if flags.allow_sleep {
        cmd.arg("--allow-sleep");
    }
    if flags.allow_faults {
        cmd.arg("--allow-faults");
    }
    if flags.blocking {
        cmd.arg("--blocking");
    }
    if let Some(dir) = &flags.state_dir {
        cmd.arg("--state-dir").arg(dir.join(format!("shard-{i}")));
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
    let mut child = cmd
        .spawn()
        .map_err(|e| CliError(format!("cannot spawn shard {i}: {e}")))?;
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(CliError(format!("shard {i} has no stdout pipe")));
    };
    let mut reader = BufReader::new(stdout);
    // The child announces `mfcsld listening on <addr> …` before its
    // accept loop starts; parse the ephemeral port from that line.
    let mut addr = None;
    for _ in 0..64 {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if let Some(rest) = line.strip_prefix("mfcsld listening on ") {
                    addr = rest
                        .split_whitespace()
                        .next()
                        .and_then(|a| a.parse::<std::net::SocketAddr>().ok());
                    break;
                }
            }
        }
    }
    let Some(addr) = addr else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(CliError(format!("shard {i} failed to announce its address")));
    };
    // Drain the rest of the child's stdout forever; the thread exits on
    // the pipe's EOF when the child dies.
    std::thread::spawn(move || {
        let _ = std::io::copy(&mut reader, &mut std::io::sink());
    });
    Ok((child, addr))
}

/// The supervisor's monitor loop: sweep every [`SUPERVISE_INTERVAL`],
/// detect dead (`try_wait`) or wedged (consecutive `/healthz` probe
/// failures) shards, and restart them with exponential backoff. A restarted
/// shard rebinds an ephemeral port, warm-restores from its own
/// `shard-<i>` snapshot directory (same `--state-dir` subpath), and is
/// swapped into the router via `replace_shard` — same slot, same keys.
fn supervise_fleet(
    exe: &std::path::Path,
    flags: &crate::args::ServeFlags,
    router: &mfcsl_serve::Router,
    children: &std::sync::Mutex<Vec<std::process::Child>>,
    shutdown: &std::sync::atomic::AtomicBool,
) {
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    let n = flags.shards;
    let mut probe_fails = vec![0u32; n];
    // Restart attempt counter per shard: grows across a crash loop (the
    // backoff exponent), resets only once a restarted shard answers a
    // probe — a shard that dies instantly on every start backs off to the
    // cap instead of being respawned hot.
    let mut attempts = vec![0u32; n];
    let sleep_checking_shutdown = |total: Duration| {
        let mut left = total;
        while left > Duration::ZERO && !shutdown.load(Ordering::SeqCst) {
            let step = left.min(Duration::from_millis(50));
            std::thread::sleep(step);
            left -= step;
        }
    };
    while !shutdown.load(Ordering::SeqCst) {
        sleep_checking_shutdown(SUPERVISE_INTERVAL);
        for i in 0..n {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            let exited = {
                let mut kids = children
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                match kids.get_mut(i).map(std::process::Child::try_wait) {
                    Some(Ok(Some(_))) => true,
                    Some(Ok(None) | Err(_)) => false,
                    None => continue,
                }
            };
            let mut needs_restart = exited;
            if !exited {
                let healthy = router
                    .shard_addr(i)
                    .is_some_and(|addr| mfcsl_serve::probe_healthz(&addr, PROBE_TIMEOUT));
                if healthy {
                    probe_fails[i] = 0;
                    attempts[i] = 0;
                } else {
                    probe_fails[i] += 1;
                    router.note_probe_failure();
                    if probe_fails[i] >= PROBE_FAILS_TO_RESTART {
                        // Alive but wedged: kill it and fall through to
                        // the restart path.
                        let mut kids = children
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        if let Some(child) = kids.get_mut(i) {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                        needs_restart = true;
                    }
                }
            }
            if !needs_restart || shutdown.load(Ordering::SeqCst) {
                continue;
            }
            probe_fails[i] = 0;
            let exp = attempts[i].min(5);
            let base = (BACKOFF_BASE_MS << exp).min(BACKOFF_CAP_MS);
            let jitter = restart_jitter_ms(i, attempts[i], base / 2);
            attempts[i] = attempts[i].saturating_add(1);
            sleep_checking_shutdown(Duration::from_millis(
                (base + jitter).min(BACKOFF_CAP_MS),
            ));
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match spawn_shard(exe, flags, i) {
                Ok((child, addr)) => {
                    router.replace_shard(i, addr);
                    let mut kids = children
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if let Some(slot) = kids.get_mut(i) {
                        *slot = child;
                    }
                    eprintln!(
                        "mfcsld supervisor: restarted shard {i} on {addr} (attempt {})",
                        attempts[i]
                    );
                }
                Err(e) => {
                    eprintln!("mfcsld supervisor: shard {i} restart failed: {e}");
                }
            }
        }
    }
}

/// `--shards N` mode: fork `N` worker daemons on ephemeral ports, then
/// serve as their consistent-hash router on the requested address. Each
/// shard gets its own `--state-dir` subdirectory (`shard-<i>`), so warm
/// snapshots stay with the shard that owns the key. A supervisor thread
/// restarts dead or wedged shards for the router's whole lifetime (see
/// [`supervise_fleet`]).
fn serve_router(flags: &crate::args::ServeFlags) -> Result<String, CliError> {
    use std::io::Write as _;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    // Validate the registry up front so a typo'd model path fails in one
    // process with one message, not N times from N children.
    let registry =
        mfcsl_serve::ModelRegistry::load(&flags.paths).map_err(|e| CliError(e.to_string()))?;
    let n_models = registry.len();
    drop(registry);

    let exe = std::env::current_exe()
        .map_err(|e| CliError(format!("cannot locate own executable: {e}")))?;
    let mut children: Vec<std::process::Child> = Vec::new();
    let mut shards = Vec::new();
    let kill_all = |children: &mut Vec<std::process::Child>| {
        for child in children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    };
    for i in 0..flags.shards {
        match spawn_shard(&exe, flags, i) {
            Ok((child, addr)) => {
                shards.push(mfcsl_serve::ShardSpec { addr });
                children.push(child);
            }
            Err(e) => {
                kill_all(&mut children);
                return Err(e);
            }
        }
    }

    let listener = match std::net::TcpListener::bind(&flags.addr) {
        Ok(l) => l,
        Err(e) => {
            kill_all(&mut children);
            return Err(CliError(format!("cannot bind router: {e}")));
        }
    };
    let local_addr = listener
        .local_addr()
        .map_err(|e| CliError(format!("cannot resolve router address: {e}")))?;
    let shard_list = shards
        .iter()
        .map(|s| s.addr.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let pid_list = children
        .iter()
        .map(|c| c.id().to_string())
        .collect::<Vec<_>>()
        .join(", ");
    println!(
        "mfcsld router listening on {local_addr} ({} shards: {shard_list}; pids {pid_list}; {n_models} models)",
        shards.len()
    );
    std::io::stdout().flush().expect("flush stdout");

    let router = Arc::new(mfcsl_serve::Router::new(&mfcsl_serve::RouterConfig {
        shards,
        ..mfcsl_serve::RouterConfig::default()
    }));
    let shutdown = Arc::new(AtomicBool::new(false));
    let options = mfcsl_serve::ReactorOptions {
        event_loops: flags.event_loops,
        workers: flags.workers,
        queue_capacity: flags.queue,
        max_body: 1 << 20,
        idle_timeout: std::time::Duration::from_secs(10),
        metrics: Arc::new(mfcsl_serve::metrics::ServerMetrics::new()),
        shutdown: Arc::clone(&shutdown),
        queue_depth: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
    };
    let children = Mutex::new(children);
    // The supervisor borrows `flags` (respawns need the exact original
    // configuration), so it lives in a scope rather than a detached thread.
    let run_result = std::thread::scope(|scope| {
        let supervisor = scope.spawn(|| {
            supervise_fleet(&exe, flags, &router, &children, &shutdown);
        });
        let result = mfcsl_serve::reactor::run(listener, Arc::clone(&router) as _, options);
        // The reactor sets the flag on a drain; set it again so the
        // supervisor also exits when the reactor failed outright.
        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        let _ = supervisor.join();
        result
    });

    // The router's /shutdown already fanned the drain out to every shard;
    // give each child a grace window, then force-kill stragglers so the
    // router process can never hang on a wedged shard.
    let mut children = children
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for child in &mut children {
        let mut exited = false;
        for _ in 0..100 {
            match child.try_wait() {
                Ok(Some(_)) => {
                    exited = true;
                    break;
                }
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(100)),
                Err(_) => break,
            }
        }
        if !exited {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    run_result.map_err(|e| CliError(format!("router failed: {e}")))?;
    Ok("mfcsld router stopped\n".into())
}

/// `mfcsl client <addr> check <model> --m0 … [--fast] [--timeout-ms T]
/// [--param k=v]… "<formula>"…` — posts one batch to a running daemon.
///
/// Output lines are rendered through [`verdict_line`] from the daemon's
/// echoed (parsed-and-rendered) occupancy and formulas, so they are
/// bitwise identical to `mfcsl check` run offline against the same model.
///
/// # Errors
///
/// Transport failures and non-200 statuses become [`CliError`].
pub fn client_check(
    addr: &str,
    model: &str,
    flags: &crate::args::ClientCheckFlags,
) -> Result<String, CliError> {
    let request = mfcsl_serve::CheckRequest {
        model: model.to_string(),
        m0: flags.m0.clone(),
        formulas: flags.formulas.clone(),
        fast: flags.fast,
        params: flags.params.clone(),
        timeout_ms: flags.timeout_ms,
        sleep_ms: None,
        fault: None,
        mode: flags.simulate.then(|| "simulate".to_string()),
        population: flags.population,
        replications: flags.replications,
        seed: flags.seed,
    };
    let outcome = mfcsl_serve::client::post_check_with_retry(addr, &request, flags.retry)
        .map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    for v in &outcome.verdicts {
        out.push_str(&verdict_line(
            &outcome.m0,
            &v.formula,
            v.holds,
            v.marginal,
            flags.fast,
        ));
        out.push('\n');
    }
    Ok(out)
}

/// `mfcsl client <addr> <health|metrics|models|shutdown>` — the daemon's
/// maintenance endpoints.
///
/// # Errors
///
/// Transport failures and non-200 statuses become [`CliError`].
pub fn client_control(addr: &str, action: &str) -> Result<String, CliError> {
    let map = |e: mfcsl_serve::ClientError| CliError(e.to_string());
    match action {
        "health" => mfcsl_serve::client::get_text(addr, "/healthz").map_err(map),
        "metrics" => mfcsl_serve::client::get_text(addr, "/metrics").map_err(map),
        "models" => mfcsl_serve::client::get_text(addr, "/v1/models").map_err(map),
        "shutdown" => {
            mfcsl_serve::client::shutdown(addr).map_err(map)?;
            Ok("draining\n".into())
        }
        other => Err(CliError(format!(
            "unknown client action `{other}` (expected check, health, metrics, models or shutdown)"
        ))),
    }
}

/// `mfcsl vectors <spec.json> --out <dir>` — regenerates the golden
/// conformance-vector suite.
///
/// The spec (`schema: "mfcsl-vectors-spec-v1"`) lists suites of
/// `(model, formulas, m0, tolerance)` plus the simulation parameters; for
/// each suite this emits `<out>/<name>.json` (`schema:
/// "mfcsl-vectors-v1"`) containing the mean-field verdicts, an FNV-1a
/// digest of the mean-field occupancy curve on a fixed grid, the
/// finite-N statistical verdicts with their confidence intervals, and an
/// FNV-1a digest over the estimate bits. verify.sh regenerates the suite
/// and byte-compares it against the committed `vectors/` directory, so
/// any refactor that changes a solver or sampler bit fails the gate.
///
/// # Errors
///
/// Returns [`CliError`] for unreadable specs, malformed suites, and
/// engine failures.
pub fn vectors(spec_path: &std::path::Path, out_dir: &std::path::Path) -> Result<String, CliError> {
    use mfcsl_serve::snapshot::fnv1a64;
    use mfcsl_serve::Json;

    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| CliError(format!("cannot read spec {}: {e}", spec_path.display())))?;
    let spec = Json::parse(&text).map_err(|e| CliError(format!("bad spec: {e}")))?;
    if spec.get("schema").and_then(Json::as_str) != Some("mfcsl-vectors-spec-v1") {
        return Err(CliError(
            "spec schema must be \"mfcsl-vectors-spec-v1\"".into(),
        ));
    }
    let base = spec_path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."));
    let suites = spec
        .get("suites")
        .and_then(Json::as_arr)
        .ok_or_else(|| CliError("spec needs a `suites` array".into()))?;
    std::fs::create_dir_all(out_dir)
        .map_err(|e| CliError(format!("cannot create {}: {e}", out_dir.display())))?;

    let field_str = |suite: &Json, key: &str| -> Result<String, CliError> {
        suite
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| CliError(format!("suite needs a string field `{key}`")))
    };
    let field_count = |suite: &Json, key: &str| -> Result<usize, CliError> {
        let v = suite
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| CliError(format!("suite needs a numeric field `{key}`")))?;
        if !(v.is_finite() && v >= 1.0 && v.fract() == 0.0 && v <= 9.0e15) {
            return Err(CliError(format!("suite field `{key}` must be a positive integer")));
        }
        Ok(v as usize)
    };

    let mut report = String::new();
    for suite in suites {
        let name = field_str(suite, "name")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(CliError(format!(
                "suite name `{name}` must be non-empty [A-Za-z0-9_-]"
            )));
        }
        let model_rel = field_str(suite, "model")?;
        let tolerance = field_str(suite, "tolerance")?;
        let fast = match tolerance.as_str() {
            "default" => false,
            "fast" => true,
            other => {
                return Err(CliError(format!(
                    "suite tolerance must be `default` or `fast`, got `{other}`"
                )))
            }
        };
        let file = crate::model_file::ModelFile::load(&base.join(&model_rel))?;
        let model = file.instantiate()?;
        let m0_vals: Vec<f64> = suite
            .get("m0")
            .and_then(Json::as_arr)
            .ok_or_else(|| CliError("suite needs an `m0` array".into()))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| CliError("m0 entries must be numbers".into())))
            .collect::<Result<_, _>>()?;
        let m0 = Occupancy::new(m0_vals.clone())?;
        let population = field_count(suite, "population")?;
        let replications = field_count(suite, "replications")?;
        let seed = field_count(suite, "seed")? as u64;
        let points = field_count(suite, "points")?.max(2);
        let horizon = suite
            .get("horizon")
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| CliError("suite needs a positive `horizon`".into()))?;
        let formula_texts: Vec<String> = suite
            .get("formulas")
            .and_then(Json::as_arr)
            .ok_or_else(|| CliError("suite needs a `formulas` array".into()))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| CliError("formulas must be strings".into()))
            })
            .collect::<Result<_, _>>()?;
        let psis = parse_formulas(&formula_texts)?;

        // Mean-field lane: verdicts plus a bit-exact digest of the
        // occupancy curve on the fixed grid.
        let mf_session = session(&model, fast);
        let mf_verdicts = mf_session.check_all(&psis, &m0)?;
        let traj = meanfield::solve(&model, &m0, horizon, &OdeOptions::default())?;
        let mut curve_bytes = Vec::with_capacity(points * model.n_states() * 8);
        for i in 0..points {
            let t = horizon * i as f64 / (points - 1) as f64;
            for v in traj.occupancy_at(t).as_slice() {
                curve_bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        let curve_digest = fnv1a64(&curve_bytes);

        // Statistical lane: finite-N verdicts with interval digests. Two
        // threads exercises the sharding-invariance the digests pin.
        let mut options = mfcsl_smc::SmcOptions::new(population);
        options.replications = replications;
        options.seed = seed;
        options.threads = 2;
        let smc = mfcsl_smc::SmcSession::new(&model, options)?;
        let sim_verdicts = smc.check_all(&psis, &m0)?;

        let mut entries = Vec::new();
        for ((text, mf), sim) in formula_texts.iter().zip(&mf_verdicts).zip(&sim_verdicts) {
            let mut est_bytes = Vec::with_capacity(sim.operators.len() * 24);
            let mut estimates = Vec::new();
            for op in &sim.operators {
                for v in [op.estimate.mean, op.estimate.lo, op.estimate.hi] {
                    est_bytes.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                estimates.push(Json::Obj(vec![
                    ("operator".into(), Json::Str(op.operator.clone())),
                    ("mean".into(), Json::Num(op.estimate.mean)),
                    ("lo".into(), Json::Num(op.estimate.lo)),
                    ("hi".into(), Json::Num(op.estimate.hi)),
                    ("n".into(), Json::Num(op.estimate.n as f64)),
                ]));
            }
            entries.push(Json::Obj(vec![
                ("formula".into(), Json::Str(text.clone())),
                (
                    "meanfield".into(),
                    Json::Obj(vec![
                        ("holds".into(), Json::Bool(mf.holds())),
                        ("marginal".into(), Json::Bool(mf.is_marginal())),
                    ]),
                ),
                (
                    "simulate".into(),
                    Json::Obj(vec![
                        ("holds".into(), Json::Bool(sim.holds)),
                        ("marginal".into(), Json::Bool(sim.marginal)),
                        ("replications".into(), Json::Num(sim.replications as f64)),
                        ("estimates".into(), Json::Arr(estimates)),
                        (
                            "estimates_fnv1a".into(),
                            Json::Str(format!("0x{:016x}", fnv1a64(&est_bytes))),
                        ),
                    ]),
                ),
            ]));
        }

        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("mfcsl-vectors-v1".into())),
            ("name".into(), Json::Str(name.clone())),
            ("model".into(), Json::Str(model_rel.clone())),
            ("tolerance".into(), Json::Str(tolerance.clone())),
            (
                "m0".into(),
                Json::Arr(m0_vals.into_iter().map(Json::Num).collect()),
            ),
            ("population".into(), Json::Num(population as f64)),
            ("seed".into(), Json::Num(seed as f64)),
            ("horizon".into(), Json::Num(horizon)),
            ("points".into(), Json::Num(points as f64)),
            (
                "curve_fnv1a".into(),
                Json::Str(format!("0x{curve_digest:016x}")),
            ),
            ("entries".into(), Json::Arr(entries)),
        ]);
        let path = out_dir.join(format!("{name}.json"));
        std::fs::write(&path, doc.render() + "\n")
            .map_err(|e| CliError(format!("cannot write {}: {e}", path.display())))?;
        writeln!(report, "wrote {} ({} entries)", path.display(), psis.len())
            .expect("write to string");
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_file::ModelFile;

    const SIS: &str = "\
state s : healthy
state i : infected
param beta = 2
param gamma = 1
rate s -> i : beta * m[i]
rate i -> s : gamma
";

    fn sis() -> (LocalModel, std::collections::BTreeMap<String, f64>) {
        let file = ModelFile::parse(SIS).unwrap();
        let params = file.params().clone();
        (file.instantiate().unwrap(), params)
    }

    #[test]
    fn parse_occupancy_roundtrip() {
        let m = parse_occupancy("0.8, 0.15 ,0.05").unwrap();
        assert_eq!(m.len(), 3);
        assert!((m[1] - 0.15).abs() < 1e-12);
        assert!(parse_occupancy("0.5,0.6").is_err());
        assert!(parse_occupancy("a,b").is_err());
    }

    #[test]
    fn info_lists_everything() {
        let (model, params) = sis();
        let text = info(&model, &params).unwrap();
        assert!(text.contains("states (2):"));
        assert!(text.contains("beta = 2"));
        assert!(text.contains("healthy"));
    }

    fn one(f: &str) -> Vec<String> {
        vec![f.to_string()]
    }

    #[test]
    fn check_and_fast_agree() {
        let (model, _) = sis();
        let m0 = parse_occupancy("0.9,0.1").unwrap();
        let a = check(&model, &m0, &one("E{<0.2}[ infected ]"), false, false, None).unwrap();
        let b = check(&model, &m0, &one("E{<0.2}[ infected ]"), true, false, None).unwrap();
        assert!(a.contains('⊨'));
        assert!(b.contains('⊨'));
        assert!(b.contains("fast tolerances"));
        let c = check(&model, &m0, &one("E{>0.2}[ infected ]"), false, false, None).unwrap();
        assert!(c.contains('⊭'));
    }

    #[test]
    fn check_batch_shares_one_session() {
        let (model, _) = sis();
        let m0 = parse_occupancy("0.9,0.1").unwrap();
        let formulas = vec![
            "E{<0.2}[ infected ]".to_string(),
            "EP{>0}[ tt U[0,2] infected ]".to_string(),
            "EP{>0}[ tt U[0,2] infected ]".to_string(),
        ];
        // One thread: the repeated formula deterministically hits the
        // curve cache warmed by its first occurrence.
        let out = check(&model, &m0, &formulas, false, true, Some(1)).unwrap();
        assert_eq!(out.matches('⊨').count(), 3, "{out}");
        assert!(out.contains("engine statistics:"), "{out}");
        assert!(out.contains("trajectories: 1 solved, 0 extended"), "{out}");
        // The repeated formula hits the curve cache.
        assert!(out.contains("prob curves: 1 hits, 1 misses"), "{out}");
        assert!(out.contains("pool: 1 threads"), "{out}");
    }

    #[test]
    fn check_parallel_verdicts_match_serial() {
        let (model, _) = sis();
        let m0 = parse_occupancy("0.9,0.1").unwrap();
        let formulas = vec![
            "E{<0.2}[ infected ]".to_string(),
            "EP{>0}[ tt U[0,2] infected ]".to_string(),
            "EP{>0}[ tt U[0,5] infected ]".to_string(),
            "ES{>0.45}[ infected ]".to_string(),
        ];
        let serial = check(&model, &m0, &formulas, false, false, Some(1)).unwrap();
        for threads in [2, 8] {
            let parallel = check(&model, &m0, &formulas, false, false, Some(threads)).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn csat_reports_interval() {
        let (model, _) = sis();
        let m0 = parse_occupancy("0.9,0.1").unwrap();
        let m0s = std::slice::from_ref(&m0);
        let text = csat(&model, m0s, 10.0, &one("E{<0.3}[ infected ]"), false, None, false).unwrap();
        assert!(text.contains("cSat"));
        assert!(text.contains("measure"));
        let text = csat(&model, m0s, 10.0, &one("E{<0.3}[ infected ]"), true, None, false).unwrap();
        assert!(text.contains("engine statistics:"), "{text}");
    }

    #[test]
    fn csat_sweeps_several_occupancies() {
        let (model, _) = sis();
        let m0s = vec![
            parse_occupancy("0.9,0.1").unwrap(),
            parse_occupancy("0.5,0.5").unwrap(),
            parse_occupancy("0.2,0.8").unwrap(),
        ];
        let psi = one("E{<0.3}[ infected ]");
        let serial = csat(&model, &m0s, 10.0, &psi, false, Some(1), false).unwrap();
        assert_eq!(serial.matches("cSat").count(), 3, "{serial}");
        let parallel = csat(&model, &m0s, 10.0, &psi, false, Some(8), false).unwrap();
        assert_eq!(serial, parallel);
        // The shared-controller prewarm still answers every lane.
        let shared = csat(&model, &m0s, 10.0, &psi, false, Some(1), true).unwrap();
        assert_eq!(shared.matches("cSat").count(), 3, "{shared}");
    }

    #[test]
    fn csat_sweep_stats_show_batched_lanes() {
        let (model, _) = sis();
        let m0s = vec![
            parse_occupancy("0.9,0.1").unwrap(),
            parse_occupancy("0.5,0.5").unwrap(),
            parse_occupancy("0.2,0.8").unwrap(),
        ];
        let psi = one("E{<0.3}[ infected ]");
        let text = csat(&model, &m0s, 10.0, &psi, true, Some(1), false).unwrap();
        assert!(
            text.contains("batch prewarm: 3 lanes solved by one batched drive"),
            "{text}"
        );
        // Per-solve lines carry the lane each trajectory rode and the
        // accept/reject split of its controller.
        for lane in 0..3 {
            assert!(text.contains(&format!(", batch lane {lane}")), "{text}");
        }
        assert!(text.contains("rejected)"), "{text}");
        // A single-occupancy csat takes the scalar path: no batch lines.
        let solo = csat(
            &model,
            std::slice::from_ref(&m0s[0]),
            10.0,
            &psi,
            true,
            Some(1),
            false,
        )
        .unwrap();
        assert!(!solo.contains("batch prewarm"), "{solo}");
        assert!(!solo.contains("batch lane"), "{solo}");
    }

    #[test]
    fn trajectory_emits_csv() {
        let (model, _) = sis();
        let m0 = parse_occupancy("0.9,0.1").unwrap();
        let text = trajectory(&model, &m0, 5.0, 6).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "t,s,i");
        assert_eq!(lines.len(), 7);
        assert!(trajectory(&model, &m0, 5.0, 1).is_err());
    }

    #[test]
    fn fixed_points_reports_both_sis_points() {
        let (model, _) = sis();
        let text = fixed_points(&model).unwrap();
        assert!(text.contains("Stable"), "{text}");
        assert!(text.lines().count() >= 2, "{text}");
    }

    #[test]
    fn simulate_prints_interval_lines_and_is_thread_invariant() {
        let (model, _) = sis();
        let m0 = parse_occupancy("0.9,0.1").unwrap();
        let run = |threads: &str| {
            let argv: Vec<String> = [
                "--m0",
                "0.9,0.1",
                "--population",
                "100",
                "--reps",
                "80",
                "--seed",
                "42",
                "--threads",
                threads,
                "--stats",
                "EP{>0.1}[ tt U[0,2] infected ]",
            ]
            .iter()
            .map(ToString::to_string)
            .collect();
            let flags = crate::args::parse_common(&argv).unwrap();
            simulate(&model, &m0, flags.formulas().unwrap(), &flags).unwrap()
        };
        let a = run("1");
        assert!(a.contains("replications, N = 100, 95% CI"), "{a}");
        assert!(a.contains("smc statistics: 80 replications run"), "{a}");
        // Same seed, different thread count: bitwise-identical report.
        assert_eq!(a, run("8"));

        let flags = crate::args::parse_common(&["--m0".into(), "0.9,0.1".into()]).unwrap();
        let err = simulate(&model, &m0, &one("E{<0.5}[ infected ]"), &flags).unwrap_err();
        assert!(err.to_string().contains("--population"), "{err}");
    }

    #[test]
    fn vectors_regenerate_byte_identically() {
        let base = std::env::temp_dir().join(format!("mfcsl-vectors-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        std::fs::write(base.join("sis.mf"), SIS).unwrap();
        let spec = r#"{
  "schema": "mfcsl-vectors-spec-v1",
  "suites": [
    {
      "name": "sis-smoke",
      "model": "sis.mf",
      "m0": [0.9, 0.1],
      "tolerance": "default",
      "population": 50,
      "replications": 40,
      "seed": 7,
      "horizon": 2.0,
      "points": 9,
      "formulas": ["E{<0.5}[ infected ]", "EP{>0.1}[ tt U[0,2] infected ]"]
    }
  ]
}"#;
        std::fs::write(base.join("spec.json"), spec).unwrap();
        let out_a = base.join("a");
        let out_b = base.join("b");
        let report = vectors(&base.join("spec.json"), &out_a).unwrap();
        assert!(report.contains("sis-smoke.json"), "{report}");
        vectors(&base.join("spec.json"), &out_b).unwrap();
        let a = std::fs::read(out_a.join("sis-smoke.json")).unwrap();
        let b = std::fs::read(out_b.join("sis-smoke.json")).unwrap();
        assert_eq!(a, b, "vector regeneration must be byte-identical");
        let text = String::from_utf8(a).unwrap();
        assert!(text.contains("\"schema\":\"mfcsl-vectors-v1\""), "{text}");
        assert!(text.contains("\"curve_fnv1a\":\"0x"), "{text}");
        assert!(text.contains("\"estimates_fnv1a\":\"0x"), "{text}");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn errors_are_messages() {
        let (model, _) = sis();
        let m0 = parse_occupancy("0.9,0.1").unwrap();
        let err = check(&model, &m0, &one("E{>2}[ infected ]"), false, false, None).unwrap_err();
        assert!(err.to_string().contains("[0, 1]"));
        let err = check(&model, &m0, &one("E{>0.5}[ ghost ]"), false, false, None).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }
}
