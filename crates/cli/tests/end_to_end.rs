//! End-to-end tests of the `mfcsl` binary: real process invocations over
//! the shipped model files, covering argument parsing and every
//! subcommand.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mfcsl"))
}

fn modelfile(name: &str) -> String {
    // The workspace root is two levels above this crate.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../modelfiles")
        .join(name);
    path.to_str().expect("utf-8 path").to_string()
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn run_err(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        !out.status.success(),
        "command {args:?} unexpectedly succeeded"
    );
    String::from_utf8(out.stderr).expect("utf-8 stderr")
}

#[test]
fn check_the_papers_example() {
    let out = run_ok(&[
        "check",
        &modelfile("virus.mf"),
        "--m0",
        "0.8,0.15,0.05",
        "EP{<0.3}[ not_infected U[0,1] infected ]",
    ]);
    assert!(out.contains('⊨'), "{out}");
}

#[test]
fn check_fast_flag() {
    let out = run_ok(&[
        "check",
        &modelfile("sis.mf"),
        "--m0",
        "0.9,0.1",
        "--fast",
        "E{<0.2}[ infected ]",
    ]);
    assert!(out.contains("fast tolerances"), "{out}");
}

#[test]
fn check_many_formulas_with_stats() {
    let out = run_ok(&[
        "check",
        &modelfile("sis.mf"),
        "--m0",
        "0.9,0.1",
        "--stats",
        "E{<0.2}[ infected ]",
        "EP{>0}[ tt U[0,2] infected ]",
        "ES{>0.45}[ infected ]",
    ]);
    assert_eq!(out.matches('⊨').count(), 3, "{out}");
    assert!(out.contains("engine statistics:"), "{out}");
    // One session for the whole invocation: a single mean-field solve.
    assert!(out.contains("trajectories: 1 solved, 0 extended"), "{out}");
    assert!(out.contains("rhs evals"), "{out}");
}

#[test]
fn csat_reports_the_logistic_crossing() {
    let out = run_ok(&[
        "csat",
        &modelfile("sis.mf"),
        "--m0",
        "0.9,0.1",
        "--theta",
        "12",
        "E{<0.3}[ infected ]",
    ]);
    // ln 6 ≈ 1.7917 appears as the window end.
    assert!(out.contains("1.7917"), "{out}");
}

#[test]
fn trajectory_emits_csv() {
    let out = run_ok(&[
        "trajectory",
        &modelfile("sis.mf"),
        "--m0",
        "0.9,0.1",
        "--t-end",
        "5",
        "--points",
        "6",
    ]);
    let lines: Vec<&str> = out.trim().lines().collect();
    assert_eq!(lines[0], "t,s,i");
    assert_eq!(lines.len(), 7);
}

#[test]
fn info_and_fixed_points() {
    let out = run_ok(&["info", &modelfile("botnet.mf")]);
    assert!(out.contains("states (3):"), "{out}");
    assert!(out.contains("infect = 4"), "{out}");
    let out = run_ok(&["fixed-points", &modelfile("botnet.mf")]);
    assert!(out.contains("Stable"), "{out}");
}

#[test]
fn error_paths() {
    // Unknown command.
    let err = run_err(&["frobnicate", &modelfile("sis.mf")]);
    assert!(err.contains("unknown command"), "{err}");
    // Missing model file.
    let err = run_err(&["info", "does/not/exist.mf"]);
    assert!(err.contains("cannot read"), "{err}");
    // Missing required flag.
    let err = run_err(&["check", &modelfile("sis.mf"), "E{<0.5}[ infected ]"]);
    assert!(err.contains("--m0 is required"), "{err}");
    // Bad occupancy.
    let err = run_err(&[
        "check",
        &modelfile("sis.mf"),
        "--m0",
        "0.5,0.6",
        "E{<0.5}[ infected ]",
    ]);
    assert!(err.contains("bad occupancy"), "{err}");
    // Bad formula.
    let err = run_err(&["check", &modelfile("sis.mf"), "--m0", "0.9,0.1", "E{<0.5}["]);
    assert!(err.contains("error"), "{err}");
    // Unknown flag.
    let err = run_err(&[
        "check",
        &modelfile("sis.mf"),
        "--m0",
        "0.9,0.1",
        "--bogus",
        "E{<0.5}[ infected ]",
    ]);
    assert!(err.contains("unknown flag"), "{err}");
    // No arguments at all prints usage.
    let err = run_err(&[]);
    assert!(err.contains("USAGE"), "{err}");
}
