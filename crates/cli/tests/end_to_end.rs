//! End-to-end tests of the `mfcsl` binary: real process invocations over
//! the shipped model files, covering argument parsing and every
//! subcommand.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mfcsl"))
}

fn modelfile(name: &str) -> String {
    // The workspace root is two levels above this crate.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../modelfiles")
        .join(name);
    path.to_str().expect("utf-8 path").to_string()
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn run_err(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        !out.status.success(),
        "command {args:?} unexpectedly succeeded"
    );
    String::from_utf8(out.stderr).expect("utf-8 stderr")
}

#[test]
fn check_the_papers_example() {
    let out = run_ok(&[
        "check",
        &modelfile("virus.mf"),
        "--m0",
        "0.8,0.15,0.05",
        "EP{<0.3}[ not_infected U[0,1] infected ]",
    ]);
    assert!(out.contains('⊨'), "{out}");
}

#[test]
fn check_fast_flag() {
    let out = run_ok(&[
        "check",
        &modelfile("sis.mf"),
        "--m0",
        "0.9,0.1",
        "--fast",
        "E{<0.2}[ infected ]",
    ]);
    assert!(out.contains("fast tolerances"), "{out}");
}

#[test]
fn check_many_formulas_with_stats() {
    let out = run_ok(&[
        "check",
        &modelfile("sis.mf"),
        "--m0",
        "0.9,0.1",
        "--stats",
        "E{<0.2}[ infected ]",
        "EP{>0}[ tt U[0,2] infected ]",
        "ES{>0.45}[ infected ]",
    ]);
    assert_eq!(out.matches('⊨').count(), 3, "{out}");
    assert!(out.contains("engine statistics:"), "{out}");
    // One session for the whole invocation: a single mean-field solve.
    assert!(out.contains("trajectories: 1 solved, 0 extended"), "{out}");
    assert!(out.contains("rhs evals"), "{out}");
}

#[test]
fn csat_reports_the_logistic_crossing() {
    let out = run_ok(&[
        "csat",
        &modelfile("sis.mf"),
        "--m0",
        "0.9,0.1",
        "--theta",
        "12",
        "E{<0.3}[ infected ]",
    ]);
    // ln 6 ≈ 1.7917 appears as the window end.
    assert!(out.contains("1.7917"), "{out}");
}

#[test]
fn trajectory_emits_csv() {
    let out = run_ok(&[
        "trajectory",
        &modelfile("sis.mf"),
        "--m0",
        "0.9,0.1",
        "--t-end",
        "5",
        "--points",
        "6",
    ]);
    let lines: Vec<&str> = out.trim().lines().collect();
    assert_eq!(lines[0], "t,s,i");
    assert_eq!(lines.len(), 7);
}

#[test]
fn info_and_fixed_points() {
    let out = run_ok(&["info", &modelfile("botnet.mf")]);
    assert!(out.contains("states (3):"), "{out}");
    assert!(out.contains("infect = 4"), "{out}");
    let out = run_ok(&["fixed-points", &modelfile("botnet.mf")]);
    assert!(out.contains("Stable"), "{out}");
}

#[test]
fn error_paths() {
    // Unknown command.
    let err = run_err(&["frobnicate", &modelfile("sis.mf")]);
    assert!(err.contains("unknown command"), "{err}");
    // Missing model file.
    let err = run_err(&["info", "does/not/exist.mf"]);
    assert!(err.contains("cannot read"), "{err}");
    // Missing required flag.
    let err = run_err(&["check", &modelfile("sis.mf"), "E{<0.5}[ infected ]"]);
    assert!(err.contains("--m0 is required"), "{err}");
    // Bad occupancy.
    let err = run_err(&[
        "check",
        &modelfile("sis.mf"),
        "--m0",
        "0.5,0.6",
        "E{<0.5}[ infected ]",
    ]);
    assert!(err.contains("bad occupancy"), "{err}");
    // Bad formula.
    let err = run_err(&["check", &modelfile("sis.mf"), "--m0", "0.9,0.1", "E{<0.5}["]);
    assert!(err.contains("error"), "{err}");
    // Unknown flag.
    let err = run_err(&[
        "check",
        &modelfile("sis.mf"),
        "--m0",
        "0.9,0.1",
        "--bogus",
        "E{<0.5}[ infected ]",
    ]);
    assert!(err.contains("unknown flag"), "{err}");
    // No arguments at all prints usage.
    let err = run_err(&[]);
    assert!(err.contains("USAGE"), "{err}");
}

/// A hardened argument error: exactly one stderr line, nonzero exit.
fn one_line_err(args: &[&str]) -> String {
    let err = run_err(args);
    assert_eq!(err.trim_end().lines().count(), 1, "one line expected:\n{err}");
    err
}

#[test]
fn malformed_arguments_die_with_one_line() {
    let sis = modelfile("sis.mf");
    // Off-simplex occupancies.
    let err = one_line_err(&["check", &sis, "--m0", "0.5,0.6", "E{<0.5}[ infected ]"]);
    assert!(err.contains("bad occupancy"), "{err}");
    let err = one_line_err(&["check", &sis, "--m0", "1.5,-0.5", "E{<0.5}[ infected ]"]);
    assert!(err.contains("bad occupancy"), "{err}");
    // A zero thread count.
    let err = one_line_err(&["check", &sis, "--m0", "0.9,0.1", "--threads", "0", "f"]);
    assert!(err.contains("--threads must be at least 1"), "{err}");
    // Malformed time windows: nonpositive, non-finite, non-numeric.
    for bad in ["0", "-2", "nan", "inf", "abc"] {
        let err = one_line_err(&["csat", &sis, "--m0", "0.9,0.1", "--theta", bad, "f"]);
        assert!(err.contains("--theta"), "{bad}: {err}");
        let err = one_line_err(&["trajectory", &sis, "--m0", "0.9,0.1", "--t-end", bad]);
        assert!(err.contains("--t-end"), "{bad}: {err}");
    }
}

/// Kills the daemon if the test panics before the clean shutdown, so a
/// failed assertion cannot leak an orphan process holding the test's
/// output pipes open.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_and_client_match_offline_check() {
    use std::io::BufRead as _;

    let m0 = "0.8,0.15,0.05";
    let formulas = [
        "EP{<0.3}[ not_infected U[0,1] infected ]",
        "E{<0.3}[ infected ]",
        "ES{>0.1}[ infected ]",
    ];

    // The offline reference output.
    let virus = modelfile("virus.mf");
    let mut offline_args = vec!["check", virus.as_str(), "--m0", m0];
    offline_args.extend_from_slice(&formulas);
    let offline = run_ok(&offline_args);

    // Start the daemon on an ephemeral port and parse the address from its
    // announcement line.
    let model_dir = modelfile("");
    let mut daemon = KillOnDrop(
        bin()
            .args(["serve", &model_dir, "--addr", "127.0.0.1:0", "--workers", "2"])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("daemon starts"),
    );
    let mut announcement = String::new();
    std::io::BufReader::new(daemon.0.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut announcement)
        .expect("announcement line");
    assert!(announcement.contains("mfcsld listening on"), "{announcement}");
    let addr = announcement
        .split_whitespace()
        .nth(3)
        .expect("address in announcement")
        .to_string();

    // The served verdict lines are bitwise identical to the offline run.
    let mut client_args = vec!["client", &addr, "check", "virus", "--m0", m0];
    client_args.extend_from_slice(&formulas);
    let served = run_ok(&client_args);
    assert_eq!(served, offline, "daemon output must match offline check");

    // Maintenance endpoints work through the CLI, and the second check was
    // answered by the warm session.
    let served_again = run_ok(&client_args);
    assert_eq!(served_again, offline);
    let metrics = run_ok(&["client", &addr, "metrics"]);
    assert!(metrics.contains("mfcsld_session_warm_hits_total 1"), "{metrics}");
    let health = run_ok(&["client", &addr, "health"]);
    assert!(health.contains("ok"), "{health}");

    // Unknown models come back as a clean one-line error.
    let err = one_line_err(&["client", &addr, "check", "ghost", "--m0", m0, "f"]);
    assert!(err.contains("unknown model `ghost`"), "{err}");

    // Drain and stop; the daemon process exits cleanly.
    let out = run_ok(&["client", &addr, "shutdown"]);
    assert!(out.contains("draining"), "{out}");
    let status = daemon.0.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status {status:?}");
}
