//! The recovery ladder on a genuinely stiff mean-field model.
//!
//! A fast `idle ↔ busy` loop with rate ~1e7 sits under a slow `busy → done`
//! drain. The drift's fast eigenvalue is ≈ -2e7, so Dormand-Prince's
//! stability region limits its step size to ~1.4e-7: covering a unit
//! horizon needs millions of steps, and with a bounded step budget the
//! explicit solver *must* fail. Starting on the fast equilibrium
//! (`m_idle = m_busy`) the solution itself is smooth, so the A-stable
//! implicit-trapezoid fallback tracks it accurately — the checking
//! pipeline still answers, and records the recovery in its statistics.

use mfcsl_core::mfcsl::{parse_formula, CheckSession, Checker};
use mfcsl_core::{LocalModel, Occupancy};
use mfcsl_csl::Tolerances;
use mfcsl_ode::dopri::Dopri5;
use mfcsl_ode::problem::FnSystem;
use mfcsl_ode::OdeError;

const FAST_RATE: f64 = 1.0e7;

/// Fast pingpong `idle ↔ busy` at 1e7 plus a slow drain `busy → done`.
fn stiff_model() -> LocalModel {
    LocalModel::builder()
        .state("a", ["idle"])
        .state("b", ["busy"])
        .state("c", ["done"])
        .constant_transition("a", "b", FAST_RATE)
        .unwrap()
        .constant_transition("b", "a", FAST_RATE)
        .unwrap()
        .constant_transition("b", "c", 1.0)
        .unwrap()
        .build()
        .unwrap()
}

/// On the fast equilibrium (`m_a = m_b`): the solution evolves on the slow
/// manifold only, so the stiff fallback's trajectory is smooth, while the
/// slow drain keeps the drift nonzero so the explicit solver cannot coast.
fn m0() -> Occupancy {
    Occupancy::new(vec![0.45, 0.45, 0.1]).unwrap()
}

/// Tolerances with a step budget that makes the explicit solver fail fast
/// instead of grinding through millions of stability-limited steps.
fn tol() -> Tolerances {
    let mut t = Tolerances::default();
    t.ode = t.ode.with_max_steps(20_000);
    t
}

#[test]
fn plain_dopri5_fails_on_the_stiff_drift() {
    // The model's drift hand-coded (dm = m·Q), so the integrator's trial
    // states need not stay on the simplex. Same right-hand side the
    // mean-field solver integrates.
    let sys = FnSystem::new(3, |_t: f64, y: &[f64], dy: &mut [f64]| {
        dy[0] = FAST_RATE * (y[1] - y[0]);
        dy[1] = FAST_RATE * (y[0] - y[1]) - y[1];
        dy[2] = y[1];
    });
    let err = Dopri5::new(tol().ode)
        .solve(&sys, 0.0, 1.0, m0().as_slice())
        .unwrap_err();
    assert!(
        matches!(
            err,
            OdeError::MaxStepsExceeded { .. } | OdeError::StepSizeTooSmall { .. }
        ),
        "expected a stiffness failure, got {err:?}"
    );
}

#[test]
fn session_recovers_via_stiff_fallback() {
    let model = stiff_model();
    let session = CheckSession::from_checker(Checker::with_tolerances(&model, tol()));
    // The E operator alone evaluates at t = 0 without integrating; a csat
    // sweep over [0, 1] forces the trajectory solve across the stiff span.
    // The done-mass starts at 0.1 and only grows, so the 0.05 bound holds
    // on the whole window with a cushion far beyond the fallback's error.
    let psi = parse_formula("E{>=0.05}[ done ]").unwrap();
    let cs = session.csat(&psi, &m0(), 1.0).unwrap();
    assert!((cs.measure() - 1.0).abs() < 1e-9, "csat: {cs:?}");
    let stats = session.stats();
    assert!(stats.recoveries >= 1, "stats: {stats:?}");
    assert!(stats.stiff_fallbacks >= 1, "stats: {stats:?}");
    // The per-solve records carry the recovery too.
    assert!(stats
        .solves
        .iter()
        .any(|s| s.recoveries >= 1 && s.stiff_fallbacks >= 1));
}

#[test]
fn healthy_models_report_zero_recoveries() {
    let model = LocalModel::builder()
        .state("s", ["healthy"])
        .state("i", ["infected"])
        .transition("s", "i", |m: &Occupancy| 2.0 * m[1])
        .unwrap()
        .constant_transition("i", "s", 1.0)
        .unwrap()
        .build()
        .unwrap();
    let session = CheckSession::new(&model);
    let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
    let psi = parse_formula("E{<0.5}[ infected ]").unwrap();
    let cs = session.csat(&psi, &m0, 10.0).unwrap();
    assert!(cs.contains(0.0));
    let stats = session.stats();
    assert_eq!(stats.recoveries, 0);
    assert_eq!(stats.stiff_fallbacks, 0);
}
