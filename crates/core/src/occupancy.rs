//! Occupancy vectors — points of the overall model's state space `S^o`.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::CoreError;

/// Construction tolerance: entries may be off the simplex by this much and
/// are then renormalized exactly.
const CONSTRUCTION_TOL: f64 = 1e-6;

/// An occupancy vector `m̄ = (m₁, …, m_K)`: the fraction of objects in each
/// local state (Def. 2 of the paper). Validated to lie on the probability
/// simplex at construction; small numerical drift is renormalized.
///
/// # Example
///
/// ```
/// use mfcsl_core::Occupancy;
///
/// # fn main() -> Result<(), mfcsl_core::CoreError> {
/// let m = Occupancy::new(vec![0.8, 0.15, 0.05])?;
/// assert_eq!(m.len(), 3);
/// assert_eq!(m[0], 0.8);
/// assert!(Occupancy::new(vec![0.5, 0.2]).is_err()); // sums to 0.7
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    fractions: Vec<f64>,
}

impl Occupancy {
    /// Validates and wraps a fraction vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if the vector is empty, has
    /// entries outside `[0, 1]` (beyond a small tolerance), or does not sum
    /// to 1 within `1e-6`.
    pub fn new(fractions: Vec<f64>) -> Result<Self, CoreError> {
        mfcsl_math::simplex::check_distribution(&fractions, CONSTRUCTION_TOL)
            .map_err(|e| CoreError::InvalidArgument(e.to_string()))?;
        let mut fractions = fractions;
        mfcsl_math::simplex::renormalize(&mut fractions)
            .map_err(|e| CoreError::InvalidArgument(e.to_string()))?;
        Ok(Occupancy { fractions })
    }

    /// Builds an occupancy from a possibly slightly-off-simplex vector by
    /// clamping negative entries to zero and renormalizing — the projection
    /// used when reading values back out of a numerically integrated
    /// trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if the clamped vector sums to
    /// zero or contains non-finite entries.
    pub fn project(mut fractions: Vec<f64>) -> Result<Self, CoreError> {
        mfcsl_math::simplex::renormalize(&mut fractions)
            .map_err(|e| CoreError::InvalidArgument(e.to_string()))?;
        Ok(Occupancy { fractions })
    }

    /// Wraps a fraction vector without any validation.
    ///
    /// Intended for finite-difference probing of rate functions slightly
    /// off the simplex (Jacobians of the mean-field drift at boundary
    /// fixed points). Rate functions must be defined in a neighbourhood of
    /// the simplex for this to be meaningful; all public model-checking
    /// entry points use validated occupancies.
    #[doc(hidden)]
    #[must_use]
    pub fn new_unchecked(fractions: Vec<f64>) -> Self {
        Occupancy { fractions }
    }

    /// The degenerate occupancy with all mass in state `index`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `index >= k` or `k == 0`.
    pub fn unit(k: usize, index: usize) -> Result<Self, CoreError> {
        if k == 0 || index >= k {
            return Err(CoreError::InvalidArgument(format!(
                "unit occupancy index {index} out of range for {k} states"
            )));
        }
        let mut fractions = vec![0.0; k];
        fractions[index] = 1.0;
        Ok(Occupancy { fractions })
    }

    /// The uniform occupancy over `k` states.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `k == 0`.
    pub fn uniform(k: usize) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidArgument(
                "occupancy needs at least one state".into(),
            ));
        }
        Ok(Occupancy {
            fractions: vec![1.0 / k as f64; k],
        })
    }

    /// Number of local states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fractions.len()
    }

    /// Always false (the constructor rejects empty vectors); provided for
    /// API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fractions.is_empty()
    }

    /// Borrows the fractions.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.fractions
    }

    /// Consumes the occupancy and returns the fraction vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.fractions
    }

    /// The fraction of objects in state `i`, `None` if out of range.
    #[must_use]
    pub fn fraction(&self, i: usize) -> Option<f64> {
        self.fractions.get(i).copied()
    }

    /// The total fraction over a set of states given as a membership mask.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != self.len()`.
    #[must_use]
    pub fn mass_of(&self, mask: &[bool]) -> f64 {
        assert_eq!(mask.len(), self.len(), "mask has wrong length");
        self.fractions
            .iter()
            .zip(mask)
            .filter(|(_, &m)| m)
            .map(|(&f, _)| f)
            .sum()
    }

    /// Max-norm distance to another occupancy of the same dimension.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] on dimension mismatch.
    pub fn distance(&self, other: &Occupancy) -> Result<f64, CoreError> {
        mfcsl_math::vec_ops::dist_inf(&self.fractions, &other.fractions)
            .map_err(|e| CoreError::InvalidArgument(e.to_string()))
    }
}

impl Index<usize> for Occupancy {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.fractions[i]
    }
}

impl AsRef<[f64]> for Occupancy {
    fn as_ref(&self) -> &[f64] {
        &self.fractions
    }
}

impl TryFrom<Vec<f64>> for Occupancy {
    type Error = CoreError;
    fn try_from(v: Vec<f64>) -> Result<Self, CoreError> {
        Occupancy::new(v)
    }
}

impl fmt::Display for Occupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.fractions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Occupancy::new(vec![0.5, 0.4, 0.1]).unwrap();
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m[1], 0.4);
        assert_eq!(m.fraction(2), Some(0.1));
        assert_eq!(m.fraction(3), None);
        assert_eq!(m.as_slice().len(), 3);
        assert_eq!(m.clone().into_vec(), vec![0.5, 0.4, 0.1]);
    }

    #[test]
    fn rejects_invalid_vectors() {
        assert!(Occupancy::new(vec![]).is_err());
        assert!(Occupancy::new(vec![0.5, 0.4]).is_err());
        assert!(Occupancy::new(vec![1.5, -0.5]).is_err());
        assert!(Occupancy::new(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn renormalizes_drift() {
        let m = Occupancy::new(vec![0.5 + 1e-9, 0.5]).unwrap();
        let sum: f64 = m.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-15);
    }

    #[test]
    fn unit_and_uniform() {
        let u = Occupancy::unit(3, 1).unwrap();
        assert_eq!(u.as_slice(), &[0.0, 1.0, 0.0]);
        assert!(Occupancy::unit(3, 3).is_err());
        assert!(Occupancy::unit(0, 0).is_err());
        let f = Occupancy::uniform(4).unwrap();
        assert_eq!(f[0], 0.25);
        assert!(Occupancy::uniform(0).is_err());
    }

    #[test]
    fn mass_and_distance() {
        let m = Occupancy::new(vec![0.5, 0.4, 0.1]).unwrap();
        assert!((m.mass_of(&[false, true, true]) - 0.5).abs() < 1e-15);
        let m2 = Occupancy::new(vec![0.6, 0.3, 0.1]).unwrap();
        assert!((m.distance(&m2).unwrap() - 0.1).abs() < 1e-12);
        let m3 = Occupancy::new(vec![1.0]).unwrap();
        assert!(m.distance(&m3).is_err());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn mass_of_checks_mask() {
        let m = Occupancy::new(vec![1.0]).unwrap();
        let _ = m.mass_of(&[true, false]);
    }

    #[test]
    fn display_form() {
        let m = Occupancy::new(vec![0.8, 0.2]).unwrap();
        assert_eq!(m.to_string(), "(0.800000, 0.200000)");
    }
}
