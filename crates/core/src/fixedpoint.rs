//! Stationary points of the mean-field ODE (Eq. 2 of the paper).
//!
//! The stationary occupancy `m̃` solves `m̃·Q(m̃) = 0` on the simplex. It is
//! found by damped Newton iteration in reduced coordinates (the last
//! fraction is eliminated through `Σ m_j = 1`) and classified by the
//! spectrum of the reduced Jacobian: the paper (and its reference \[17\])
//! stresses that the fixed point approximates the steady state only for
//! well-behaved models — [`Stability`] makes that check explicit.

use rand::Rng;

use mfcsl_math::eigen::spectral_abscissa;
use mfcsl_math::lu::LuDecomposition;
use mfcsl_math::Matrix;
use mfcsl_ode::OdeOptions;

use crate::{meanfield, CoreError, LocalModel, Occupancy};

/// Local stability classification of a fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// All reduced-Jacobian eigenvalues have negative real part: the fixed
    /// point attracts nearby trajectories and can serve as the steady-state
    /// distribution of the local model (Sec. IV-D).
    Stable,
    /// Some eigenvalue has positive real part.
    Unstable,
    /// The spectral abscissa is within tolerance of zero; no conclusion.
    Marginal,
}

/// A located stationary occupancy with diagnostics.
#[derive(Debug, Clone)]
pub struct FixedPoint {
    /// The stationary occupancy `m̃`.
    pub occupancy: Occupancy,
    /// Max-norm of the drift `m̃·Q(m̃)` at the solution.
    pub residual: f64,
    /// Stability classification.
    pub stability: Stability,
    /// Largest real part over the reduced-Jacobian spectrum.
    pub spectral_abscissa: f64,
}

/// Options for the fixed-point search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPointOptions {
    /// Newton convergence tolerance on the drift residual (max norm).
    pub residual_tol: f64,
    /// Maximum Newton iterations.
    pub max_iters: usize,
    /// Finite-difference step for the Jacobian.
    pub fd_eps: f64,
    /// Spectral-abscissa band classified as [`Stability::Marginal`].
    pub stability_tol: f64,
}

impl Default for FixedPointOptions {
    fn default() -> Self {
        FixedPointOptions {
            residual_tol: 1e-12,
            max_iters: 200,
            fd_eps: 1e-7,
            stability_tol: 1e-7,
        }
    }
}

/// Refines a guess into a fixed point by damped Newton iteration in reduced
/// simplex coordinates.
///
/// # Errors
///
/// Returns [`CoreError::NoStationaryPoint`] if the iteration fails to
/// converge (the damping guard also rejects divergence) and propagates
/// numerical errors.
pub fn refine(
    model: &LocalModel,
    guess: &Occupancy,
    options: &FixedPointOptions,
) -> Result<FixedPoint, CoreError> {
    let k = model.n_states();
    if guess.len() != k {
        return Err(CoreError::InvalidArgument(format!(
            "guess has {} entries, model has {k} states",
            guess.len()
        )));
    }
    if k == 1 {
        // The one-state model is trivially stationary.
        return Ok(FixedPoint {
            occupancy: guess.clone(),
            residual: 0.0,
            stability: Stability::Stable,
            spectral_abscissa: f64::NEG_INFINITY,
        });
    }
    let reduced_drift = |x: &[f64]| -> Result<Vec<f64>, CoreError> {
        let m = expand(x)?;
        let d = model.drift(&m)?;
        Ok(d[..k - 1].to_vec())
    };
    let mut x: Vec<f64> = guess.as_slice()[..k - 1].to_vec();
    let mut f = reduced_drift(&x)?;
    let mut res = mfcsl_math::vec_ops::norm_inf(&f);
    for _ in 0..options.max_iters {
        if res <= options.residual_tol {
            break;
        }
        // Numerical Jacobian of the reduced drift.
        let jac = reduced_jacobian(model, &reduced_drift, &x, options)?;
        let step = LuDecomposition::new(&jac)
            .and_then(|lu| lu.solve(&f))
            .map_err(|e| CoreError::NoStationaryPoint(format!("newton system: {e}")))?;
        // Damped update: halve until the residual decreases (or give up).
        let mut lambda = 1.0;
        let mut improved = false;
        for _ in 0..40 {
            let candidate: Vec<f64> = x
                .iter()
                .zip(&step)
                .map(|(xi, si)| (xi - lambda * si).clamp(0.0, 1.0))
                .collect();
            if let Ok(fc) = reduced_drift(&candidate) {
                let rc = mfcsl_math::vec_ops::norm_inf(&fc);
                if rc < res {
                    x = candidate;
                    f = fc;
                    res = rc;
                    improved = true;
                    break;
                }
            }
            lambda *= 0.5;
        }
        if !improved {
            break;
        }
    }
    if res > options.residual_tol.max(1e-9) {
        return Err(CoreError::NoStationaryPoint(format!(
            "newton stalled with residual {res}"
        )));
    }
    let occupancy = expand(&x)?;
    // Stability from the reduced Jacobian at the solution.
    let jac = reduced_jacobian(model, &reduced_drift, &x, options)?;
    let alpha = spectral_abscissa(&jac)?;
    let stability = if alpha < -options.stability_tol {
        Stability::Stable
    } else if alpha > options.stability_tol {
        Stability::Unstable
    } else {
        Stability::Marginal
    };
    Ok(FixedPoint {
        occupancy,
        residual: res,
        stability,
        spectral_abscissa: alpha,
    })
}

/// Finds the stationary occupancy reached *from* a given initial occupancy:
/// integrates the mean-field ODE for `settle_time`, then polishes with
/// Newton. This is the `m̃` the steady-state operators (`S`, `ES`) use.
///
/// # Errors
///
/// Returns [`CoreError::NoStationaryPoint`] if the trajectory has not
/// settled near a stationary point, and propagates numerical errors.
pub fn from_initial(
    model: &LocalModel,
    m0: &Occupancy,
    settle_time: f64,
    options: &FixedPointOptions,
) -> Result<FixedPoint, CoreError> {
    if !(settle_time > 0.0) || !settle_time.is_finite() {
        return Err(CoreError::InvalidArgument(format!(
            "settle time must be positive and finite, got {settle_time}"
        )));
    }
    let sol = meanfield::solve(model, m0, settle_time, &OdeOptions::default())?;
    let end = sol.occupancy_at(settle_time);
    refine(model, &end, options)
}

/// Searches for all fixed points from a deterministic battery of starting
/// guesses (simplex corners, the uniform point, and seeded random points),
/// deduplicated by max-norm distance.
///
/// # Errors
///
/// Propagates [`CoreError::InvalidArgument`] for a zero-state model; guess
/// refinements that fail are skipped silently.
pub fn find_all(
    model: &LocalModel,
    n_random: usize,
    seed: u64,
    options: &FixedPointOptions,
) -> Result<Vec<FixedPoint>, CoreError> {
    use rand::SeedableRng;
    let k = model.n_states();
    let mut guesses: Vec<Occupancy> = Vec::new();
    for i in 0..k {
        // Slightly interior corners: exact corners can have degenerate
        // Jacobians for ratio-form rates.
        let mut v = vec![0.01 / (k as f64 - 1.0).max(1.0); k];
        v[i] = 0.99;
        guesses.push(Occupancy::project(v)?);
    }
    guesses.push(Occupancy::uniform(k)?);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..n_random {
        guesses.push(Occupancy::project(mfcsl_math::simplex::sample_uniform(
            &mut rng, k,
        ))?);
    }
    let mut found: Vec<FixedPoint> = Vec::new();
    for g in guesses {
        if let Ok(fp) = refine(model, &g, options) {
            let duplicate = found.iter().any(|existing| {
                existing
                    .occupancy
                    .distance(&fp.occupancy)
                    .map(|d| d < 1e-6)
                    .unwrap_or(false)
            });
            if !duplicate {
                found.push(fp);
            }
        }
    }
    Ok(found)
}

/// Numerical Jacobian of the reduced drift by central differences.
///
/// Probing points may fall slightly outside the simplex (e.g. at a corner
/// fixed point); they are evaluated *raw*, without clamping or
/// renormalizing, because projecting the probes would degenerate columns
/// (a clamped perturbation of one coordinate aliases another's, producing
/// spurious zero eigenvalues at boundary fixed points). Rate functions are
/// smooth formulas defined in a neighbourhood of the simplex, so the raw
/// probe is the honest derivative.
fn reduced_jacobian<F>(
    model: &LocalModel,
    _reduced_drift: &F,
    x: &[f64],
    options: &FixedPointOptions,
) -> Result<Matrix, CoreError>
where
    F: Fn(&[f64]) -> Result<Vec<f64>, CoreError>,
{
    let d = x.len();
    let raw_drift = |x_probe: &[f64]| -> Result<Vec<f64>, CoreError> {
        let head_sum: f64 = x_probe.iter().sum();
        let mut v = x_probe.to_vec();
        v.push(1.0 - head_sum);
        let m = Occupancy::new_unchecked(v);
        let drift = model.drift_unclamped(&m)?;
        Ok(drift[..d].to_vec())
    };
    let mut jac = Matrix::zeros(d, d);
    for j in 0..d {
        let eps = options.fd_eps * (1.0 + x[j].abs());
        let mut xp = x.to_vec();
        xp[j] = x[j] + eps;
        let fp = raw_drift(&xp)?;
        xp[j] = x[j] - eps;
        let fm = raw_drift(&xp)?;
        for i in 0..d {
            jac[(i, j)] = (fp[i] - fm[i]) / (2.0 * eps);
        }
    }
    Ok(jac)
}

/// Expands reduced coordinates `(m₁, …, m_{K-1})` to a full occupancy.
fn expand(x: &[f64]) -> Result<Occupancy, CoreError> {
    let head_sum: f64 = x.iter().sum();
    let mut v = x.to_vec();
    v.push((1.0 - head_sum).max(0.0));
    Occupancy::project(v)
}

// `Rng` is only used through `sample_uniform`'s bound; silence the unused
// warning on older compilers that resolve the import differently.
#[allow(unused)]
fn _rng_bound_check<R: Rng>(_r: &mut R) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sis(beta: f64, gamma: f64) -> LocalModel {
        LocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", move |m: &Occupancy| beta * m[1])
            .unwrap()
            .constant_transition("i", "s", gamma)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn sis_endemic_point_found_and_stable() {
        let model = sis(2.0, 1.0);
        let guess = Occupancy::new(vec![0.4, 0.6]).unwrap();
        let fp = refine(&model, &guess, &FixedPointOptions::default()).unwrap();
        assert!((fp.occupancy[1] - 0.5).abs() < 1e-9, "{fp:?}");
        assert_eq!(fp.stability, Stability::Stable);
        assert!(fp.residual < 1e-10);
    }

    #[test]
    fn sis_disease_free_point_unstable_when_beta_exceeds_gamma() {
        let model = sis(2.0, 1.0);
        let guess = Occupancy::new(vec![0.999, 0.001]).unwrap();
        // Newton may converge to either fixed point from near the corner;
        // refine directly at the corner.
        let fp = refine(
            &model,
            &Occupancy::unit(2, 0).unwrap(),
            &FixedPointOptions::default(),
        )
        .unwrap_or_else(|_| refine(&model, &guess, &FixedPointOptions::default()).unwrap());
        if fp.occupancy[1] < 1e-6 {
            assert_eq!(fp.stability, Stability::Unstable);
        }
    }

    #[test]
    fn subcritical_sis_dies_out() {
        // β < γ: unique stable fixed point at i = 0.
        let model = sis(0.5, 1.0);
        let m0 = Occupancy::new(vec![0.5, 0.5]).unwrap();
        let fp = from_initial(&model, &m0, 60.0, &FixedPointOptions::default()).unwrap();
        assert!(fp.occupancy[1] < 1e-8, "{fp:?}");
        assert_eq!(fp.stability, Stability::Stable);
    }

    #[test]
    fn find_all_locates_both_sis_points() {
        let model = sis(2.0, 1.0);
        let all = find_all(&model, 8, 42, &FixedPointOptions::default()).unwrap();
        let mut infected_fracs: Vec<f64> = all.iter().map(|fp| fp.occupancy[1]).collect();
        infected_fracs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            infected_fracs.iter().any(|&v| v < 1e-6),
            "disease-free point missing: {infected_fracs:?}"
        );
        assert!(
            infected_fracs.iter().any(|&v| (v - 0.5).abs() < 1e-6),
            "endemic point missing: {infected_fracs:?}"
        );
    }

    #[test]
    fn from_initial_on_supercritical_sis() {
        let model = sis(2.0, 1.0);
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let fp = from_initial(&model, &m0, 40.0, &FixedPointOptions::default()).unwrap();
        assert!((fp.occupancy[1] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn one_state_model_is_trivially_stationary() {
        let model = LocalModel::builder().state("only", ["x"]).build().unwrap();
        let fp = refine(
            &model,
            &Occupancy::unit(1, 0).unwrap(),
            &FixedPointOptions::default(),
        )
        .unwrap();
        assert_eq!(fp.occupancy.as_slice(), &[1.0]);
        assert_eq!(fp.stability, Stability::Stable);
    }

    #[test]
    fn validates_arguments() {
        let model = sis(2.0, 1.0);
        let wrong = Occupancy::new(vec![1.0]).unwrap();
        assert!(refine(&model, &wrong, &FixedPointOptions::default()).is_err());
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        assert!(from_initial(&model, &m0, -1.0, &FixedPointOptions::default()).is_err());
    }

    #[test]
    fn virus_smart_law_fixed_point_is_disease_free() {
        // Eq. 21 is linear with a stable spectrum for Setting-1 rates as
        // printed in Table II; the unique fixed point is (1, 0, 0).
        let model = LocalModel::builder()
            .state("s1", ["not_infected"])
            .state("s2", ["infected", "inactive"])
            .state("s3", ["infected", "active"])
            .transition("s1", "s2", |m: &Occupancy| {
                if m[0] > 1e-12 {
                    0.9 * m[2] / m[0]
                } else {
                    0.0
                }
            })
            .unwrap()
            .constant_transition("s2", "s1", 0.1)
            .unwrap()
            .constant_transition("s2", "s3", 0.01)
            .unwrap()
            .constant_transition("s3", "s2", 0.3)
            .unwrap()
            .constant_transition("s3", "s1", 0.3)
            .unwrap()
            .build()
            .unwrap();
        let m0 = Occupancy::new(vec![0.8, 0.15, 0.05]).unwrap();
        let fp = from_initial(&model, &m0, 400.0, &FixedPointOptions::default()).unwrap();
        assert!(fp.occupancy[0] > 1.0 - 1e-6, "{fp:?}");
    }
}
