//! Discrete-time mean-field models.
//!
//! Sec. II-B of the paper notes that "all the results in the present paper
//! can easily be adapted to discrete-time mean-field models", whose local
//! model is a DTMC with occupancy-dependent transition probabilities
//! (Bakhshi et al., the paper's reference \[4\]). This module carries out
//! that adaptation:
//!
//! * [`DiscreteLocalModel`] — `K` labeled states and transition
//!   *probability* functions `p(s, s')(m̄)`; missing row mass is an
//!   implicit self-loop (self-loops are meaningful in discrete time);
//! * the occupancy recurrence `m̄_{k+1} = m̄_k · P(m̄_k)` replacing Eq. 1;
//! * step-bounded until on the induced time-inhomogeneous DTMC via the
//!   same two-phase modified-chain product as the continuous Eq. 4;
//! * the discrete expectation operators `E` / `EP` and the conditional
//!   satisfaction *step set* replacing Eq. 20.

use mfcsl_ctmc::Labeling;
use mfcsl_math::Matrix;

use crate::{CoreError, Occupancy};

/// Row-sum tolerance for probability validation.
const PROB_TOL: f64 = 1e-9;

type ProbFn = std::sync::Arc<dyn Fn(&Occupancy) -> f64 + Send + Sync>;

struct DiscreteTransition {
    from: usize,
    to: usize,
    prob: ProbFn,
}

/// A discrete-time local model: the DTMC analogue of
/// [`crate::LocalModel`].
///
/// # Example
///
/// ```
/// use mfcsl_core::discrete::DiscreteLocalModel;
/// use mfcsl_core::Occupancy;
///
/// # fn main() -> Result<(), mfcsl_core::CoreError> {
/// // Discrete SIS: each step, a healthy node is infected with probability
/// // 0.5·m_i and an infected one recovers with probability 0.3.
/// let model = DiscreteLocalModel::builder()
///     .state("s", ["healthy"])
///     .state("i", ["infected"])
///     .transition("s", "i", |m: &Occupancy| 0.5 * m[1])?
///     .constant_transition("i", "s", 0.3)?
///     .build()?;
/// let m0 = Occupancy::new(vec![0.9, 0.1])?;
/// let traj = model.iterate(&m0, 120)?;
/// // Discrete endemic fixed point: 0.5·(1-i)·i = 0.3·i ⇒ i = 0.4.
/// assert!((traj.occupancy_at(120)[1] - 0.4).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub struct DiscreteLocalModel {
    names: Vec<String>,
    labeling: Labeling,
    transitions: Vec<DiscreteTransition>,
}

impl DiscreteLocalModel {
    /// Starts an empty builder.
    #[must_use]
    pub fn builder() -> DiscreteLocalModelBuilder {
        DiscreteLocalModelBuilder::default()
    }

    /// Number of local states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.names.len()
    }

    /// State names.
    #[must_use]
    pub fn state_names(&self) -> &[String] {
        &self.names
    }

    /// The labeling function.
    #[must_use]
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Looks up a state index by name.
    #[must_use]
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Evaluates the transition matrix `P(m̄)`; the diagonal absorbs the
    /// remaining row mass (implicit self-loop).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRate`] if a probability function
    /// returns a non-finite or negative value, or a row's explicit mass
    /// exceeds 1, and [`CoreError::InvalidArgument`] on a dimension
    /// mismatch.
    pub fn kernel_at(&self, m: &Occupancy) -> Result<Matrix, CoreError> {
        let n = self.n_states();
        if m.len() != n {
            return Err(CoreError::InvalidArgument(format!(
                "occupancy has {} entries, model has {n} states",
                m.len()
            )));
        }
        let mut p = Matrix::zeros(n, n);
        for tr in &self.transitions {
            let value = (tr.prob)(m);
            if !value.is_finite() || value < -PROB_TOL {
                return Err(CoreError::InvalidRate {
                    from: self.names[tr.from].clone(),
                    to: self.names[tr.to].clone(),
                    value,
                });
            }
            p[(tr.from, tr.to)] += value.max(0.0);
        }
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| p[(i, j)]).sum();
            if off > 1.0 + PROB_TOL {
                return Err(CoreError::InvalidRate {
                    from: self.names[i].clone(),
                    to: "<row>".into(),
                    value: off,
                });
            }
            p[(i, i)] = 1.0 - off.min(1.0);
        }
        Ok(p)
    }

    /// Iterates the occupancy recurrence `m̄_{k+1} = m̄_k·P(m̄_k)` for
    /// `steps` steps.
    ///
    /// # Errors
    ///
    /// Propagates kernel-evaluation errors.
    pub fn iterate(&self, m0: &Occupancy, steps: usize) -> Result<DiscreteTrajectory, CoreError> {
        let mut occupancies = Vec::with_capacity(steps + 1);
        occupancies.push(m0.clone());
        let mut current = m0.clone();
        for _ in 0..steps {
            let p = self.kernel_at(&current)?;
            let next = p
                .vec_mul(current.as_slice())
                .map_err(|e| CoreError::InvalidArgument(e.to_string()))?;
            current = Occupancy::project(next)?;
            occupancies.push(current.clone());
        }
        Ok(DiscreteTrajectory { occupancies })
    }

    /// Step-bounded until on the induced time-inhomogeneous DTMC:
    /// `Prob(s, Φ₁ U^[a,b] Φ₂)` evaluated at step `k0` of a trajectory,
    /// by the discrete analogue of Eq. 4 (two modified-chain products).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for `a > b`, satisfaction
    /// vectors of the wrong length, or a trajectory shorter than
    /// `k0 + b`.
    #[allow(clippy::too_many_arguments)]
    pub fn until_probabilities(
        &self,
        traj: &DiscreteTrajectory,
        k0: usize,
        sat1: &[bool],
        sat2: &[bool],
        a: usize,
        b: usize,
    ) -> Result<Vec<f64>, CoreError> {
        let n = self.n_states();
        if sat1.len() != n || sat2.len() != n {
            return Err(CoreError::InvalidArgument(format!(
                "satisfaction vectors have lengths {}/{}, model has {n} states",
                sat1.len(),
                sat2.len()
            )));
        }
        if a > b {
            return Err(CoreError::InvalidArgument(format!(
                "step interval [{a}, {b}] is reversed"
            )));
        }
        if k0 + b > traj.len_steps() {
            return Err(CoreError::InvalidArgument(format!(
                "trajectory has {} steps, until needs {}",
                traj.len_steps(),
                k0 + b
            )));
        }
        // Phase A on M[¬Φ₁] over steps [k0, k0+a).
        let mut pi_a = Matrix::identity(n);
        for k in k0..k0 + a {
            let p = self.masked_kernel(traj.occupancy_at(k), |s| !sat1[s])?;
            pi_a = pi_a
                .matmul(&p)
                .map_err(|e| CoreError::InvalidArgument(e.to_string()))?;
        }
        // Phase B on M[¬Φ₁ ∨ Φ₂] over steps [k0+a, k0+b).
        let mut pi_b = Matrix::identity(n);
        for k in k0 + a..k0 + b {
            let p = self.masked_kernel(traj.occupancy_at(k), |s| !sat1[s] || sat2[s])?;
            pi_b = pi_b
                .matmul(&p)
                .map_err(|e| CoreError::InvalidArgument(e.to_string()))?;
        }
        let goal_from =
            |s1: usize| -> f64 { (0..n).filter(|&s2| sat2[s2]).map(|s2| pi_b[(s1, s2)]).sum() };
        Ok((0..n)
            .map(|s| {
                if a == 0 {
                    goal_from(s)
                } else {
                    (0..n)
                        .filter(|&s1| sat1[s1])
                        .map(|s1| pi_a[(s, s1)] * goal_from(s1))
                        .sum()
                }
            })
            .collect())
    }

    /// The expected path probability `Σ_j m_j(k0)·Prob(s_j, φ)` — the
    /// discrete `EP` operator.
    ///
    /// # Errors
    ///
    /// See [`DiscreteLocalModel::until_probabilities`].
    #[allow(clippy::too_many_arguments)]
    pub fn expected_until(
        &self,
        traj: &DiscreteTrajectory,
        k0: usize,
        sat1: &[bool],
        sat2: &[bool],
        a: usize,
        b: usize,
    ) -> Result<f64, CoreError> {
        let probs = self.until_probabilities(traj, k0, sat1, sat2, a, b)?;
        let m = traj.occupancy_at(k0);
        Ok(m.as_slice()
            .iter()
            .zip(&probs)
            .map(|(&mj, &pj)| mj * pj)
            .sum())
    }

    /// The conditional satisfaction *step set* of a discrete `EP` bound:
    /// the steps `k ∈ [0, θ]` at which `Σ m_j(k)·Prob(s_j, φ, k) ⋈ p`
    /// (the discrete analogue of Eq. 20).
    ///
    /// # Errors
    ///
    /// See [`DiscreteLocalModel::until_probabilities`].
    #[allow(clippy::too_many_arguments)]
    pub fn csat_expected_until(
        &self,
        traj: &DiscreteTrajectory,
        theta: usize,
        sat1: &[bool],
        sat2: &[bool],
        a: usize,
        b: usize,
        cmp: mfcsl_csl::Comparison,
        bound: f64,
    ) -> Result<Vec<usize>, CoreError> {
        let mut out = Vec::new();
        for k in 0..=theta {
            let value = self.expected_until(traj, k, sat1, sat2, a, b)?;
            if cmp.holds(value, bound) {
                out.push(k);
            }
        }
        Ok(out)
    }

    /// States carrying an atomic proposition.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for propositions not in the
    /// alphabet.
    pub fn sat_ap(&self, ap: &str) -> Result<Vec<bool>, CoreError> {
        if !self.labeling.alphabet().contains(ap) {
            return Err(CoreError::InvalidArgument(format!(
                "atomic proposition `{ap}` does not occur in the model"
            )));
        }
        Ok((0..self.n_states())
            .map(|s| self.labeling.has(s, ap))
            .collect())
    }

    /// Kernel with masked (absorbing) states: masked rows become identity.
    fn masked_kernel<F: Fn(usize) -> bool>(
        &self,
        m: &Occupancy,
        absorb: F,
    ) -> Result<Matrix, CoreError> {
        let n = self.n_states();
        let mut p = self.kernel_at(m)?;
        for s in 0..n {
            if absorb(s) {
                for j in 0..n {
                    p[(s, j)] = if s == j { 1.0 } else { 0.0 };
                }
            }
        }
        Ok(p)
    }
}

impl std::fmt::Debug for DiscreteLocalModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiscreteLocalModel")
            .field("names", &self.names)
            .field("n_transitions", &self.transitions.len())
            .finish()
    }
}

/// The discrete occupancy trajectory `m̄_0, m̄_1, …`.
#[derive(Debug, Clone)]
pub struct DiscreteTrajectory {
    occupancies: Vec<Occupancy>,
}

impl DiscreteTrajectory {
    /// Number of iterated steps (`occupancies.len() - 1`).
    #[must_use]
    pub fn len_steps(&self) -> usize {
        self.occupancies.len() - 1
    }

    /// The occupancy at step `k` (clamped to the last computed step).
    #[must_use]
    pub fn occupancy_at(&self, k: usize) -> &Occupancy {
        let idx = k.min(self.occupancies.len() - 1);
        &self.occupancies[idx]
    }
}

/// Builder for [`DiscreteLocalModel`].
#[derive(Default)]
pub struct DiscreteLocalModelBuilder {
    names: Vec<String>,
    labels: Vec<Vec<String>>,
    transitions: Vec<(String, String, ProbFn)>,
}

impl DiscreteLocalModelBuilder {
    /// Adds a state with atomic-proposition labels.
    #[must_use]
    pub fn state<I, L>(mut self, name: impl Into<String>, labels: I) -> Self
    where
        I: IntoIterator<Item = L>,
        L: Into<String>,
    {
        self.names.push(name.into());
        self.labels
            .push(labels.into_iter().map(Into::into).collect());
        self
    }

    /// Adds a transition whose probability depends on the occupancy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for an explicit self-loop
    /// (self-loop mass is implicit: whatever the row does not spend).
    pub fn transition<F>(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        prob: F,
    ) -> Result<Self, CoreError>
    where
        F: Fn(&Occupancy) -> f64 + Send + Sync + 'static,
    {
        let from = from.into();
        let to = to.into();
        if from == to {
            return Err(CoreError::InvalidModel(format!(
                "explicit self-loop on `{from}`: self-loop mass is implicit"
            )));
        }
        self.transitions.push((from, to, std::sync::Arc::new(prob)));
        Ok(self)
    }

    /// Adds a transition with a constant probability.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for a probability outside
    /// `[0, 1]` or a self-loop.
    pub fn constant_transition(
        self,
        from: impl Into<String>,
        to: impl Into<String>,
        prob: f64,
    ) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&prob) {
            return Err(CoreError::InvalidModel(format!(
                "constant probability must be in [0, 1], got {prob}"
            )));
        }
        self.transition(from, to, move |_| prob)
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for an empty model or duplicate
    /// names, and [`CoreError::UnknownState`] for undeclared states.
    pub fn build(self) -> Result<DiscreteLocalModel, CoreError> {
        if self.names.is_empty() {
            return Err(CoreError::InvalidModel(
                "model must have at least one state".into(),
            ));
        }
        for (i, name) in self.names.iter().enumerate() {
            if self.names[i + 1..].contains(name) {
                return Err(CoreError::InvalidModel(format!(
                    "duplicate state name `{name}`"
                )));
            }
        }
        let index = |name: &str| -> Result<usize, CoreError> {
            self.names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| CoreError::UnknownState(name.to_string()))
        };
        let mut transitions = Vec::with_capacity(self.transitions.len());
        for (from, to, prob) in self.transitions {
            transitions.push(DiscreteTransition {
                from: index(&from)?,
                to: index(&to)?,
                prob,
            });
        }
        let mut labeling = Labeling::new(self.names.len());
        for (s, labels) in self.labels.iter().enumerate() {
            for l in labels {
                labeling.add(s, l.clone());
            }
        }
        Ok(DiscreteLocalModel {
            names: self.names,
            labeling,
            transitions,
        })
    }
}

impl std::fmt::Debug for DiscreteLocalModelBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiscreteLocalModelBuilder")
            .field("names", &self.names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_csl::Comparison;

    fn dsis() -> DiscreteLocalModel {
        DiscreteLocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", |m: &Occupancy| 0.5 * m[1])
            .unwrap()
            .constant_transition("i", "s", 0.3)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn kernel_rows_are_stochastic() {
        let model = dsis();
        let m = Occupancy::new(vec![0.6, 0.4]).unwrap();
        let p = model.kernel_at(&m).unwrap();
        assert!((p[(0, 1)] - 0.2).abs() < 1e-15);
        assert!((p[(0, 0)] - 0.8).abs() < 1e-15);
        for i in 0..2 {
            assert!((p.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn recurrence_reaches_discrete_endemic_point() {
        let model = dsis();
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let traj = model.iterate(&m0, 200).unwrap();
        // Fixed point: 0.5(1-i)i = 0.3i ⇒ i = 1 - 0.6 = 0.4.
        assert!((traj.occupancy_at(200)[1] - 0.4).abs() < 1e-9);
        assert_eq!(traj.len_steps(), 200);
        // Clamped access.
        assert_eq!(traj.occupancy_at(999)[1], traj.occupancy_at(200)[1]);
    }

    #[test]
    fn until_single_step_hand_computed() {
        let model = dsis();
        let m0 = Occupancy::new(vec![0.8, 0.2]).unwrap();
        let traj = model.iterate(&m0, 5).unwrap();
        let sat1 = model.sat_ap("healthy").unwrap();
        let sat2 = model.sat_ap("infected").unwrap();
        // One step from s: infection probability 0.5·m_i(0) = 0.1.
        let p = model
            .until_probabilities(&traj, 0, &sat1, &sat2, 0, 1)
            .unwrap();
        assert!((p[0] - 0.1).abs() < 1e-12);
        // Already infected: immediate witness.
        assert_eq!(p[1], 1.0);
    }

    #[test]
    fn until_two_steps_uses_time_varying_kernel() {
        let model = dsis();
        let m0 = Occupancy::new(vec![0.8, 0.2]).unwrap();
        let traj = model.iterate(&m0, 5).unwrap();
        let sat1 = model.sat_ap("healthy").unwrap();
        let sat2 = model.sat_ap("infected").unwrap();
        let p = model
            .until_probabilities(&traj, 0, &sat1, &sat2, 0, 2)
            .unwrap();
        // Survive step 1 (prob 0.9) then get infected with 0.5·m_i(1);
        // m_i(1) = 0.8·0.1... wait: m_i(1) = m_i(0)·0.7 + m_s(0)·0.1 = 0.22.
        let p_inf_step2 = 0.5 * traj.occupancy_at(1)[1];
        let expected = 0.1 + 0.9 * p_inf_step2;
        assert!((p[0] - expected).abs() < 1e-12, "{} vs {expected}", p[0]);
    }

    #[test]
    fn until_with_lower_bound() {
        let model = dsis();
        let m0 = Occupancy::new(vec![0.8, 0.2]).unwrap();
        let traj = model.iterate(&m0, 5).unwrap();
        let sat1 = model.sat_ap("healthy").unwrap();
        let sat2 = model.sat_ap("infected").unwrap();
        // [1, 2]: must still be healthy after step 1, then jump in step 2.
        let p = model
            .until_probabilities(&traj, 0, &sat1, &sat2, 1, 2)
            .unwrap();
        let expected = 0.9 * 0.5 * traj.occupancy_at(1)[1];
        assert!((p[0] - expected).abs() < 1e-12);
        // From the infected state the prefix condition already fails at
        // step 0 (the starting state is not healthy), so the probability
        // is exactly zero — the witness must be preceded by Φ₁ *from the
        // start*.
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn expected_until_and_csat() {
        let model = dsis();
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let traj = model.iterate(&m0, 60).unwrap();
        let sat1 = model.sat_ap("healthy").unwrap();
        let sat2 = model.sat_ap("infected").unwrap();
        // The infected fraction grows toward 0.4, so the expected until
        // value grows; a `<` bound yields a prefix of steps.
        let steps = model
            .csat_expected_until(&traj, 40, &sat1, &sat2, 0, 3, Comparison::Lt, 0.4)
            .unwrap();
        assert!(!steps.is_empty());
        assert_eq!(steps[0], 0);
        // Must be a contiguous prefix for a monotone curve.
        for (i, &k) in steps.iter().enumerate() {
            assert_eq!(i, k);
        }
        assert!(steps.len() < 41, "the bound is crossed inside the window");
    }

    #[test]
    fn validation() {
        let model = dsis();
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let traj = model.iterate(&m0, 3).unwrap();
        let s = [true, false];
        assert!(model
            .until_probabilities(&traj, 0, &s, &[true], 0, 1)
            .is_err());
        assert!(model.until_probabilities(&traj, 0, &s, &s, 2, 1).is_err());
        assert!(model.until_probabilities(&traj, 0, &s, &s, 0, 9).is_err());
        assert!(model.sat_ap("ghost").is_err());
        // Kernel validation: row mass above one.
        let bad = DiscreteLocalModel::builder()
            .state("a", ["a"])
            .state("b", ["b"])
            .constant_transition("a", "b", 0.9)
            .unwrap()
            .transition("a", "b", |_| 0.9)
            .unwrap()
            .build()
            .unwrap();
        let m = Occupancy::new(vec![0.5, 0.5]).unwrap();
        assert!(matches!(
            bad.kernel_at(&m),
            Err(CoreError::InvalidRate { .. })
        ));
        // Builder validation.
        assert!(DiscreteLocalModel::builder().build().is_err());
        assert!(DiscreteLocalModel::builder()
            .state("a", ["x"])
            .transition("a", "a", |_| 0.1)
            .is_err());
        assert!(DiscreteLocalModel::builder()
            .state("a", ["x"])
            .constant_transition("a", "b", 1.5)
            .is_err());
    }

    #[test]
    fn continuous_and_discrete_small_step_agreement() {
        // Euler-discretized continuous SIS with step h approximates the
        // CTMC mean field: p = h·rate.
        let h = 0.01;
        let discrete = DiscreteLocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", move |m: &Occupancy| h * 2.0 * m[1])
            .unwrap()
            .constant_transition("i", "s", h * 1.0)
            .unwrap()
            .build()
            .unwrap();
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let steps = (5.0 / h) as usize;
        let traj = discrete.iterate(&m0, steps).unwrap();
        let continuous_model = crate::LocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", |m: &Occupancy| 2.0 * m[1])
            .unwrap()
            .constant_transition("i", "s", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let continuous = crate::meanfield::solve(
            &continuous_model,
            &m0,
            5.0,
            &mfcsl_ode::OdeOptions::default(),
        )
        .unwrap();
        let d = traj.occupancy_at(steps)[1];
        let c = continuous.occupancy_at(5.0)[1];
        assert!((d - c).abs() < 0.01, "discrete {d} vs continuous {c}");
    }
}
