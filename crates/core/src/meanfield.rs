//! The overall mean-field model `𝓜ᴼ` (Def. 2) and its deterministic limit.
//!
//! By the mean-field convergence theorem (Theorem 1 of the paper, after
//! Kurtz / Bobbio-Gribaudo-Telek), the occupancy vector of `N → ∞`
//! interacting objects follows the ODE `dm̄/dt = m̄(t)·Q(m̄(t))` (Eq. 1).
//! [`solve`] integrates it into a dense [`OccupancyTrajectory`]; along the
//! trajectory, a random individual object is the *time-inhomogeneous* CTMC
//! with generator `Q(m̄(t))`, exposed through [`TrajectoryGenerator`] for
//! the CSL layer.

use std::cell::RefCell;

use mfcsl_csl::{CslError, LocalTvModel};
use mfcsl_ctmc::inhomogeneous::TimeVaryingGenerator;
use mfcsl_math::Matrix;
use mfcsl_ode::batch::{solve_batch_recovering, BatchMode, BatchStats, BatchWorkspace};
use mfcsl_ode::dopri::SolverWorkspace;
use mfcsl_ode::fault::{FaultPlan, FaultySystem};
use mfcsl_ode::problem::OdeSystem;
use mfcsl_ode::recover::{solve_recovering, Recovery};
use mfcsl_ode::{OdeOptions, Trajectory};

use crate::{CoreError, LocalModel, Occupancy};

/// Drift threshold below which the trajectory counts as settled for the
/// steady-regime fast path. Conservative: a drift of `ε` over a window of
/// length `T` perturbs the window matrix by `O(ε·L·T)` (`L` the rate
/// functions' Lipschitz constant), so `1e-11` keeps the fast path within
/// the `1e-9` equivalence budget for the windows the checkers use.
pub const STEADY_DETECT_EPS: f64 = 1e-11;

/// A dense solution of the mean-field ODE (Eq. 1) over `[0, t_end]`.
#[derive(Debug, Clone)]
pub struct OccupancyTrajectory<'a> {
    model: &'a LocalModel,
    trajectory: Trajectory,
}

impl<'a> OccupancyTrajectory<'a> {
    /// Re-attaches a bare [`Trajectory`] to its model — the snapshot-restore
    /// path. The trajectory must have the model's dimension and start at
    /// `t = 0`; its knot data is taken verbatim, so a trajectory serialized
    /// with exact bit patterns round-trips bitwise and every verdict derived
    /// from it matches the pre-snapshot session exactly.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] on a dimension mismatch or a nonzero
    /// start time.
    pub fn from_parts(
        model: &'a LocalModel,
        trajectory: Trajectory,
    ) -> Result<OccupancyTrajectory<'a>, CoreError> {
        if trajectory.dim() != model.n_states() {
            return Err(CoreError::InvalidArgument(format!(
                "trajectory has dimension {}, model has {} states",
                trajectory.dim(),
                model.n_states()
            )));
        }
        if trajectory.t_start() != 0.0 {
            return Err(CoreError::InvalidArgument(format!(
                "trajectory starts at t = {}, expected 0",
                trajectory.t_start()
            )));
        }
        Ok(OccupancyTrajectory { model, trajectory })
    }

    /// The local model this trajectory belongs to.
    #[must_use]
    pub fn model(&self) -> &'a LocalModel {
        self.model
    }

    /// The underlying dense ODE solution.
    #[must_use]
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// End of the solved time range.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.trajectory.t_end()
    }

    /// The occupancy vector `m̄(t)` (clamped to the solved range and
    /// projected back onto the simplex).
    ///
    /// # Panics
    ///
    /// Panics only if the stored trajectory has decayed to an all-zero
    /// vector, which the simplex projection of the integrator prevents.
    #[must_use]
    pub fn occupancy_at(&self, t: f64) -> Occupancy {
        Occupancy::project(self.trajectory.eval(t))
            .expect("projected trajectory stays on the simplex")
    }

    /// The time-varying generator `Q(m̄(t))` of a random individual object.
    #[must_use]
    pub fn generator(&self) -> TrajectoryGenerator<'_> {
        TrajectoryGenerator {
            model: self.model,
            trajectory: &self.trajectory,
        }
    }

    /// Packages the trajectory as the labeled time-varying local model the
    /// CSL checkers operate on (without a stationary regime; see
    /// [`crate::mfcsl::Checker`] for the variant that attaches one).
    ///
    /// When the trajectory has numerically settled before its horizon, the
    /// settle time is attached via [`LocalTvModel::with_steady_from`], which
    /// lets the until algorithms hand the window propagation off to a
    /// single uniformization once the generator stops varying.
    ///
    /// # Errors
    ///
    /// Propagates shape validation from [`LocalTvModel::new`].
    pub fn local_tv_model(&self) -> Result<LocalTvModel<TrajectoryGenerator<'_>>, CslError> {
        let mut tv = LocalTvModel::new(
            self.generator(),
            self.model.labeling().clone(),
            self.model.state_names().to_vec(),
        )?;
        if let Some(t) = self.settled_from(STEADY_DETECT_EPS) {
            tv = tv.with_steady_from(t);
        }
        // On-the-fly satisfaction sets: restrict predicate evaluation to
        // the forward-reachable closure of the initial occupancy's support.
        // For models whose initial occupancy touches every communicating
        // class this is the full space (and sat vectors are unchanged);
        // for large structured models it prunes the unreachable bulk.
        let m0 = self.occupancy_at(0.0);
        let support: Vec<usize> = (0..m0.len()).filter(|&s| m0[s] > 0.0).collect();
        tv = tv.with_reachable(self.model.reachable_closure(&support));
        Ok(tv)
    }

    /// The earliest knot time from which the trajectory stays settled: every
    /// knot from there to the horizon has `‖dm̄/dt‖∞ ≤ eps`. Beyond the
    /// horizon the dense solution extrapolates as a constant, so from the
    /// returned time on the generator `Q(m̄(t))` no longer varies (within
    /// the drift bound `eps`). `None` if the final knot still moves.
    #[must_use]
    pub fn settled_from(&self, eps: f64) -> Option<f64> {
        let curve = self.trajectory.curve();
        let ts = curve.knots();
        let mut settled = None;
        for k in (0..ts.len()).rev() {
            if curve.derivative_at(k).iter().all(|&v| v.abs() <= eps) {
                settled = Some(ts[k]);
            } else {
                break;
            }
        }
        settled
    }

    /// The earliest knot time from which every later knot stays within
    /// `eps` (max norm) of `target` — used by the analysis engine to stamp
    /// a stationary regime with the time its trajectory reached `m̃`.
    /// `None` if the final knot is still farther than `eps` away, or on a
    /// dimension mismatch.
    #[must_use]
    pub fn settled_near(&self, target: &[f64], eps: f64) -> Option<f64> {
        let curve = self.trajectory.curve();
        if target.len() != curve.dim() {
            return None;
        }
        let ts = curve.knots();
        let mut settled = None;
        for k in (0..ts.len()).rev() {
            let close = curve
                .value_at(k)
                .iter()
                .zip(target)
                .all(|(&v, &m)| (v - m).abs() <= eps);
            if close {
                settled = Some(ts[k]);
            } else {
                break;
            }
        }
        settled
    }

    /// Extends the trajectory to a longer horizon by solving only the new
    /// segment `[t_end, new_t_end]`, restarting the integrator from the
    /// exact (bitwise) final knot state.
    ///
    /// The already-solved knot data is kept untouched, so every evaluation
    /// on the old range — and therefore every satisfaction set or
    /// probability curve cached against it — remains bitwise identical.
    /// A horizon at or below the current `t_end` returns the trajectory
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for a non-finite horizon and
    /// propagates ODE failures from the segment solve.
    pub fn extended_to(self, t_end: f64, options: &OdeOptions) -> Result<Self, CoreError> {
        self.extended_to_with(t_end, options, &mut SolverWorkspace::new())
    }

    /// Like [`OccupancyTrajectory::extended_to`] but reuses a caller-owned
    /// solver workspace for the segment solve, so repeated horizon
    /// extensions (the analysis engine's common case) allocate nothing per
    /// call beyond the new knot storage.
    ///
    /// # Errors
    ///
    /// Same contract as [`OccupancyTrajectory::extended_to`].
    pub fn extended_to_with(
        self,
        t_end: f64,
        options: &OdeOptions,
        workspace: &mut SolverWorkspace,
    ) -> Result<Self, CoreError> {
        if !t_end.is_finite() {
            return Err(CoreError::InvalidArgument(format!(
                "horizon must be finite, got {t_end}"
            )));
        }
        if t_end <= self.t_end() {
            return Ok(self);
        }
        let t0 = self.t_end();
        let y0 = self.trajectory.eval(t0);
        let sys = MeanFieldSystem::new(self.model);
        // Extensions ride the recovery ladder too (never fault-injected:
        // faults apply to fresh solves, where the chaos suite exercises
        // them); the tail's recovery counters sum into the trajectory's.
        let tail = solve_recovering(&sys, t0, t_end, &y0, options, workspace)?.0;
        Ok(OccupancyTrajectory {
            model: self.model,
            trajectory: self.trajectory.extended_with(&tail)?,
        })
    }
}

/// [`TimeVaryingGenerator`] adapter: evaluates `Q(m̄(t))` by reading the
/// occupancy off the dense trajectory.
#[derive(Debug, Clone, Copy)]
pub struct TrajectoryGenerator<'a> {
    model: &'a LocalModel,
    trajectory: &'a Trajectory,
}

impl TimeVaryingGenerator for TrajectoryGenerator<'_> {
    fn n_states(&self) -> usize {
        self.model.n_states()
    }

    fn write_generator(&self, t: f64, q: &mut Matrix) {
        let m = Occupancy::project(self.trajectory.eval(t))
            .expect("projected trajectory stays on the simplex");
        self.model.write_generator_at(&m, q);
    }

    fn sparsity(&self) -> Option<(&[usize], &[usize])> {
        Some(self.model.sparsity())
    }

    fn write_rates(&self, t: f64, rates: &mut [f64]) {
        let m = Occupancy::project(self.trajectory.eval(t))
            .expect("projected trajectory stays on the simplex");
        self.model.write_rates_at(&m, rates);
    }
}

/// Integrates the mean-field ODE (Eq. 1) from `m0` to `t_end`.
///
/// The integrator re-projects onto the probability simplex after every
/// accepted step, so the returned trajectory is a valid occupancy at every
/// time.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] on a dimension mismatch or
/// negative horizon, and propagates ODE failures (e.g. a rate function
/// returning NaN surfaces as a non-finite derivative).
///
/// # Example
///
/// ```
/// use mfcsl_core::{meanfield, LocalModel, Occupancy};
/// use mfcsl_ode::OdeOptions;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = LocalModel::builder()
///     .state("s", ["healthy"])
///     .state("i", ["infected"])
///     .transition("s", "i", |m: &Occupancy| 2.0 * m[1])?
///     .constant_transition("i", "s", 1.0)?
///     .build()?;
/// let m0 = Occupancy::new(vec![0.9, 0.1])?;
/// let sol = meanfield::solve(&model, &m0, 50.0, &OdeOptions::default())?;
/// // SIS endemic equilibrium at infected fraction 1 - γ/β = 0.5.
/// assert!((sol.occupancy_at(50.0)[1] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn solve<'a>(
    model: &'a LocalModel,
    m0: &Occupancy,
    t_end: f64,
    options: &OdeOptions,
) -> Result<OccupancyTrajectory<'a>, CoreError> {
    solve_with(model, m0, t_end, options, &mut SolverWorkspace::new())
}

/// Like [`solve`] but reuses a caller-owned solver workspace, so
/// back-to-back mean-field solves (parameter sweeps, the `cSat` grid)
/// allocate nothing per call beyond the trajectory's own knot storage.
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_with<'a>(
    model: &'a LocalModel,
    m0: &Occupancy,
    t_end: f64,
    options: &OdeOptions,
    workspace: &mut SolverWorkspace,
) -> Result<OccupancyTrajectory<'a>, CoreError> {
    solve_faulted_with(model, m0, t_end, options, None, workspace)
}

/// Like [`solve`] but optionally wraps the right-hand side in a seeded
/// [`FaultySystem`] — the chaos-testing hook. With `fault == None` this is
/// exactly [`solve`], bitwise.
///
/// # Errors
///
/// Same contract as [`solve`]; injected faults surface as the structured
/// ODE errors they provoke (never a panic).
pub fn solve_faulted<'a>(
    model: &'a LocalModel,
    m0: &Occupancy,
    t_end: f64,
    options: &OdeOptions,
    fault: Option<FaultPlan>,
) -> Result<OccupancyTrajectory<'a>, CoreError> {
    solve_faulted_with(model, m0, t_end, options, fault, &mut SolverWorkspace::new())
}

/// Workspace-reusing variant of [`solve_faulted`]; the common
/// implementation behind every fresh mean-field solve. Integration runs
/// through the recovery ladder ([`mfcsl_ode::recover`]): plain Dopri5
/// first (bitwise identical when healthy), then a relaxed controller, then
/// the A-stable implicit trapezoid, with recoveries recorded in the
/// trajectory's [`mfcsl_ode::SolveStats`].
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_faulted_with<'a>(
    model: &'a LocalModel,
    m0: &Occupancy,
    t_end: f64,
    options: &OdeOptions,
    fault: Option<FaultPlan>,
    workspace: &mut SolverWorkspace,
) -> Result<OccupancyTrajectory<'a>, CoreError> {
    let n = model.n_states();
    if m0.len() != n {
        return Err(CoreError::InvalidArgument(format!(
            "initial occupancy has {} entries, model has {n} states",
            m0.len()
        )));
    }
    if !(t_end >= 0.0) || !t_end.is_finite() {
        return Err(CoreError::InvalidArgument(format!(
            "horizon must be finite and non-negative, got {t_end}"
        )));
    }
    let sys = MeanFieldSystem::new(model);
    let trajectory = match fault {
        None => solve_recovering(&sys, 0.0, t_end, m0.as_slice(), options, workspace)?.0,
        Some(plan) => {
            let faulty = FaultySystem::new(&sys, plan);
            solve_recovering(&faulty, 0.0, t_end, m0.as_slice(), options, workspace)?.0
        }
    };
    Ok(OccupancyTrajectory { model, trajectory })
}

/// The mean-field ODE system `dm̄/dt = m̄·Q(m̄)` with simplex projection —
/// shared by the fresh solve and the segment solve of
/// [`OccupancyTrajectory::extended_to`], so both integrate exactly the same
/// right-hand side.
///
/// The occupancy copy and the generator matrix live in a `RefCell` scratch
/// allocated once per system, so the right-hand side itself is
/// allocation-free; its accumulation order matches `Matrix::vec_mul`
/// exactly, keeping trajectories bitwise identical to the old allocating
/// implementation.
struct MeanFieldSystem<'a> {
    model: &'a LocalModel,
    scratch: RefCell<MfScratch>,
}

struct MfScratch {
    occ: Occupancy,
    q: Matrix,
}

impl<'a> MeanFieldSystem<'a> {
    fn new(model: &'a LocalModel) -> Self {
        let n = model.n_states();
        MeanFieldSystem {
            model,
            scratch: RefCell::new(MfScratch {
                occ: Occupancy::new_unchecked(vec![0.0; n]),
                q: Matrix::zeros(n, n),
            }),
        }
    }
}

impl OdeSystem for MeanFieldSystem<'_> {
    fn dim(&self) -> usize {
        self.model.n_states()
    }

    fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let mut s = self.scratch.borrow_mut();
        // Mid-step states may drift slightly off the simplex, so project the
        // copy we hand to the rate functions; the copy's buffer is recycled
        // through the scratch `Occupancy`.
        let mut m = std::mem::replace(&mut s.occ, Occupancy::new_unchecked(Vec::new())).into_vec();
        m.copy_from_slice(y);
        let projected = mfcsl_math::simplex::renormalize(&mut m).is_ok();
        s.occ = Occupancy::new_unchecked(m);
        if !projected {
            // Signal the solver through a non-finite derivative.
            dy.fill(f64::NAN);
            return;
        }
        let MfScratch { occ, q } = &mut *s;
        self.model.write_generator_at(occ, q);
        // dy = m̄·Q(m̄), with `Matrix::vec_mul`'s accumulation order.
        let n = dy.len();
        let qs = q.as_slice();
        dy.fill(0.0);
        for (i, &xi) in occ.as_slice().iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = &qs[i * n..(i + 1) * n];
            for (dy_j, &q_ij) in dy.iter_mut().zip(row) {
                *dy_j += xi * q_ij;
            }
        }
    }

    fn project(&self, _t: f64, y: &mut [f64]) {
        let _ = mfcsl_math::simplex::renormalize(y);
    }

    /// Real K×B kernel for the batched solving lane: one pass evaluates
    /// `m̄·Q(m̄)` for every active column without the gather/scatter round
    /// trip through the scalar path's slice API, reusing the same scratch
    /// occupancy and generator matrix across columns. Per column the
    /// arithmetic (projection, generator evaluation, accumulation order) is
    /// exactly [`MeanFieldSystem::rhs`], so per-lane batched trajectories
    /// are bitwise identical to serial ones.
    fn rhs_batch(&self, _ts: &[f64], active: &[bool], y: &[f64], dy: &mut [f64], width: usize) {
        let n = self.dim();
        let mut s = self.scratch.borrow_mut();
        let mut m = std::mem::replace(&mut s.occ, Occupancy::new_unchecked(Vec::new())).into_vec();
        for b in 0..width {
            if !active[b] {
                continue;
            }
            for (i, mi) in m.iter_mut().enumerate() {
                *mi = y[i * width + b];
            }
            if mfcsl_math::simplex::renormalize(&mut m).is_err() {
                for i in 0..n {
                    dy[i * width + b] = f64::NAN;
                }
                continue;
            }
            let occ = Occupancy::new_unchecked(std::mem::take(&mut m));
            self.model.write_generator_at(&occ, &mut s.q);
            m = occ.into_vec();
            let qs = s.q.as_slice();
            for i in 0..n {
                dy[i * width + b] = 0.0;
            }
            for (i, &xi) in m.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let row = &qs[i * n..(i + 1) * n];
                for (j, &q_ij) in row.iter().enumerate() {
                    dy[j * width + b] += xi * q_ij;
                }
            }
        }
        s.occ = Occupancy::new_unchecked(m);
    }

    /// Batched simplex projection: renormalizes every active column in
    /// place through the same scratch buffer, replicating
    /// [`MeanFieldSystem::project`] per column bitwise.
    fn project_batch(&self, _ts: &[f64], active: &[bool], y: &mut [f64], width: usize) {
        let mut s = self.scratch.borrow_mut();
        let mut m = std::mem::replace(&mut s.occ, Occupancy::new_unchecked(Vec::new())).into_vec();
        for b in 0..width {
            if !active[b] {
                continue;
            }
            for (i, mi) in m.iter_mut().enumerate() {
                *mi = y[i * width + b];
            }
            let _ = mfcsl_math::simplex::renormalize(&mut m);
            for (i, &mi) in m.iter().enumerate() {
                y[i * width + b] = mi;
            }
        }
        s.occ = Occupancy::new_unchecked(m);
    }
}

/// Per-lane results and drive counters of a batched mean-field sweep.
#[derive(Debug)]
pub struct BatchSweep<'a> {
    /// One entry per initial occupancy, in input order. A lane that
    /// detached from the batch and exhausted the scalar recovery ladder
    /// carries the ladder's error; every other lane reports its trajectory
    /// and the recovery rung that produced it ([`Recovery::None`] when the
    /// batched drive itself succeeded).
    pub lanes: Vec<Result<(OccupancyTrajectory<'a>, Recovery), CoreError>>,
    /// Drive counters of the underlying batched solve:
    /// `stats.batch_rhs_calls` is the number of K×B kernel invocations that
    /// propagated the whole sweep.
    pub stats: BatchStats,
}

/// Integrates the mean-field ODE from every occupancy of `m0s` to `t_end`
/// as one structure-of-arrays batch ([`mfcsl_ode::batch`]).
///
/// In [`BatchMode::PerLane`] every lane is bitwise identical to the
/// corresponding serial [`solve`]; in [`BatchMode::Shared`] the whole sweep
/// rides one step-size controller, costing roughly a single solve's worth
/// of drive. Lanes that fail numerically detach and are re-solved through
/// the scalar recovery ladder without perturbing their siblings.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for a dimension-mismatched lane
/// or an invalid horizon (whole-call, mirroring [`solve`]'s validation);
/// per-lane numerical failures surface inside [`BatchSweep::lanes`].
pub fn solve_batch<'a>(
    model: &'a LocalModel,
    m0s: &[Occupancy],
    t_end: f64,
    options: &OdeOptions,
    mode: BatchMode,
) -> Result<BatchSweep<'a>, CoreError> {
    solve_batch_with(
        model,
        m0s,
        t_end,
        options,
        mode,
        &mut BatchWorkspace::new(),
        &mut SolverWorkspace::new(),
    )
}

/// Workspace-reusing variant of [`solve_batch`] for repeated sweeps.
///
/// # Errors
///
/// Same contract as [`solve_batch`].
pub fn solve_batch_with<'a>(
    model: &'a LocalModel,
    m0s: &[Occupancy],
    t_end: f64,
    options: &OdeOptions,
    mode: BatchMode,
    workspace: &mut BatchWorkspace,
    scalar_workspace: &mut SolverWorkspace,
) -> Result<BatchSweep<'a>, CoreError> {
    let n = model.n_states();
    for (b, m0) in m0s.iter().enumerate() {
        if m0.len() != n {
            return Err(CoreError::InvalidArgument(format!(
                "initial occupancy {b} has {} entries, model has {n} states",
                m0.len()
            )));
        }
    }
    if !(t_end >= 0.0) || !t_end.is_finite() {
        return Err(CoreError::InvalidArgument(format!(
            "horizon must be finite and non-negative, got {t_end}"
        )));
    }
    let sys = MeanFieldSystem::new(model);
    let y0s: Vec<&[f64]> = m0s.iter().map(Occupancy::as_slice).collect();
    let solution = solve_batch_recovering(
        &sys,
        0.0,
        t_end,
        &y0s,
        options,
        mode,
        workspace,
        scalar_workspace,
    )?;
    let lanes = solution
        .lanes
        .into_iter()
        .map(|lane| match lane {
            Ok((trajectory, recovery)) => Ok((OccupancyTrajectory { model, trajectory }, recovery)),
            Err(e) => Err(CoreError::from(e)),
        })
        .collect();
    Ok(BatchSweep {
        lanes,
        stats: solution.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sis(beta: f64, gamma: f64) -> LocalModel {
        LocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", move |m: &Occupancy| beta * m[1])
            .unwrap()
            .constant_transition("i", "s", gamma)
            .unwrap()
            .build()
            .unwrap()
    }

    /// The paper's virus model (Fig. 2 / Eq. 21) with the smart-virus
    /// infection law `k₁* = k₁ m₃ / m₁`.
    fn virus(k: [f64; 5]) -> LocalModel {
        let [k1, k2, k3, k4, k5] = k;
        LocalModel::builder()
            .state("s1", ["not_infected"])
            .state("s2", ["infected", "inactive"])
            .state("s3", ["infected", "active"])
            .transition("s1", "s2", move |m: &Occupancy| {
                if m[0] > 1e-12 {
                    k1 * m[2] / m[0]
                } else {
                    0.0
                }
            })
            .unwrap()
            .constant_transition("s2", "s1", k2)
            .unwrap()
            .constant_transition("s2", "s3", k3)
            .unwrap()
            .constant_transition("s3", "s2", k4)
            .unwrap()
            .constant_transition("s3", "s1", k5)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn sis_logistic_dynamics_analytic() {
        // SIS mean field: di/dt = βsi - γi with s = 1 - i is logistic.
        // β = 2, γ = 1: i(t) = 0.5 / (1 + (0.5/i0 - 1) e^{-t}) for i0 > 0.
        let model = sis(2.0, 1.0);
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let sol = solve(
            &model,
            &m0,
            10.0,
            &OdeOptions::default().with_tolerances(1e-11, 1e-13),
        )
        .unwrap();
        for &t in &[0.5, 2.0, 5.0, 10.0] {
            let exact = 0.5 / (1.0 + (0.5 / 0.1 - 1.0) * (-t_f(t)).exp());
            let got = sol.occupancy_at(t)[1];
            assert!((got - exact).abs() < 1e-8, "t = {t}: {got} vs {exact}");
        }
        fn t_f(t: f64) -> f64 {
            t
        }
    }

    #[test]
    fn virus_ode_matches_eq21() {
        // For the smart-virus law, the overall ODE is linear (Eq. 21):
        // dm1 = -k1 m3 + k2 m2 + k5 m3, etc. Check the drift directly.
        let k = [0.9, 0.1, 0.01, 0.3, 0.3];
        let model = virus(k);
        let m = Occupancy::new(vec![0.8, 0.15, 0.05]).unwrap();
        let d = model.drift(&m).unwrap();
        let expected = [
            -k[0] * m[2] + k[1] * m[1] + k[4] * m[2],
            (k[0] + k[3]) * m[2] - (k[1] + k[2]) * m[1],
            k[2] * m[1] - (k[3] + k[4]) * m[2],
        ];
        for (a, b) in d.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-14, "{d:?} vs {expected:?}");
        }
    }

    #[test]
    fn trajectory_stays_on_simplex() {
        let model = virus([5.0, 0.02, 0.01, 0.5, 0.5]);
        let m0 = Occupancy::new(vec![0.85, 0.1, 0.05]).unwrap();
        let sol = solve(&model, &m0, 30.0, &OdeOptions::default()).unwrap();
        for &t in &[0.0, 1.0, 7.7, 15.0, 30.0] {
            let m = sol.occupancy_at(t);
            let sum: f64 = m.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(m.as_slice().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn generator_adapter_tracks_occupancy() {
        let model = sis(2.0, 1.0);
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let sol = solve(&model, &m0, 5.0, &OdeOptions::default()).unwrap();
        let gen = sol.generator();
        assert_eq!(gen.n_states(), 2);
        let q0 = gen.generator_at(0.0);
        assert!((q0[(0, 1)] - 0.2).abs() < 1e-9);
        // Later the infected fraction has grown, so the infection rate has
        // too.
        let q5 = gen.generator_at(5.0);
        assert!(q5[(0, 1)] > q0[(0, 1)]);
    }

    #[test]
    fn local_tv_model_carries_labels() {
        let model = sis(2.0, 1.0);
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let sol = solve(&model, &m0, 1.0, &OdeOptions::default()).unwrap();
        let tv = sol.local_tv_model().unwrap();
        assert_eq!(tv.n_states(), 2);
        assert_eq!(tv.sat_ap("infected").unwrap(), vec![false, true]);
    }

    #[test]
    fn extension_matches_single_solve_within_tolerance() {
        // Solve to θ₁, extend to θ₂ — must agree with one fresh solve to θ₂
        // within the ODE tolerance everywhere (the two take different step
        // sequences past θ₁, so exact equality is not expected there).
        let model = virus([0.9, 0.1, 0.01, 0.3, 0.3]);
        let m0 = Occupancy::new(vec![0.85, 0.1, 0.05]).unwrap();
        let options = OdeOptions::default().with_tolerances(1e-9, 1e-12);
        let (theta1, theta2) = (4.0, 11.0);
        let partial = solve(&model, &m0, theta1, &options).unwrap();
        let prefix_sample = partial.trajectory().eval(2.3);
        let extended = partial.extended_to(theta2, &options).unwrap();
        assert_eq!(extended.t_end(), theta2);
        // Extension left the old range bitwise untouched.
        assert_eq!(extended.trajectory().eval(2.3), prefix_sample);
        let fresh = solve(&model, &m0, theta2, &options).unwrap();
        for i in 0..=22 {
            let t = theta2 * f64::from(i) / 22.0;
            let a = extended.occupancy_at(t);
            let b = fresh.occupancy_at(t);
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-7, "t = {t}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn extension_noop_and_validation() {
        let model = sis(2.0, 1.0);
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let options = OdeOptions::default();
        let sol = solve(&model, &m0, 3.0, &options).unwrap();
        let knots_before = sol.trajectory().knots().to_vec();
        // Shorter or equal horizons are no-ops.
        let sol = sol.extended_to(1.0, &options).unwrap();
        assert_eq!(sol.trajectory().knots(), &knots_before[..]);
        let sol = sol.extended_to(3.0, &options).unwrap();
        assert_eq!(sol.trajectory().knots(), &knots_before[..]);
        assert!(sol.extended_to(f64::NAN, &options).is_err());
    }

    #[test]
    fn settle_detection_finds_the_regime_entry() {
        // SIS converges exponentially at rate ~1, so by t = 60 the drift is
        // far below the detection threshold — but at t = 5 it is not.
        let model = sis(2.0, 1.0);
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let short = solve(&model, &m0, 5.0, &OdeOptions::default()).unwrap();
        assert_eq!(short.settled_from(STEADY_DETECT_EPS), None);
        let long = solve(&model, &m0, 60.0, &OdeOptions::default()).unwrap();
        let t_star = long
            .settled_from(STEADY_DETECT_EPS)
            .expect("trajectory settles well before t = 60");
        assert!(t_star > 5.0 && t_star < 60.0, "t_star = {t_star}");
        // The settled stretch sits on the endemic point (0.5, 0.5).
        let near = long
            .settled_near(&[0.5, 0.5], 1e-9)
            .expect("settles onto the endemic point");
        assert!(near <= 60.0);
        // Dimension mismatch and an unreached target report None.
        assert_eq!(long.settled_near(&[0.5], 1e-9), None);
        assert_eq!(long.settled_near(&[0.9, 0.1], 1e-9), None);
        // The settle time flows into the CSL model.
        assert_eq!(long.local_tv_model().unwrap().steady_from(), Some(t_star));
        assert_eq!(short.local_tv_model().unwrap().steady_from(), None);
    }

    #[test]
    fn validates_arguments() {
        let model = sis(2.0, 1.0);
        let wrong = Occupancy::new(vec![1.0]).unwrap();
        assert!(solve(&model, &wrong, 1.0, &OdeOptions::default()).is_err());
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        assert!(solve(&model, &m0, -1.0, &OdeOptions::default()).is_err());
        assert!(solve(&model, &m0, f64::NAN, &OdeOptions::default()).is_err());
    }

    #[test]
    fn zero_horizon() {
        let model = sis(2.0, 1.0);
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let sol = solve(&model, &m0, 0.0, &OdeOptions::default()).unwrap();
        assert_eq!(sol.t_end(), 0.0);
        assert!((sol.occupancy_at(0.0)[0] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn batch_per_lane_matches_serial_bitwise() {
        let model = virus([0.9, 0.1, 0.01, 0.3, 0.3]);
        let m0s: Vec<Occupancy> = [[0.85, 0.1, 0.05], [0.2, 0.5, 0.3], [1.0, 0.0, 0.0]]
            .iter()
            .map(|m| Occupancy::new(m.to_vec()).unwrap())
            .collect();
        let options = OdeOptions::default();
        let sweep = solve_batch(&model, &m0s, 20.0, &options, BatchMode::PerLane).unwrap();
        assert_eq!(sweep.stats.detached, 0);
        for (lane, m0) in sweep.lanes.iter().zip(&m0s) {
            let (batched, recovery) = lane.as_ref().unwrap();
            assert_eq!(*recovery, Recovery::None);
            let serial = solve(&model, m0, 20.0, &options).unwrap();
            assert_eq!(batched.trajectory(), serial.trajectory());
        }
        // The real K×B kernel ran: 12-ish calls per accepted step for the
        // whole sweep, far below three serial solves' worth of evals.
        let serial_evals = solve(&model, &m0s[0], 20.0, &options)
            .unwrap()
            .trajectory()
            .stats()
            .rhs_evals;
        assert!(sweep.stats.batch_rhs_calls < 3 * serial_evals);
    }

    #[test]
    fn batch_shared_stays_close_and_cheap() {
        let model = virus([0.9, 0.1, 0.01, 0.3, 0.3]);
        let m0s: Vec<Occupancy> = [[0.85, 0.1, 0.05], [0.2, 0.5, 0.3], [0.6, 0.3, 0.1]]
            .iter()
            .map(|m| Occupancy::new(m.to_vec()).unwrap())
            .collect();
        let options = OdeOptions::default();
        let sweep = solve_batch(&model, &m0s, 15.0, &options, BatchMode::Shared).unwrap();
        let mut max_single = 0;
        for (lane, m0) in sweep.lanes.iter().zip(&m0s) {
            let (batched, _) = lane.as_ref().unwrap();
            let serial = solve(&model, m0, 15.0, &options).unwrap();
            max_single = max_single.max(serial.trajectory().stats().rhs_evals);
            for k in 0..=30 {
                let t = 15.0 * f64::from(k) / 30.0;
                let a = batched.occupancy_at(t);
                let b = serial.occupancy_at(t);
                for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                    assert!((x - y).abs() < 1e-7, "t = {t}: {x} vs {y}");
                }
            }
        }
        // One shared drive for the whole sweep: the cost target is at most
        // 3× a single solve's evaluations, independent of the lane count
        // (the max-over-lanes error norm makes the controller step like the
        // most cautious lane, not like all of them in sequence).
        assert!(
            sweep.stats.batch_rhs_calls <= 3 * max_single,
            "{} batched calls vs {max_single} for one serial solve",
            sweep.stats.batch_rhs_calls
        );
    }

    #[test]
    fn batch_validates_arguments() {
        let model = sis(2.0, 1.0);
        let good = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let bad = Occupancy::new(vec![1.0]).unwrap();
        let options = OdeOptions::default();
        assert!(solve_batch(
            &model,
            &[good.clone(), bad],
            1.0,
            &options,
            BatchMode::PerLane
        )
        .is_err());
        assert!(solve_batch(
            &model,
            std::slice::from_ref(&good),
            -1.0,
            &options,
            BatchMode::PerLane
        )
        .is_err());
        assert!(
            solve_batch(&model, &[good], f64::NAN, &options, BatchMode::Shared).is_err()
        );
    }
}
