//! Error type for the mean-field / MF-CSL layer.

use std::fmt;

use mfcsl_csl::CslError;
use mfcsl_ctmc::CtmcError;
use mfcsl_math::MathError;
use mfcsl_ode::OdeError;

/// Error returned by the mean-field model and MF-CSL checking routines.
#[derive(Debug)]
pub enum CoreError {
    /// A state name was used that does not exist in the local model.
    UnknownState(String),
    /// The model definition is inconsistent (duplicate names, shape
    /// mismatches, self-loops, …).
    InvalidModel(String),
    /// A rate function returned a negative or non-finite value at a point
    /// where it was validated.
    InvalidRate {
        /// Source state of the transition.
        from: String,
        /// Target state of the transition.
        to: String,
        /// The offending value.
        value: f64,
    },
    /// The MF-CSL formula text could not be parsed.
    Parse {
        /// Byte offset of the error in the input.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// The steady-state (`ES` / `S`) operator was used but no stationary
    /// occupancy could be established for the model.
    NoStationaryPoint(String),
    /// An argument was outside its documented domain.
    InvalidArgument(String),
    /// An underlying CSL checking routine failed.
    Csl(CslError),
    /// An underlying CTMC routine failed.
    Ctmc(CtmcError),
    /// An underlying ODE integration failed.
    Ode(OdeError),
    /// An underlying numerical routine failed.
    Math(MathError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownState(name) => write!(f, "unknown state `{name}`"),
            CoreError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
            CoreError::InvalidRate { from, to, value } => {
                write!(f, "rate for {from} -> {to} evaluated to {value}")
            }
            CoreError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            CoreError::NoStationaryPoint(msg) => {
                write!(f, "no stationary occupancy available: {msg}")
            }
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            CoreError::Csl(e) => write!(f, "csl error: {e}"),
            CoreError::Ctmc(e) => write!(f, "ctmc error: {e}"),
            CoreError::Ode(e) => write!(f, "ode error: {e}"),
            CoreError::Math(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Csl(e) => Some(e),
            CoreError::Ctmc(e) => Some(e),
            CoreError::Ode(e) => Some(e),
            CoreError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CslError> for CoreError {
    fn from(e: CslError) -> Self {
        CoreError::Csl(e)
    }
}

impl From<CtmcError> for CoreError {
    fn from(e: CtmcError) -> Self {
        CoreError::Ctmc(e)
    }
}

impl From<OdeError> for CoreError {
    fn from(e: OdeError) -> Self {
        CoreError::Ode(e)
    }
}

impl From<MathError> for CoreError {
    fn from(e: MathError) -> Self {
        CoreError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(CoreError::UnknownState("x".into())
            .to_string()
            .contains('x'));
        let e: CoreError = CslError::NoStationaryDistribution.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::InvalidRate {
            from: "a".into(),
            to: "b".into(),
            value: f64::NAN,
        };
        assert!(e.to_string().contains("a -> b"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
