//! The local model `𝓜ˡ` (Def. 1 of the paper).
//!
//! A [`LocalModel`] describes one object of the population: a finite set of
//! named, labeled states and transition *rate functions*
//! `S^l × S^l × S^o → ℝ` — each transition's rate may depend on the current
//! occupancy vector of the whole system.

use std::sync::Arc;

use mfcsl_ctmc::{Ctmc, Labeling};
use mfcsl_math::Matrix;

use crate::{CoreError, Occupancy};

/// A transition rate as a function of the global occupancy vector.
pub type RateFn = Arc<dyn Fn(&Occupancy) -> f64 + Send + Sync>;

struct Transition {
    from: usize,
    to: usize,
    rate: RateFn,
}

/// The local (individual-object) model of a mean-field system.
///
/// # Example
///
/// ```
/// use mfcsl_core::{LocalModel, Occupancy};
///
/// # fn main() -> Result<(), mfcsl_core::CoreError> {
/// // The paper's virus model (Fig. 2): infection rate depends on the
/// // fraction of active spreaders.
/// let k1 = 0.9;
/// let model = LocalModel::builder()
///     .state("s1", ["not_infected"])
///     .state("s2", ["infected", "inactive"])
///     .state("s3", ["infected", "active"])
///     .transition("s1", "s2", move |m: &Occupancy| {
///         if m[0] > 0.0 { k1 * m[2] / m[0] } else { 0.0 }
///     })?
///     .constant_transition("s2", "s1", 0.1)?
///     .constant_transition("s2", "s3", 0.01)?
///     .constant_transition("s3", "s2", 0.3)?
///     .constant_transition("s3", "s1", 0.3)?
///     .build()?;
/// let m = Occupancy::new(vec![0.8, 0.15, 0.05])?;
/// let q = model.generator_at(&m)?;
/// assert!((q[(0, 1)] - 0.9 * 0.05 / 0.8).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub struct LocalModel {
    names: Vec<String>,
    labeling: Labeling,
    transitions: Vec<Transition>,
    /// The off-diagonal sparsity pattern of `Q(m̄)`: unique `(from, to)`
    /// pairs in first-appearance order, precomputed at build time so the
    /// sparse checking lane can query the topology without evaluating any
    /// rate function.
    pattern_from: Vec<usize>,
    pattern_to: Vec<usize>,
    /// Per transition, the index of its `(from, to)` pair in the pattern
    /// (duplicate pairs accumulate into one slot).
    pattern_slot: Vec<usize>,
}

impl LocalModel {
    /// Starts an empty builder.
    #[must_use]
    pub fn builder() -> LocalModelBuilder {
        LocalModelBuilder::default()
    }

    /// Number of local states `K`.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.names.len()
    }

    /// State names.
    #[must_use]
    pub fn state_names(&self) -> &[String] {
        &self.names
    }

    /// The labeling function `L : S^l → 2^LAP`.
    #[must_use]
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Looks up a state index by name.
    #[must_use]
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Evaluates the generator `Q(m̄)` at an occupancy vector.
    ///
    /// Negative rate values are clamped to zero (rate functions like
    /// `k·m₃/m₁` can produce harmless `-0.0`-scale noise near the simplex
    /// boundary); non-finite values are reported as errors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] on a dimension mismatch and
    /// [`CoreError::InvalidRate`] if a rate function returns NaN or ±∞.
    pub fn generator_at(&self, m: &Occupancy) -> Result<Matrix, CoreError> {
        let n = self.n_states();
        if m.len() != n {
            return Err(CoreError::InvalidArgument(format!(
                "occupancy has {} entries, model has {n} states",
                m.len()
            )));
        }
        let mut q = Matrix::zeros(n, n);
        for tr in &self.transitions {
            let rate = (tr.rate)(m);
            if !rate.is_finite() {
                return Err(CoreError::InvalidRate {
                    from: self.names[tr.from].clone(),
                    to: self.names[tr.to].clone(),
                    value: rate,
                });
            }
            q[(tr.from, tr.to)] += rate.max(0.0);
        }
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| q[(i, j)]).sum();
            q[(i, i)] = -row_sum;
        }
        Ok(q)
    }

    /// Writes `Q(m̄)` into a caller-provided matrix without reporting rate
    /// errors (non-finite rates become zero) — the allocation-free inner
    /// loop used by the ODE right-hand sides, where errors surface as
    /// non-finite derivatives instead.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not `K × K` or `m.len() != K`.
    pub fn write_generator_at(&self, m: &Occupancy, q: &mut Matrix) {
        let n = self.n_states();
        assert_eq!(m.len(), n, "occupancy has wrong dimension");
        assert!(q.rows() == n && q.cols() == n, "matrix has wrong shape");
        // Slice-indexed throughout: this is the innermost call of every
        // mean-field RHS evaluation, so per-entry `Index` bounds checks are
        // measurable. The accumulation order matches the checked variant
        // exactly.
        let qs = q.as_mut_slice();
        qs.fill(0.0);
        for tr in &self.transitions {
            let rate = (tr.rate)(m);
            if rate.is_finite() && rate > 0.0 {
                qs[tr.from * n + tr.to] += rate;
            }
        }
        for i in 0..n {
            let row = &qs[i * n..(i + 1) * n];
            let mut row_sum = 0.0;
            for (j, &v) in row.iter().enumerate() {
                if j != i {
                    row_sum += v;
                }
            }
            qs[i * n + i] = -row_sum;
        }
    }

    /// The fixed off-diagonal transition topology of `Q(m̄)`: parallel
    /// `(from, to)` slices with every pair unique, in first-appearance
    /// order. Every off-diagonal entry outside the pattern is zero at
    /// every occupancy — this is what lets the checking pipeline run
    /// matrix-free at large `K`.
    #[must_use]
    pub fn sparsity(&self) -> (&[usize], &[usize]) {
        (&self.pattern_from, &self.pattern_to)
    }

    /// Writes the off-diagonal rates at occupancy `m̄` into `rates`, in the
    /// order of [`LocalModel::sparsity`]'s pattern, with the same clamping
    /// as [`LocalModel::write_generator_at`] (non-finite and non-positive
    /// evaluations contribute zero; duplicate pairs accumulate).
    ///
    /// # Panics
    ///
    /// Panics if `rates.len()` differs from the pattern length or
    /// `m.len() != K`.
    pub fn write_rates_at(&self, m: &Occupancy, rates: &mut [f64]) {
        assert_eq!(m.len(), self.n_states(), "occupancy has wrong dimension");
        assert_eq!(
            rates.len(),
            self.pattern_from.len(),
            "rate buffer has wrong length"
        );
        rates.fill(0.0);
        for (tr, &slot) in self.transitions.iter().zip(&self.pattern_slot) {
            let rate = (tr.rate)(m);
            if rate.is_finite() && rate > 0.0 {
                rates[slot] += rate;
            }
        }
    }

    /// The forward-reachable closure of `support` under the transition
    /// topology (regardless of rate values — a superset of the states any
    /// trajectory starting in `support` can occupy), sorted ascending.
    /// On-the-fly satisfaction sets are evaluated over this closure only.
    ///
    /// Out-of-range seed states are ignored.
    #[must_use]
    pub fn reachable_closure(&self, support: &[usize]) -> Vec<usize> {
        let n = self.n_states();
        let mut seen = vec![false; n];
        let mut queue: Vec<usize> = Vec::new();
        for &s in support {
            if s < n && !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        // Adjacency from the unique pattern, bucketed by source state.
        let mut heads = vec![Vec::new(); n];
        for (&f, &t) in self.pattern_from.iter().zip(&self.pattern_to) {
            heads[f].push(t);
        }
        let mut cursor = 0;
        while cursor < queue.len() {
            let s = queue[cursor];
            cursor += 1;
            for &t in &heads[s] {
                if !seen[t] {
                    seen[t] = true;
                    queue.push(t);
                }
            }
        }
        queue.sort_unstable();
        queue
    }

    /// The time-homogeneous chain frozen at occupancy `m̄` — the object the
    /// classic CSL algorithms run on.
    ///
    /// # Errors
    ///
    /// See [`LocalModel::generator_at`].
    pub fn frozen_at(&self, m: &Occupancy) -> Result<Ctmc, CoreError> {
        let q = self.generator_at(m)?;
        Ok(Ctmc::from_parts(
            self.names.clone(),
            q,
            self.labeling.clone(),
        )?)
    }

    /// The mean-field drift `f(m̄) = m̄·Q(m̄)` (the right-hand side of
    /// Eq. 1).
    ///
    /// # Errors
    ///
    /// See [`LocalModel::generator_at`].
    pub fn drift(&self, m: &Occupancy) -> Result<Vec<f64>, CoreError> {
        let q = self.generator_at(m)?;
        q.vec_mul(m.as_slice())
            .map_err(|e| CoreError::InvalidArgument(e.to_string()))
    }

    /// The drift evaluated as the *smooth extension* of the rate formulas:
    /// no clamping of negative rate values and no simplex validation of
    /// `m`. Used for finite-difference Jacobians at boundary fixed points,
    /// where probes step slightly outside the simplex and clamping would
    /// produce spurious zero derivatives.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] on a dimension mismatch and
    /// [`CoreError::InvalidRate`] for non-finite rate values.
    #[doc(hidden)]
    pub fn drift_unclamped(&self, m: &Occupancy) -> Result<Vec<f64>, CoreError> {
        let n = self.n_states();
        if m.len() != n {
            return Err(CoreError::InvalidArgument(format!(
                "occupancy has {} entries, model has {n} states",
                m.len()
            )));
        }
        let mut q = Matrix::zeros(n, n);
        for tr in &self.transitions {
            let rate = (tr.rate)(m);
            if !rate.is_finite() {
                return Err(CoreError::InvalidRate {
                    from: self.names[tr.from].clone(),
                    to: self.names[tr.to].clone(),
                    value: rate,
                });
            }
            q[(tr.from, tr.to)] += rate;
        }
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| q[(i, j)]).sum();
            q[(i, i)] = -row_sum;
        }
        q.vec_mul(m.as_slice())
            .map_err(|e| CoreError::InvalidArgument(e.to_string()))
    }
}

impl std::fmt::Debug for LocalModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalModel")
            .field("names", &self.names)
            .field("n_transitions", &self.transitions.len())
            .finish()
    }
}

/// Incremental builder for [`LocalModel`].
#[derive(Default)]
pub struct LocalModelBuilder {
    names: Vec<String>,
    labels: Vec<Vec<String>>,
    transitions: Vec<(String, String, RateFn)>,
}

impl LocalModelBuilder {
    /// Adds a state with atomic-proposition labels.
    #[must_use]
    pub fn state<I, L>(mut self, name: impl Into<String>, labels: I) -> Self
    where
        I: IntoIterator<Item = L>,
        L: Into<String>,
    {
        self.names.push(name.into());
        self.labels
            .push(labels.into_iter().map(Into::into).collect());
        self
    }

    /// Adds a transition whose rate depends on the occupancy vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for a self-loop. Unknown state
    /// names are reported by [`LocalModelBuilder::build`].
    pub fn transition<F>(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        rate: F,
    ) -> Result<Self, CoreError>
    where
        F: Fn(&Occupancy) -> f64 + Send + Sync + 'static,
    {
        let from = from.into();
        let to = to.into();
        if from == to {
            return Err(CoreError::InvalidModel(format!(
                "self-loop on `{from}` is not allowed (Def. 1 eliminates self-loops)"
            )));
        }
        self.transitions.push((from, to, Arc::new(rate)));
        Ok(self)
    }

    /// Adds a transition with a constant rate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for a self-loop or a negative /
    /// non-finite rate.
    pub fn constant_transition(
        self,
        from: impl Into<String>,
        to: impl Into<String>,
        rate: f64,
    ) -> Result<Self, CoreError> {
        if !rate.is_finite() || rate < 0.0 {
            return Err(CoreError::InvalidModel(format!(
                "constant rate must be finite and non-negative, got {rate}"
            )));
        }
        self.transition(from, to, move |_| rate)
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModel`] for an empty model or duplicate
    /// state names, and [`CoreError::UnknownState`] for transitions naming
    /// undeclared states.
    pub fn build(self) -> Result<LocalModel, CoreError> {
        if self.names.is_empty() {
            return Err(CoreError::InvalidModel(
                "model must have at least one state".into(),
            ));
        }
        for (i, name) in self.names.iter().enumerate() {
            if self.names[i + 1..].contains(name) {
                return Err(CoreError::InvalidModel(format!(
                    "duplicate state name `{name}`"
                )));
            }
        }
        let index = |name: &str| -> Result<usize, CoreError> {
            self.names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| CoreError::UnknownState(name.to_string()))
        };
        let mut transitions = Vec::with_capacity(self.transitions.len());
        for (from, to, rate) in self.transitions {
            transitions.push(Transition {
                from: index(&from)?,
                to: index(&to)?,
                rate,
            });
        }
        let mut labeling = Labeling::new(self.names.len());
        for (s, labels) in self.labels.iter().enumerate() {
            for l in labels {
                labeling.add(s, l.clone());
            }
        }
        // Precompute the off-diagonal sparsity pattern. K and the
        // transition count are both small enough here that a linear scan
        // per transition is fine (build runs once).
        let mut pattern_from = Vec::new();
        let mut pattern_to = Vec::new();
        let mut pattern_slot = Vec::with_capacity(transitions.len());
        for tr in &transitions {
            let slot = pattern_from
                .iter()
                .zip(&pattern_to)
                .position(|(&f, &t)| f == tr.from && t == tr.to)
                .unwrap_or_else(|| {
                    pattern_from.push(tr.from);
                    pattern_to.push(tr.to);
                    pattern_from.len() - 1
                });
            pattern_slot.push(slot);
        }
        Ok(LocalModel {
            names: self.names,
            labeling,
            transitions,
            pattern_from,
            pattern_to,
            pattern_slot,
        })
    }
}

impl std::fmt::Debug for LocalModelBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalModelBuilder")
            .field("names", &self.names)
            .field("n_transitions", &self.transitions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sis() -> LocalModel {
        LocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", |m: &Occupancy| 2.0 * m[1])
            .unwrap()
            .constant_transition("i", "s", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn generator_depends_on_occupancy() {
        let model = sis();
        let m = Occupancy::new(vec![0.7, 0.3]).unwrap();
        let q = model.generator_at(&m).unwrap();
        assert!((q[(0, 1)] - 0.6).abs() < 1e-15);
        assert!((q[(0, 0)] + 0.6).abs() < 1e-15);
        assert_eq!(q[(1, 0)], 1.0);
        let m2 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let q2 = model.generator_at(&m2).unwrap();
        assert!((q2[(0, 1)] - 0.2).abs() < 1e-15);
    }

    #[test]
    fn drift_matches_hand_computation() {
        // dm/dt = m Q(m): for SIS, dm_i/dt = 2 m_s m_i - m_i.
        let model = sis();
        let m = Occupancy::new(vec![0.7, 0.3]).unwrap();
        let d = model.drift(&m).unwrap();
        let expected_i = 2.0 * 0.7 * 0.3 - 0.3;
        assert!((d[1] - expected_i).abs() < 1e-14);
        assert!((d[0] + expected_i).abs() < 1e-14);
    }

    #[test]
    fn frozen_chain_is_valid() {
        let model = sis();
        let m = Occupancy::new(vec![0.5, 0.5]).unwrap();
        let ctmc = model.frozen_at(&m).unwrap();
        assert_eq!(ctmc.n_states(), 2);
        assert!(ctmc.labeling().has(1, "infected"));
        assert_eq!(ctmc.exit_rate(1), 1.0);
    }

    #[test]
    fn negative_rates_clamped_nonfinite_reported() {
        let model = LocalModel::builder()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", |m: &Occupancy| m[0] - 2.0)
            .unwrap()
            .build()
            .unwrap();
        let m = Occupancy::new(vec![1.0, 0.0]).unwrap();
        let q = model.generator_at(&m).unwrap();
        assert_eq!(q[(0, 1)], 0.0);
        let bad = LocalModel::builder()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", |m: &Occupancy| 1.0 / (m[0] - m[0]))
            .unwrap()
            .build()
            .unwrap();
        assert!(matches!(
            bad.generator_at(&m),
            Err(CoreError::InvalidRate { .. })
        ));
    }

    #[test]
    fn builder_validation() {
        assert!(LocalModel::builder().build().is_err());
        assert!(LocalModel::builder()
            .state("a", ["x"])
            .state("a", ["y"])
            .build()
            .is_err());
        assert!(LocalModel::builder()
            .state("a", ["x"])
            .transition("a", "a", |_| 1.0)
            .is_err());
        assert!(LocalModel::builder()
            .state("a", ["x"])
            .constant_transition("a", "b", -1.0)
            .is_err());
        let err = LocalModel::builder()
            .state("a", ["x"])
            .constant_transition("a", "ghost", 1.0)
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownState(_)));
    }

    #[test]
    fn dimension_checks() {
        let model = sis();
        let wrong = Occupancy::new(vec![1.0]).unwrap();
        assert!(model.generator_at(&wrong).is_err());
    }

    #[test]
    fn write_generator_matches_generator_at() {
        let model = sis();
        let m = Occupancy::new(vec![0.6, 0.4]).unwrap();
        let q1 = model.generator_at(&m).unwrap();
        let mut q2 = Matrix::zeros(2, 2);
        model.write_generator_at(&m, &mut q2);
        assert_eq!(q1, q2);
    }
}
