//! The memoizing analysis engine: [`CheckSession`].
//!
//! A session owns every expensive intermediate artifact produced while
//! checking MF-CSL formulas against one [`LocalModel`], and shares them
//! across formulas:
//!
//! * **Mean-field trajectories** — solved once per initial occupancy (the
//!   cache key is the bit pattern of `m̄(0)`; tolerances are fixed per
//!   session) and *extended in place* when a later formula needs a longer
//!   horizon, restarting the integrator from the final knot instead of
//!   re-solving from `t = 0`. Extension keeps the already-solved prefix
//!   bitwise identical, which is what keeps the CSL-layer memo entries
//!   below valid after the horizon grows.
//! * **CSL satisfaction sets and probability curves** — one
//!   [`SatCache`] per trajectory entry hash-conses
//!   every CSL subformula and memoizes the per-subformula
//!   [`PiecewiseStateSet`](mfcsl_csl::nested::PiecewiseStateSet)s and
//!   [`ProbCurve`]s, so operators shared between formulas (or repeated
//!   within one) are developed once.
//! * **Stationary regimes** — the fixed point reached from each initial
//!   occupancy and the chain frozen at it, computed once per `m̄(0)` for
//!   all `ES` operators.
//!
//! Cached checks run the *same code* as the uncached [`Checker`] — the
//! cache is threaded as an `Option` through one shared implementation —
//! so a session's verdicts, interval sets, and curves are bitwise
//! identical to an uncached checker handed the same trajectory, and
//! repeated queries are bitwise identical to the first.
//!
//! # Parallelism
//!
//! The session is `Send + Sync`: entries live in sharded reader–writer
//! maps handing out `Arc`s, each trajectory sits behind its own `RwLock`
//! (readers share; extension takes the write side), and the counters are
//! atomics. Attach a [`ThreadPool`] with [`CheckSession::with_pool`] and
//! the independent work units fan out as pool tasks: the formulas of a
//! [`CheckSession::check_all`] batch and the initial occupancies of a
//! [`CheckSession::csat_sweep`]. Results are collected in input order and
//! every task runs the same serial checking code against the shared
//! caches, so verdicts, interval sets, and curves are bitwise identical
//! to the serial path at any thread count.
//!
//! [`EngineStats`] exposes hit/miss counters, ODE work, and per-solve
//! wall times; the CLI surfaces them behind `--stats`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use mfcsl_csl::checker::{InhomogeneousChecker, ProbCurve};
use mfcsl_csl::model::StationaryRegime;
use mfcsl_csl::{CacheStats, PathFormula, SatCache, SatCacheExport, Tolerances};
use mfcsl_math::{alloc_counter, IntervalSet};
use mfcsl_ode::{BatchMode, Trajectory};
use mfcsl_pool::shard::ShardedMap;
use mfcsl_pool::ThreadPool;

use crate::meanfield::{self, OccupancyTrajectory};
use crate::mfcsl::check::{Checker, Refinement, Verdict};
use crate::mfcsl::syntax::MfFormula;
use crate::{CoreError, LocalModel, Occupancy};

/// Maximum tightening rounds spent refining one marginal verdict.
const MAX_REFINE_ROUNDS: u32 = 3;

/// How a recorded mean-field ODE integration came about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveKind {
    /// A full solve from `t = 0` for a new initial occupancy.
    Fresh,
    /// An extension of an existing trajectory to a longer horizon.
    Extension,
    /// A tightened-tolerance solve made while refining a marginal verdict.
    Refinement,
}

/// One mean-field ODE integration performed by a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveRecord {
    /// Fresh solve, extension, or marginal-verdict refinement.
    pub kind: SolveKind,
    /// Integration start time (`0` for fresh solves, the previous horizon
    /// for extensions).
    pub t_from: f64,
    /// Integration end time (the new trajectory horizon).
    pub t_to: f64,
    /// Accepted integrator steps in this integration.
    pub ode_steps: usize,
    /// Rejected step attempts in this integration.
    pub rejected_steps: usize,
    /// Right-hand-side evaluations in this integration.
    pub rhs_evals: usize,
    /// Recovery-ladder rescues in this integration (see
    /// [`mfcsl_ode::recover`]); zero for a healthy solve.
    pub recoveries: usize,
    /// Rescues that fell back to the A-stable implicit trapezoid.
    pub stiff_fallbacks: usize,
    /// Wall-clock time of the integration.
    pub wall: Duration,
    /// `Some(lane)` when this solve rode the batched drive
    /// ([`CheckSession::prewarm`]) as the given lane; `None` for scalar
    /// integrations.
    pub batch_lane: Option<usize>,
}

/// Heap footprint of one checking kernel, bracketed with
/// [`mfcsl_math::alloc_counter`]. Only recorded when the running binary
/// installed the counting allocator (the `mfcsl` binary and the benchmark
/// drivers do; library tests do not), so sessions in counter-less
/// processes carry no records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelAllocRecord {
    /// Kernel label, e.g. `csat (0.8, 0.15, 0.05)`.
    pub kernel: String,
    /// Heap allocations made while the kernel ran.
    pub allocations: u64,
    /// Peak bytes the live heap grew above the kernel's entry point — for
    /// checking kernels, dominated by the resident matrices (dense
    /// transients are `O(K²)`, the sparse lane `O(nnz)`). The counter is
    /// process-global: when a pool fans kernels out, concurrent kernels'
    /// allocations land in each other's brackets, so per-kernel peaks are
    /// exact in serial runs and upper bounds in parallel ones.
    pub peak_bytes: u64,
}

/// Snapshot of a session's counters, taken by [`CheckSession::stats`].
///
/// The counters themselves are plain atomics bumped on each event, so
/// keeping statistics costs almost nothing when nobody asks for them;
/// building this snapshot is the only allocating operation.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Full mean-field solves from `t = 0`.
    pub trajectory_solves: u64,
    /// In-place trajectory extensions to a longer horizon.
    pub trajectory_extensions: u64,
    /// Queries served by an already-long-enough trajectory.
    pub trajectory_reuses: u64,
    /// Trajectory entries restored from a persisted snapshot
    /// ([`CheckSession::restore_trajectory`]) instead of being solved.
    pub trajectory_restores: u64,
    /// Stationary regimes computed (one settle + Newton polish each).
    pub regime_solves: u64,
    /// `ES` queries served by a cached stationary regime.
    pub regime_reuses: u64,
    /// Integrations rescued by the recovery ladder (relaxed controller or
    /// stiff fallback) instead of failing.
    pub recoveries: u64,
    /// Rescued integrations that used the A-stable implicit-trapezoid
    /// fallback.
    pub stiff_fallbacks: u64,
    /// Marginal verdicts that entered automatic refinement.
    pub refined_verdicts: u64,
    /// Total tightening rounds run across all refined verdicts.
    pub refine_rounds: u64,
    /// Trajectory cache entries populated by batched sweep prewarms
    /// ([`CheckSession::prewarm`]) instead of per-occupancy scalar solves.
    pub batch_prewarmed: u64,
    /// CSL-layer cache counters, aggregated over all trajectory entries.
    pub cache: CacheStats,
    /// Every ODE integration performed, in order of completion.
    pub solves: Vec<SolveRecord>,
    /// Per-kernel heap brackets ([`KernelAllocRecord`]), in order of
    /// completion; empty when the binary has no counting allocator.
    pub kernel_allocs: Vec<KernelAllocRecord>,
}

impl EngineStats {
    /// Total right-hand-side evaluations across all recorded integrations.
    #[must_use]
    pub fn total_rhs_evals(&self) -> usize {
        self.solves.iter().map(|s| s.rhs_evals).sum()
    }

    /// Folds another snapshot into this one. Used by aggregators (the
    /// serving daemon's `/metrics`) that report one combined view over
    /// many sessions; `solves` records are concatenated in the order the
    /// snapshots are merged.
    pub fn merge(&mut self, other: &EngineStats) {
        self.trajectory_solves += other.trajectory_solves;
        self.trajectory_extensions += other.trajectory_extensions;
        self.trajectory_reuses += other.trajectory_reuses;
        self.trajectory_restores += other.trajectory_restores;
        self.regime_solves += other.regime_solves;
        self.regime_reuses += other.regime_reuses;
        self.recoveries += other.recoveries;
        self.stiff_fallbacks += other.stiff_fallbacks;
        self.refined_verdicts += other.refined_verdicts;
        self.refine_rounds += other.refine_rounds;
        self.batch_prewarmed += other.batch_prewarmed;
        self.cache.set_hits += other.cache.set_hits;
        self.cache.set_misses += other.cache.set_misses;
        self.cache.curve_hits += other.cache.curve_hits;
        self.cache.curve_misses += other.cache.curve_misses;
        self.cache.interned_state_formulas += other.cache.interned_state_formulas;
        self.cache.interned_path_formulas += other.cache.interned_path_formulas;
        self.cache.cached_sets += other.cache.cached_sets;
        self.cache.cached_curves += other.cache.cached_curves;
        self.solves.extend_from_slice(&other.solves);
        self.kernel_allocs.extend_from_slice(&other.kernel_allocs);
    }
}

struct Entry<'a> {
    /// The solved trajectory; readers share, extension takes the write
    /// side. Extension replaces the value with one whose solved prefix is
    /// bitwise identical, so concurrent readers before/after an extension
    /// observe the same prefix values.
    trajectory: RwLock<OccupancyTrajectory<'a>>,
    cache: SatCache,
}

/// One base entry's full exported warm state, as produced by
/// [`CheckSession::export_entries`]: everything a snapshot needs so a
/// restarted session answers its first request without re-solving the
/// trajectory, the stationary fixed point, or any memoized CSL artifact.
#[derive(Debug, Clone)]
pub struct SessionEntryExport {
    /// The entry's initial occupancy.
    pub m0: Occupancy,
    /// The solved mean-field trajectory.
    pub trajectory: Trajectory,
    /// The stationary regime reached from `m0`, when one was computed
    /// (`ES` queries). The frozen chain is not exported — it rebuilds
    /// bitwise from the model at the stationary occupancy.
    pub regime: Option<RegimeExport>,
    /// The entry's sat-cache (interned formulas plus memoized sets and
    /// curves).
    pub cache: SatCacheExport,
}

/// The persistable part of a stationary regime; see
/// [`SessionEntryExport::regime`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeExport {
    /// The stationary occupancy `m̃`.
    pub distribution: Vec<f64>,
    /// Time from which the trajectory has numerically settled onto `m̃`,
    /// when known.
    pub settle_time: Option<f64>,
}

/// A memoizing checking session over one model: the `AnalysisEngine` of
/// the stack.
///
/// All methods take `&self`; the session is `Send + Sync` and may be
/// shared across threads — attach a pool with
/// [`CheckSession::with_pool`] to fan batches out (see the
/// [module docs](self)).
///
/// # Example
///
/// ```
/// use mfcsl_core::mfcsl::{parse_formula, CheckSession};
/// use mfcsl_core::{LocalModel, Occupancy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = LocalModel::builder()
///     .state("s", ["healthy"])
///     .state("i", ["infected"])
///     .transition("s", "i", |m: &Occupancy| 2.0 * m[1])?
///     .constant_transition("i", "s", 1.0)?
///     .build()?;
/// let session = CheckSession::new(&model);
/// let m0 = Occupancy::new(vec![0.9, 0.1])?;
/// // Both formulas share one trajectory solve and the CSL work for
/// // the common `infected` subformula:
/// assert!(session.check(&parse_formula("E{<0.2}[ infected ]")?, &m0)?.holds());
/// assert!(session.check(&parse_formula("EP{>0.1}[ tt U[0,2] infected ]")?, &m0)?.holds());
/// assert_eq!(session.stats().trajectory_solves, 1);
/// # Ok(())
/// # }
/// ```
pub struct CheckSession<'a> {
    checker: Checker<'a>,
    pool: Option<Arc<ThreadPool>>,
    /// Controller mode of the batched sweep prewarm
    /// ([`CheckSession::prewarm`]).
    batch_mode: BatchMode,
    entries: ShardedMap<Vec<u64>, Arc<Entry<'a>>>,
    /// Per-key creation gates: the first thread to need an entry solves
    /// while holding its gate, so concurrent callers with the same `m̄(0)`
    /// solve the mean-field ODE exactly once.
    entry_gates: ShardedMap<Vec<u64>, Arc<Mutex<()>>>,
    regimes: ShardedMap<Vec<u64>, StationaryRegime>,
    /// Serializes stationary-regime computation (rare and expensive), so
    /// racing `ES` queries compute each regime exactly once.
    regime_gate: Mutex<()>,
    trajectory_solves: AtomicU64,
    trajectory_extensions: AtomicU64,
    trajectory_reuses: AtomicU64,
    trajectory_restores: AtomicU64,
    regime_solves: AtomicU64,
    regime_reuses: AtomicU64,
    recoveries: AtomicU64,
    stiff_fallbacks: AtomicU64,
    refined_verdicts: AtomicU64,
    refine_rounds: AtomicU64,
    batch_prewarmed: AtomicU64,
    solves: Mutex<Vec<SolveRecord>>,
    kernel_allocs: Mutex<Vec<KernelAllocRecord>>,
}

impl<'a> CheckSession<'a> {
    /// Creates a session with default tolerances.
    #[must_use]
    pub fn new(model: &'a LocalModel) -> Self {
        CheckSession::from_checker(Checker::new(model))
    }

    /// Creates a session with explicit tolerances.
    #[must_use]
    pub fn with_tolerances(model: &'a LocalModel, tol: Tolerances) -> Self {
        CheckSession::from_checker(Checker::with_tolerances(model, tol))
    }

    /// Wraps an already-configured checker (settle time, tolerances).
    #[must_use]
    pub fn from_checker(checker: Checker<'a>) -> Self {
        CheckSession {
            checker,
            pool: None,
            batch_mode: BatchMode::PerLane,
            entries: ShardedMap::new(),
            entry_gates: ShardedMap::new(),
            regimes: ShardedMap::new(),
            regime_gate: Mutex::new(()),
            trajectory_solves: AtomicU64::new(0),
            trajectory_extensions: AtomicU64::new(0),
            trajectory_reuses: AtomicU64::new(0),
            trajectory_restores: AtomicU64::new(0),
            regime_solves: AtomicU64::new(0),
            regime_reuses: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            stiff_fallbacks: AtomicU64::new(0),
            refined_verdicts: AtomicU64::new(0),
            refine_rounds: AtomicU64::new(0),
            batch_prewarmed: AtomicU64::new(0),
            solves: Mutex::new(Vec::new()),
            kernel_allocs: Mutex::new(Vec::new()),
        }
    }

    /// Attaches a thread pool: batch entry points
    /// ([`CheckSession::check_all`], [`CheckSession::csat_sweep`]) fan
    /// their independent work units out as pool tasks. Verdicts and sets
    /// stay bitwise identical to the pool-less session.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The attached pool, if any.
    #[must_use]
    pub fn pool(&self) -> Option<&ThreadPool> {
        self.pool.as_deref()
    }

    /// Selects the step-size controller of the batched sweep prewarm
    /// ([`CheckSession::prewarm`]).
    ///
    /// The default, [`BatchMode::PerLane`], keeps every cached trajectory
    /// bitwise identical to the scalar per-occupancy solve.
    /// [`BatchMode::Shared`] drives the whole batch on one controller —
    /// fewer total RHS evaluations for clustered initial occupancies, but
    /// trajectories may differ from the scalar path within the solver
    /// tolerances, so verdict-critical sessions should keep the default.
    #[must_use]
    pub fn with_batch_mode(mut self, mode: BatchMode) -> Self {
        self.batch_mode = mode;
        self
    }

    /// The batched-prewarm controller mode.
    #[must_use]
    pub fn batch_mode(&self) -> BatchMode {
        self.batch_mode
    }

    /// The underlying (uncached) checker.
    #[must_use]
    pub fn checker(&self) -> &Checker<'a> {
        &self.checker
    }

    /// The model under analysis.
    #[must_use]
    pub fn model(&self) -> &'a LocalModel {
        self.checker.model()
    }

    /// Checks `m̄ ⊨ Ψ`, reusing every applicable cached artifact.
    ///
    /// A verdict that comes back *marginal* — the compared value within the
    /// numerical margin of its bound — is automatically re-checked at
    /// tightened tolerances (rtol/atol and the margin halve each round, up
    /// to [`MAX_REFINE_ROUNDS`] rounds) until it leaves the margin or the
    /// budget runs out; the final verdict carries the
    /// [`Refinement`](crate::mfcsl::Refinement) record. Non-marginal
    /// verdicts are bitwise identical to a session without refinement.
    ///
    /// # Errors
    ///
    /// See [`Checker::check`].
    pub fn check(&self, psi: &MfFormula, m0: &Occupancy) -> Result<Verdict, CoreError> {
        self.alloc_bracket(
            || format!("check {psi}"),
            || {
                let base = self.check_round(&self.checker, 0, psi, m0)?;
                if !base.is_marginal() {
                    return Ok(base);
                }
                self.refine(psi, m0)
            },
        )
    }

    /// Runs `f` inside an [`alloc_counter`] bracket and appends a
    /// [`KernelAllocRecord`] labeled by `kernel` — a no-op (beyond calling
    /// `f`) when the binary has no counting allocator installed.
    fn alloc_bracket<T>(
        &self,
        kernel: impl FnOnce() -> String,
        f: impl FnOnce() -> Result<T, CoreError>,
    ) -> Result<T, CoreError> {
        if !alloc_counter::installed() {
            return f();
        }
        let base = alloc_counter::begin();
        let result = f();
        let d = alloc_counter::delta(base);
        self.kernel_allocs.lock().unwrap().push(KernelAllocRecord {
            kernel: kernel(),
            allocations: d.allocations,
            peak_bytes: d.peak_bytes,
        });
        result
    }

    /// One round of [`CheckSession::check`]: round 0 is the base check
    /// against the session's own checker and entry; rounds `>= 1` run a
    /// retuned checker against that round's refinement entry. Stationary
    /// regimes are tolerance-independent (fixed-point iteration, not ODE
    /// integration), so every round shares the session's regime cache.
    fn check_round(
        &self,
        checker: &Checker<'a>,
        round: u32,
        psi: &MfFormula,
        m0: &Occupancy,
    ) -> Result<Verdict, CoreError> {
        let entry = self.ensure_trajectory_for(checker, round, m0, psi.time_horizon())?;
        let trajectory = entry.trajectory.read().unwrap();
        let mut tv = trajectory.local_tv_model()?;
        if psi.requires_stationary() {
            tv = tv.with_stationary(self.stationary_regime(m0)?)?;
        }
        let csl = InhomogeneousChecker::with_tolerances(&tv, *checker.tolerances());
        checker.eval(Some(&entry.cache), psi, &csl, m0)
    }

    /// Re-checks a marginal verdict at progressively tightened tolerances.
    /// Each round's trajectory and CSL memo tables are session entries of
    /// their own, so re-refining the same formula (or refining another
    /// marginal formula over the same `m̄(0)`) reuses them.
    fn refine(&self, psi: &MfFormula, m0: &Occupancy) -> Result<Verdict, CoreError> {
        self.refined_verdicts.fetch_add(1, Ordering::Relaxed);
        let base_tol = *self.checker.tolerances();
        let mut last = None;
        let mut final_margin = base_tol.margin;
        let mut rounds = 0;
        for round in 1..=MAX_REFINE_ROUNDS {
            let tol = tightened(&base_tol, round);
            final_margin = tol.margin;
            rounds = round;
            self.refine_rounds.fetch_add(1, Ordering::Relaxed);
            let checker = self.checker.retuned(tol);
            let v = self.check_round(&checker, round, psi, m0)?;
            let done = !v.is_marginal();
            last = Some(v);
            if done {
                break;
            }
        }
        // The loop always runs at least once, so `last` is set.
        let last = last.unwrap_or_else(|| unreachable!("refinement runs at least one round"));
        Ok(last.with_refinement(Refinement {
            rounds,
            final_margin,
            decided: !last.is_marginal(),
        }))
    }

    /// Checks a batch of formulas against one occupancy vector.
    ///
    /// The trajectory horizon is taken as the maximum over the whole batch
    /// *up front*, so the mean-field ODE is solved to its final length
    /// once instead of being grown formula by formula. With a pool
    /// attached, the per-formula checks then run as parallel tasks over
    /// the shared trajectory and caches; verdicts are collected in
    /// formula order.
    ///
    /// # Errors
    ///
    /// Fails on the first (in input order) formula that fails; see
    /// [`Checker::check`].
    pub fn check_all(
        &self,
        psis: &[MfFormula],
        m0: &Occupancy,
    ) -> Result<Vec<Verdict>, CoreError> {
        let horizon = psis.iter().map(MfFormula::time_horizon).fold(0.0, f64::max);
        if !psis.is_empty() {
            self.ensure_trajectory(m0, horizon)?;
        }
        match &self.pool {
            Some(pool) if pool.threads() > 1 && psis.len() > 1 => pool
                .map_indexed(psis.len(), |i| self.check(&psis[i], m0))
                .into_iter()
                .collect(),
            _ => psis.iter().map(|psi| self.check(psi, m0)).collect(),
        }
    }

    /// Computes `cSat(Ψ, m̄, θ)` (see [`Checker::csat`]), reusing cached
    /// artifacts.
    ///
    /// # Errors
    ///
    /// See [`Checker::csat`].
    pub fn csat(
        &self,
        psi: &MfFormula,
        m0: &Occupancy,
        theta: f64,
    ) -> Result<IntervalSet, CoreError> {
        self.alloc_bracket(|| format!("csat {m0}"), || self.csat_inner(psi, m0, theta))
    }

    fn csat_inner(
        &self,
        psi: &MfFormula,
        m0: &Occupancy,
        theta: f64,
    ) -> Result<IntervalSet, CoreError> {
        if !(theta >= 0.0) || !theta.is_finite() {
            return Err(CoreError::InvalidArgument(format!(
                "evaluation horizon must be finite and non-negative, got {theta}"
            )));
        }
        let entry = self.ensure_trajectory(m0, theta + psi.time_horizon())?;
        let trajectory = entry.trajectory.read().unwrap();
        let mut tv = trajectory.local_tv_model()?;
        if psi.requires_stationary() {
            tv = tv.with_stationary(self.stationary_regime(m0)?)?;
        }
        let csl = InhomogeneousChecker::with_tolerances(&tv, *self.checker.tolerances());
        self.checker
            .csat_rec(Some(&entry.cache), psi, &csl, &trajectory, theta)
    }

    /// Computes `cSat(Ψ, m̄, θ)` for a whole sweep of initial occupancies
    /// — the per-initial-state satisfaction analysis behind CSat region
    /// plots. With a pool attached, the occupancies run as parallel tasks
    /// (each with its own trajectory entry, solved once); results are
    /// collected in input order and are bitwise identical to calling
    /// [`CheckSession::csat`] one occupancy at a time.
    ///
    /// # Errors
    ///
    /// Fails on the first (in input order) occupancy that fails; see
    /// [`Checker::csat`].
    pub fn csat_sweep(
        &self,
        psi: &MfFormula,
        m0s: &[Occupancy],
        theta: f64,
    ) -> Result<Vec<IntervalSet>, CoreError> {
        if m0s.len() > 1 {
            // Best-effort: solve all missing trajectories with one batched
            // drive before the per-occupancy pass. Problems (bad occupancy,
            // invalid horizon, a diverging lane) are deliberately not
            // surfaced here — the scalar path below reports them in input
            // order, preserving the error contract.
            let _ = self.prewarm(m0s, theta + psi.time_horizon());
        }
        match &self.pool {
            Some(pool) if pool.threads() > 1 && m0s.len() > 1 => pool
                .map_indexed(m0s.len(), |i| self.csat(psi, &m0s[i], theta))
                .into_iter()
                .collect(),
            _ => m0s.iter().map(|m0| self.csat(psi, m0, theta)).collect(),
        }
    }

    /// Pre-populates the trajectory cache for a sweep: every occupancy in
    /// `m0s` without a cached entry is solved over `[0, horizon]` by **one**
    /// batched Dopri5 drive ([`meanfield::solve_batch`]) instead of one
    /// scalar integration each, sharing the per-step `m̄·Q(m̄)` kernel
    /// dispatch across all lanes. Returns the number of entries created.
    ///
    /// In the default [`BatchMode::PerLane`] mode the cached trajectories
    /// are bitwise identical to what the scalar path would have produced —
    /// including solver statistics — so warmed sweeps return bitwise the
    /// same answers as cold ones. A lane the batch cannot finish (even
    /// through the scalar recovery ladder it detaches to) is simply left
    /// uncached; the per-occupancy pass re-solves it and surfaces the error
    /// in input order.
    ///
    /// The call is a no-op (returns `Ok(0)`) when fewer than two lanes are
    /// missing, when the horizon is invalid (the scalar path owns that
    /// error), or when the checker carries a fault-injection plan — the
    /// fault stream is defined over *scalar* RHS calls, so chaos runs must
    /// keep the scalar path to stay deterministic.
    ///
    /// # Errors
    ///
    /// Propagates allocation-bracket bookkeeping failures only; solver
    /// problems never error here (see above).
    pub fn prewarm(&self, m0s: &[Occupancy], horizon: f64) -> Result<usize, CoreError> {
        if self.checker.fault_plan().is_some() || !(horizon >= 0.0) || !horizon.is_finite() {
            return Ok(0);
        }
        let n = self.model().n_states();
        let mut missing: Vec<Occupancy> = Vec::new();
        let mut keys: Vec<Vec<u64>> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for m0 in m0s {
            if m0.len() != n {
                continue; // the scalar path reports this in input order
            }
            let key = occupancy_key(m0);
            if self.entries.get(&key).is_some() || !seen.insert(key.clone()) {
                continue;
            }
            keys.push(key);
            missing.push(m0.clone());
        }
        if missing.len() < 2 {
            return Ok(0);
        }
        self.alloc_bracket(
            || format!("prewarm x{}", missing.len()),
            || {
                let start = Instant::now();
                let Ok(sweep) = meanfield::solve_batch(
                    self.model(),
                    &missing,
                    horizon,
                    &self.checker.tolerances().ode,
                    self.batch_mode,
                ) else {
                    return Ok(0); // scalar path owns error reporting
                };
                // One drive produced every lane; attribute wall time evenly.
                let per_lane_wall = start.elapsed() / sweep.lanes.len().max(1) as u32;
                let mut warmed = 0;
                for (lane, (key, result)) in keys.into_iter().zip(sweep.lanes).enumerate() {
                    let Ok((trajectory, _recovery)) = result else {
                        continue; // re-solved (and re-failed) in input order
                    };
                    let gate = self
                        .entry_gates
                        .get_or_insert_with(key.clone(), || Arc::new(Mutex::new(())));
                    let _guard = gate.lock().unwrap();
                    if self.entries.get(&key).is_some() {
                        continue; // raced with a scalar solve; keep theirs
                    }
                    let stats = trajectory.trajectory().stats();
                    self.record_solve(SolveRecord {
                        kind: SolveKind::Fresh,
                        t_from: 0.0,
                        t_to: trajectory.t_end(),
                        ode_steps: stats.accepted,
                        rejected_steps: stats.rejected,
                        rhs_evals: stats.rhs_evals,
                        recoveries: stats.recoveries,
                        stiff_fallbacks: stats.stiff_fallbacks,
                        wall: per_lane_wall,
                        batch_lane: Some(lane),
                    });
                    self.trajectory_solves.fetch_add(1, Ordering::Relaxed);
                    self.batch_prewarmed.fetch_add(1, Ordering::Relaxed);
                    let entry = Arc::new(Entry {
                        trajectory: RwLock::new(trajectory),
                        cache: SatCache::new(),
                    });
                    self.entries.insert(key, Arc::clone(&entry));
                    warmed += 1;
                }
                Ok(warmed)
            },
        )
    }

    /// The per-state path-probability curve `t ↦ Prob(s, φ, m̄, t)` over
    /// `[0, θ]`, memoized per subformula (the curve behind `EP⋈p(φ)`;
    /// compare [`Checker::ep_curve`]).
    ///
    /// # Errors
    ///
    /// See [`Checker::check`].
    pub fn path_prob_curve(
        &self,
        path: &PathFormula,
        m0: &Occupancy,
        theta: f64,
    ) -> Result<Arc<ProbCurve>, CoreError> {
        let psi = MfFormula::ExpectPath {
            cmp: mfcsl_csl::Comparison::Gt,
            p: 0.0,
            path: path.clone(),
        };
        let entry = self.ensure_trajectory(m0, theta + psi.time_horizon())?;
        let trajectory = entry.trajectory.read().unwrap();
        let tv = trajectory.local_tv_model()?;
        let csl = InhomogeneousChecker::with_tolerances(&tv, *self.checker.tolerances());
        Ok(csl.path_prob_curve_cached(&entry.cache, path, theta)?)
    }

    /// The stationary regime reached from `m0`, computed once per initial
    /// occupancy.
    ///
    /// # Errors
    ///
    /// See [`Checker::check`].
    pub fn stationary_regime(&self, m0: &Occupancy) -> Result<StationaryRegime, CoreError> {
        let key = occupancy_key(m0);
        if let Some(regime) = self.regimes.get(&key) {
            self.regime_reuses.fetch_add(1, Ordering::Relaxed);
            return Ok(regime);
        }
        let _gate = self.regime_gate.lock().unwrap();
        if let Some(regime) = self.regimes.get(&key) {
            self.regime_reuses.fetch_add(1, Ordering::Relaxed);
            return Ok(regime);
        }
        let mut regime = self.checker.stationary_regime(m0)?;
        // Regime hand-off: when this session already holds the trajectory
        // for `m0`, stamp the regime with the time it reached `m̃`, so the
        // CSL layer can replace post-settle window propagation with one
        // uniformization of the frozen chain.
        if let Some(entry) = self.entries.get(&key) {
            let trajectory = entry.trajectory.read().unwrap();
            regime.settle_time =
                trajectory.settled_near(&regime.distribution, crate::meanfield::STEADY_DETECT_EPS);
        }
        self.regime_solves.fetch_add(1, Ordering::Relaxed);
        self.regimes.insert(key, regime.clone());
        Ok(regime)
    }

    /// A snapshot of the session's statistics.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut cache = CacheStats::default();
        self.entries.for_each(|_, entry| {
            let s = entry.cache.stats();
            cache.set_hits += s.set_hits;
            cache.set_misses += s.set_misses;
            cache.curve_hits += s.curve_hits;
            cache.curve_misses += s.curve_misses;
            cache.interned_state_formulas += s.interned_state_formulas;
            cache.interned_path_formulas += s.interned_path_formulas;
            cache.cached_sets += s.cached_sets;
            cache.cached_curves += s.cached_curves;
        });
        EngineStats {
            trajectory_solves: self.trajectory_solves.load(Ordering::Relaxed),
            trajectory_extensions: self.trajectory_extensions.load(Ordering::Relaxed),
            trajectory_reuses: self.trajectory_reuses.load(Ordering::Relaxed),
            trajectory_restores: self.trajectory_restores.load(Ordering::Relaxed),
            regime_solves: self.regime_solves.load(Ordering::Relaxed),
            regime_reuses: self.regime_reuses.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            stiff_fallbacks: self.stiff_fallbacks.load(Ordering::Relaxed),
            refined_verdicts: self.refined_verdicts.load(Ordering::Relaxed),
            refine_rounds: self.refine_rounds.load(Ordering::Relaxed),
            batch_prewarmed: self.batch_prewarmed.load(Ordering::Relaxed),
            cache,
            solves: self.solves.lock().unwrap().clone(),
            kernel_allocs: self.kernel_allocs.lock().unwrap().clone(),
        }
    }

    /// Drops every cached trajectory, memo table, and stationary regime
    /// (use when the model's interpretation changed out from under the
    /// session). Counters are kept.
    pub fn clear(&self) {
        self.entries.clear();
        self.entry_gates.clear();
        self.regimes.clear();
    }

    /// Owned copies of every *base* trajectory entry (round-0 solves keyed
    /// by the occupancy bit pattern alone), as `(m̄(0), trajectory)` pairs.
    /// This is the session's warm state worth persisting: sat-caches and
    /// stationary regimes recompute deterministically from a bitwise-equal
    /// trajectory, so snapshotting the trajectories alone preserves bitwise
    /// verdicts across a restart. Refinement entries are skipped — they are
    /// cheap derivatives of a marginal query, not warm state.
    #[must_use]
    pub fn export_trajectories(&self) -> Vec<(Occupancy, Trajectory)> {
        let n = self.model().n_states();
        let mut out = Vec::new();
        self.entries.for_each(|key, entry| {
            if key.len() != n {
                return; // refinement entry (round appended to the key)
            }
            let values: Vec<f64> = key.iter().map(|&bits| f64::from_bits(bits)).collect();
            let Ok(m0) = Occupancy::new(values) else {
                return; // cannot happen for keys built from valid occupancies
            };
            let trajectory = match entry.trajectory.read() {
                Ok(t) => t.trajectory().clone(),
                Err(_) => return,
            };
            out.push((m0, trajectory));
        });
        // `for_each` walks shards in map order; sort for a deterministic
        // snapshot layout.
        out.sort_by(|a, b| {
            a.0.as_slice()
                .iter()
                .map(|x| x.to_bits())
                .cmp(b.0.as_slice().iter().map(|x| x.to_bits()))
        });
        out
    }

    /// Owned copies of every base entry's *full* warm state — trajectory,
    /// stationary regime (when computed), and sat-cache — for snapshot
    /// persistence. Extends [`CheckSession::export_trajectories`]: the
    /// trajectory alone preserves bitwise verdicts, but the regime's
    /// fixed-point solve and the cache's satisfaction sets and probability
    /// curves are the expensive recomputation a restored first request
    /// would otherwise pay. Entries are sorted by occupancy bit pattern
    /// for a deterministic snapshot layout.
    #[must_use]
    pub fn export_entries(&self) -> Vec<SessionEntryExport> {
        let n = self.model().n_states();
        let mut out = Vec::new();
        self.entries.for_each(|key, entry| {
            if key.len() != n {
                return; // refinement entry (round appended to the key)
            }
            let values: Vec<f64> = key.iter().map(|&bits| f64::from_bits(bits)).collect();
            let Ok(m0) = Occupancy::new(values) else {
                return; // cannot happen for keys built from valid occupancies
            };
            let trajectory = match entry.trajectory.read() {
                Ok(t) => t.trajectory().clone(),
                Err(_) => return,
            };
            let regime = self.regimes.get(key).map(|r| RegimeExport {
                distribution: r.distribution.clone(),
                settle_time: r.settle_time,
            });
            out.push(SessionEntryExport {
                m0,
                trajectory,
                regime,
                cache: entry.cache.export(),
            });
        });
        out.sort_by(|a, b| {
            a.m0.as_slice()
                .iter()
                .map(|x| x.to_bits())
                .cmp(b.m0.as_slice().iter().map(|x| x.to_bits()))
        });
        out
    }

    /// Installs a previously exported entry — trajectory plus sat-cache —
    /// as the base entry for `m0`. The trajectory passes the same
    /// integrity checks as [`CheckSession::restore_trajectory`]; the cache
    /// is rebuilt through [`SatCache::from_export`], whose interned ids
    /// line up with what re-interning the same formulas produces, so the
    /// first request after a restart hits the memoized sets and curves.
    /// Returns `false` when an entry for `m0` already exists (live wins).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] on trajectory integrity failures or
    /// a structurally incoherent cache export.
    pub fn restore_entry(
        &self,
        m0: &Occupancy,
        trajectory: Trajectory,
        cache: &SatCacheExport,
    ) -> Result<bool, CoreError> {
        let n = self.model().n_states();
        if m0.len() != n {
            return Err(CoreError::InvalidArgument(format!(
                "restored occupancy has {} states, model has {n}",
                m0.len()
            )));
        }
        let cache = SatCache::from_export(cache)
            .map_err(|e| CoreError::InvalidArgument(format!("restored cache rejected: {e}")))?;
        let restored = OccupancyTrajectory::from_parts(self.model(), trajectory)?;
        let first = restored.trajectory().curve().value_at(0);
        let matches = first.len() == n
            && first
                .iter()
                .zip(m0.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !matches {
            return Err(CoreError::InvalidArgument(
                "restored trajectory's first knot does not match its occupancy key".into(),
            ));
        }
        let key = occupancy_key(m0);
        let gate = self
            .entry_gates
            .get_or_insert_with(key.clone(), || Arc::new(Mutex::new(())));
        let _guard = gate.lock().unwrap();
        if self.entries.get(&key).is_some() {
            return Ok(false);
        }
        self.entries.insert(
            key,
            Arc::new(Entry {
                trajectory: RwLock::new(restored),
                cache,
            }),
        );
        self.trajectory_restores.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Installs a previously exported stationary regime for `m0`. The
    /// frozen chain is rebuilt from the model at the persisted stationary
    /// occupancy — [`LocalModel::frozen_at`] is a pure evaluation, so the
    /// rebuilt chain is bitwise identical to the one computed live and
    /// every later `ES` verdict matches. Returns `false` when a regime for
    /// `m0` is already cached (live wins).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] when the distribution is not a valid
    /// occupancy for this model or the settle time is not finite.
    pub fn restore_regime(
        &self,
        m0: &Occupancy,
        distribution: &[f64],
        settle_time: Option<f64>,
    ) -> Result<bool, CoreError> {
        let stationary = Occupancy::new(distribution.to_vec())?;
        if stationary.len() != self.model().n_states() {
            return Err(CoreError::InvalidArgument(format!(
                "restored regime has {} states, model has {}",
                stationary.len(),
                self.model().n_states()
            )));
        }
        if settle_time.is_some_and(|t| !t.is_finite() || t < 0.0) {
            return Err(CoreError::InvalidArgument(format!(
                "restored regime settle time must be finite and non-negative, got {settle_time:?}"
            )));
        }
        let frozen = self.model().frozen_at(&stationary)?;
        let key = occupancy_key(m0);
        let _gate = self.regime_gate.lock().unwrap();
        if self.regimes.get(&key).is_some() {
            return Ok(false);
        }
        self.regimes.insert(
            key,
            StationaryRegime {
                distribution: stationary.into_vec(),
                frozen,
                settle_time,
            },
        );
        Ok(true)
    }

    /// Installs a previously exported trajectory as the base entry for
    /// `m0`, with a fresh sat-cache (the CSL layer repopulates it
    /// deterministically). Returns `false` when an entry for `m0` already
    /// exists — the live entry wins, a restore never clobbers solved state.
    ///
    /// The trajectory must belong to this session's model (dimension
    /// check), start at `t = 0`, and its first knot must reproduce `m0`'s
    /// exact bit pattern; anything else is rejected, which is what makes a
    /// snapshot restore safe to trust with the bitwise-verdict guarantee.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] on dimension, origin, or first-knot
    /// mismatches.
    pub fn restore_trajectory(
        &self,
        m0: &Occupancy,
        trajectory: Trajectory,
    ) -> Result<bool, CoreError> {
        let n = self.model().n_states();
        if m0.len() != n {
            return Err(CoreError::InvalidArgument(format!(
                "restored occupancy has {} states, model has {n}",
                m0.len()
            )));
        }
        let restored = OccupancyTrajectory::from_parts(self.model(), trajectory)?;
        let first = restored.trajectory().curve().value_at(0);
        let matches = first.len() == n
            && first
                .iter()
                .zip(m0.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !matches {
            return Err(CoreError::InvalidArgument(
                "restored trajectory's first knot does not match its occupancy key".into(),
            ));
        }
        let key = occupancy_key(m0);
        let gate = self
            .entry_gates
            .get_or_insert_with(key.clone(), || Arc::new(Mutex::new(())));
        let _guard = gate.lock().unwrap();
        if self.entries.get(&key).is_some() {
            return Ok(false);
        }
        self.entries.insert(
            key,
            Arc::new(Entry {
                trajectory: RwLock::new(restored),
                cache: SatCache::new(),
            }),
        );
        self.trajectory_restores.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Makes sure the trajectory for `m0` covers `[0, horizon]`, solving
    /// or extending as needed, and returns its entry.
    fn ensure_trajectory(
        &self,
        m0: &Occupancy,
        horizon: f64,
    ) -> Result<Arc<Entry<'a>>, CoreError> {
        self.ensure_trajectory_for(&self.checker, 0, m0, horizon)
    }

    /// [`CheckSession::ensure_trajectory`] generalized over the checker and
    /// refinement round. Base entries (round 0) are keyed by the occupancy
    /// bit pattern alone; refinement entries append the round, so all keys
    /// for one model differ in length or value and share the maps safely —
    /// and the base entries stay bitwise pristine no matter how much
    /// refinement happens.
    fn ensure_trajectory_for(
        &self,
        checker: &Checker<'a>,
        round: u32,
        m0: &Occupancy,
        horizon: f64,
    ) -> Result<Arc<Entry<'a>>, CoreError> {
        let mut key = occupancy_key(m0);
        if round > 0 {
            key.push(u64::from(round));
        }
        if let Some(entry) = self.entries.get(&key) {
            self.ensure_horizon(&entry, horizon, checker)?;
            return Ok(entry);
        }
        let gate = self
            .entry_gates
            .get_or_insert_with(key.clone(), || Arc::new(Mutex::new(())));
        let _guard = gate.lock().unwrap();
        if let Some(entry) = self.entries.get(&key) {
            drop(_guard);
            self.ensure_horizon(&entry, horizon, checker)?;
            return Ok(entry);
        }
        let start = Instant::now();
        let trajectory = checker.solve_to(m0, horizon)?;
        let stats = trajectory.trajectory().stats();
        self.record_solve(SolveRecord {
            kind: if round == 0 {
                SolveKind::Fresh
            } else {
                SolveKind::Refinement
            },
            t_from: 0.0,
            t_to: trajectory.t_end(),
            ode_steps: stats.accepted,
            rejected_steps: stats.rejected,
            rhs_evals: stats.rhs_evals,
            recoveries: stats.recoveries,
            stiff_fallbacks: stats.stiff_fallbacks,
            wall: start.elapsed(),
            batch_lane: None,
        });
        if round == 0 {
            self.trajectory_solves.fetch_add(1, Ordering::Relaxed);
        }
        let entry = Arc::new(Entry {
            trajectory: RwLock::new(trajectory),
            cache: SatCache::new(),
        });
        self.entries.insert(key, Arc::clone(&entry));
        Ok(entry)
    }

    /// Extends an existing entry's trajectory when `horizon` outgrows it,
    /// integrating with the given checker's ODE options (the session's own
    /// for base entries, the tightened ones for refinement entries).
    fn ensure_horizon(
        &self,
        entry: &Entry<'a>,
        horizon: f64,
        checker: &Checker<'a>,
    ) -> Result<(), CoreError> {
        {
            let trajectory = entry.trajectory.read().unwrap();
            if trajectory.t_end() >= horizon {
                self.trajectory_reuses.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        let mut trajectory = entry.trajectory.write().unwrap();
        // Another thread may have extended past `horizon` while we waited
        // for the write lock.
        if trajectory.t_end() >= horizon {
            self.trajectory_reuses.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let t_from = trajectory.t_end();
        let before = trajectory.trajectory().stats();
        let start = Instant::now();
        let extended = trajectory
            .clone()
            .extended_to(horizon, &checker.tolerances().ode)?;
        let after = extended.trajectory().stats();
        self.record_solve(SolveRecord {
            kind: SolveKind::Extension,
            t_from,
            t_to: extended.t_end(),
            ode_steps: after.accepted - before.accepted,
            rejected_steps: after.rejected - before.rejected,
            rhs_evals: after.rhs_evals - before.rhs_evals,
            recoveries: after.recoveries - before.recoveries,
            stiff_fallbacks: after.stiff_fallbacks - before.stiff_fallbacks,
            wall: start.elapsed(),
            batch_lane: None,
        });
        self.trajectory_extensions.fetch_add(1, Ordering::Relaxed);
        *trajectory = extended;
        Ok(())
    }

    /// Appends one integration record and folds its recovery counters into
    /// the session totals.
    fn record_solve(&self, record: SolveRecord) {
        if record.recoveries > 0 {
            self.recoveries
                .fetch_add(record.recoveries as u64, Ordering::Relaxed);
        }
        if record.stiff_fallbacks > 0 {
            self.stiff_fallbacks
                .fetch_add(record.stiff_fallbacks as u64, Ordering::Relaxed);
        }
        self.solves.lock().unwrap().push(record);
    }
}

/// The tolerances in force after `round` halvings of rtol/atol and the
/// marginality margin.
fn tightened(tol: &Tolerances, round: u32) -> Tolerances {
    let f = 0.5_f64.powi(i32::try_from(round).unwrap_or(i32::MAX));
    let mut t = *tol;
    t.ode = t.ode.with_tolerances(t.ode.rtol * f, t.ode.atol * f);
    t.margin *= f;
    t
}

/// Cache key of an initial occupancy: its exact bit pattern. Two vectors
/// share a trajectory iff every component is bitwise equal — anything
/// looser would silently mix trajectories of different initial states.
fn occupancy_key(m0: &Occupancy) -> Vec<u64> {
    m0.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfcsl::parse_formula;

    fn sis() -> LocalModel {
        LocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", |m: &Occupancy| 2.0 * m[1])
            .unwrap()
            .constant_transition("i", "s", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn m0() -> Occupancy {
        Occupancy::new(vec![0.9, 0.1]).unwrap()
    }

    #[test]
    fn session_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<CheckSession<'_>>();
    }

    #[test]
    fn session_matches_uncached_checker() {
        let model = sis();
        let session = CheckSession::new(&model);
        let checker = Checker::new(&model);
        let psis = [
            parse_formula("E{>=0.1}[ infected ]").unwrap(),
            parse_formula("EP{>0.5}[ healthy U[0,50] infected ]").unwrap(),
            parse_formula("ES{>0.45}[ infected ]").unwrap(),
        ];
        for psi in &psis {
            // A cold entry solves to the same horizon the uncached checker
            // uses, so the base verdicts are identical (not merely close).
            // The session additionally refines marginal verdicts, which the
            // uncached checker never does; that difference shows up only in
            // the refinement record, never in holds/marginal.
            let fresh = CheckSession::new(&model);
            let plain = checker.check(psi, &m0()).unwrap();
            let cached = fresh.check(psi, &m0()).unwrap();
            assert_eq!(cached.holds(), plain.holds());
            assert_eq!(cached.is_marginal(), plain.is_marginal());
            assert_eq!(plain.refinement(), None);
            assert_eq!(cached.refinement().is_some(), plain.is_marginal());
            // The shared warm session at least agrees on the verdict.
            let v = session.check(psi, &m0()).unwrap();
            assert_eq!(v.holds(), plain.holds());
            // Asking again is served from the caches, identically.
            assert_eq!(session.check(psi, &m0()).unwrap(), v);
        }
    }

    #[test]
    fn marginal_verdict_is_refined_to_budget() {
        let model = sis();
        let session = CheckSession::new(&model);
        // E{>=0.1} at m0 = [0.9, 0.1]: the operator value is exactly the
        // threshold, so no tolerance tightening can ever decide it.
        let psi = parse_formula("E{>=0.1}[ infected ]").unwrap();
        let v = session.check(&psi, &m0()).unwrap();
        assert!(v.holds());
        assert!(v.is_marginal());
        let r = v.refinement().expect("marginal verdicts carry a record");
        assert_eq!(r.rounds, MAX_REFINE_ROUNDS);
        assert!(!r.decided);
        // Three halvings of the default 1e-6 margin.
        assert!((r.final_margin - 1.25e-7).abs() < 1e-20);
        let stats = session.stats();
        assert_eq!(stats.refined_verdicts, 1);
        assert_eq!(stats.refine_rounds, u64::from(MAX_REFINE_ROUNDS));
        // Refinement solves are recorded but don't count as fresh solves.
        assert_eq!(stats.trajectory_solves, 1);
        assert_eq!(
            stats
                .solves
                .iter()
                .filter(|s| s.kind == SolveKind::Refinement)
                .count(),
            MAX_REFINE_ROUNDS as usize
        );
    }

    #[test]
    fn refinement_decides_a_near_threshold_verdict() {
        let model = sis();
        let session = CheckSession::new(&model);
        // Gap to the threshold is 8e-7: inside the default 1e-6 margin
        // (marginal), outside the round-1 margin of 5e-7 (decided).
        let psi = parse_formula("E{>=0.0999992}[ infected ]").unwrap();
        let v = session.check(&psi, &m0()).unwrap();
        assert!(v.holds());
        assert!(!v.is_marginal());
        let r = v.refinement().expect("refined verdicts carry a record");
        assert_eq!(r.rounds, 1);
        assert!(r.decided);
        let stats = session.stats();
        assert_eq!(stats.refined_verdicts, 1);
        assert_eq!(stats.refine_rounds, 1);
    }

    #[test]
    fn non_marginal_verdicts_skip_refinement() {
        let model = sis();
        let session = CheckSession::new(&model);
        let psi = parse_formula("E{<0.5}[ infected ]").unwrap();
        let v = session.check(&psi, &m0()).unwrap();
        assert!(v.holds());
        assert_eq!(v.refinement(), None);
        let stats = session.stats();
        assert_eq!(stats.refined_verdicts, 0);
        assert_eq!(stats.refine_rounds, 0);
    }

    #[test]
    fn one_trajectory_for_a_batch() {
        let model = sis();
        let session = CheckSession::new(&model);
        let psis = vec![
            parse_formula("E{<0.2}[ infected ]").unwrap(),
            parse_formula("EP{>0}[ tt U[0,2] infected ]").unwrap(),
            parse_formula("EP{>0}[ tt U[0,5] infected ]").unwrap(),
        ];
        session.check_all(&psis, &m0()).unwrap();
        let stats = session.stats();
        // The batch horizon (5) is computed up front: one solve, no
        // growth when the individual formulas are then checked.
        assert_eq!(stats.trajectory_solves, 1);
        assert_eq!(stats.trajectory_extensions, 0);
        assert_eq!(stats.solves.len(), 1);
        assert_eq!(stats.solves[0].kind, SolveKind::Fresh);
        assert!(stats.solves[0].t_to >= 5.0);
        assert!(stats.solves[0].ode_steps > 0);
    }

    #[test]
    fn parallel_batch_matches_serial_batch_bitwise() {
        let model = sis();
        let psis = vec![
            parse_formula("E{<0.2}[ infected ]").unwrap(),
            parse_formula("EP{>0}[ tt U[0,2] infected ]").unwrap(),
            parse_formula("EP{>0}[ tt U[0,5] infected ]").unwrap(),
            parse_formula("ES{>0.45}[ infected ]").unwrap(),
            parse_formula("EP{>0.5}[ healthy U[0,5] infected ]").unwrap(),
        ];
        let serial = CheckSession::new(&model);
        let expected = serial.check_all(&psis, &m0()).unwrap();
        for threads in [1, 2, 8] {
            let pool = Arc::new(ThreadPool::new(threads));
            let session = CheckSession::new(&model).with_pool(pool);
            let got = session.check_all(&psis, &m0()).unwrap();
            assert_eq!(got, expected, "threads = {threads}");
            // Same solve discipline as the serial batch.
            let stats = session.stats();
            assert_eq!(stats.trajectory_solves, 1);
            assert_eq!(stats.trajectory_extensions, 0);
        }
    }

    #[test]
    fn parallel_csat_sweep_matches_serial() {
        let model = sis();
        let psi = parse_formula("E{<0.3}[ infected ]").unwrap();
        let m0s: Vec<Occupancy> = (1..8)
            .map(|i| Occupancy::new(vec![1.0 - 0.1 * f64::from(i), 0.1 * f64::from(i)]).unwrap())
            .collect();
        let serial = CheckSession::new(&model);
        let expected = serial.csat_sweep(&psi, &m0s, 10.0).unwrap();
        let pool = Arc::new(ThreadPool::new(8));
        let session = CheckSession::new(&model).with_pool(pool);
        let got = session.csat_sweep(&psi, &m0s, 10.0).unwrap();
        assert_eq!(expected.len(), got.len());
        for (a, b) in expected.iter().zip(&got) {
            assert_eq!(a.intervals().len(), b.intervals().len());
            for (ia, ib) in a.intervals().iter().zip(b.intervals()) {
                assert_eq!(ia.lo().value.to_bits(), ib.lo().value.to_bits());
                assert_eq!(ia.hi().value.to_bits(), ib.hi().value.to_bits());
            }
        }
        // One trajectory per occupancy, regardless of scheduling.
        assert_eq!(session.stats().trajectory_solves, m0s.len() as u64);
    }

    #[test]
    fn growing_horizons_extend_in_place() {
        let model = sis();
        let session = CheckSession::new(&model);
        let short = parse_formula("EP{>0}[ tt U[0,2] infected ]").unwrap();
        let long = parse_formula("EP{>0}[ tt U[0,8] infected ]").unwrap();
        session.check(&short, &m0()).unwrap();
        session.check(&long, &m0()).unwrap();
        session.check(&short, &m0()).unwrap();
        let stats = session.stats();
        assert_eq!(stats.trajectory_solves, 1);
        assert_eq!(stats.trajectory_extensions, 1);
        assert_eq!(stats.trajectory_reuses, 1);
        assert_eq!(stats.solves.len(), 2);
        assert_eq!(stats.solves[1].kind, SolveKind::Extension);
        assert_eq!(stats.solves[1].t_from, 2.0);
        assert_eq!(stats.solves[1].t_to, 8.0);
    }

    #[test]
    fn repeated_subformulas_hit_the_memo_tables() {
        let model = sis();
        let session = CheckSession::new(&model);
        let psi = parse_formula("EP{>0}[ tt U[0,2] infected ]").unwrap();
        session.check(&psi, &m0()).unwrap();
        let cold = session.stats().cache;
        assert_eq!(cold.curve_hits, 0);
        assert!(cold.curve_misses > 0);
        session.check(&psi, &m0()).unwrap();
        let warm = session.stats().cache;
        assert!(warm.curve_hits > 0, "{warm:?}");
        assert_eq!(warm.curve_misses, cold.curve_misses);
    }

    #[test]
    fn stationary_regime_computed_once() {
        let model = sis();
        let session = CheckSession::new(&model);
        let a = parse_formula("ES{>0.45}[ infected ]").unwrap();
        let b = parse_formula("ES{<0.55}[ infected ]").unwrap();
        assert!(session.check(&a, &m0()).unwrap().holds());
        assert!(session.check(&b, &m0()).unwrap().holds());
        let stats = session.stats();
        assert_eq!(stats.regime_solves, 1);
        assert_eq!(stats.regime_reuses, 1);
    }

    #[test]
    fn distinct_occupancies_get_distinct_entries() {
        let model = sis();
        let session = CheckSession::new(&model);
        let psi = parse_formula("E{>=0.1}[ infected ]").unwrap();
        session.check(&psi, &m0()).unwrap();
        session
            .check(&psi, &Occupancy::new(vec![0.5, 0.5]).unwrap())
            .unwrap();
        assert_eq!(session.stats().trajectory_solves, 2);
        session.clear();
        session.check(&psi, &m0()).unwrap();
        assert_eq!(session.stats().trajectory_solves, 3);
    }

    #[test]
    fn prewarmed_sweep_matches_per_occupancy_csat_bitwise() {
        let model = sis();
        let psi = parse_formula("E{<0.3}[ infected ]").unwrap();
        let m0s: Vec<Occupancy> = (1..6)
            .map(|i| Occupancy::new(vec![1.0 - 0.1 * f64::from(i), 0.1 * f64::from(i)]).unwrap())
            .collect();
        // One occupancy at a time, scalar solves only.
        let scalar = CheckSession::new(&model);
        let expected: Vec<_> = m0s
            .iter()
            .map(|m0| scalar.csat(&psi, m0, 10.0).unwrap())
            .collect();
        assert_eq!(scalar.stats().batch_prewarmed, 0);
        // The sweep entry point prewarms all five lanes with one batched
        // drive, then answers from the warmed cache — bitwise identically.
        let swept = CheckSession::new(&model);
        let got = swept.csat_sweep(&psi, &m0s, 10.0).unwrap();
        for (a, b) in expected.iter().zip(&got) {
            assert_eq!(a.intervals().len(), b.intervals().len());
            for (ia, ib) in a.intervals().iter().zip(b.intervals()) {
                assert_eq!(ia.lo().value.to_bits(), ib.lo().value.to_bits());
                assert_eq!(ia.hi().value.to_bits(), ib.hi().value.to_bits());
            }
        }
        let stats = swept.stats();
        assert_eq!(stats.batch_prewarmed, m0s.len() as u64);
        assert_eq!(stats.trajectory_solves, m0s.len() as u64);
        // Every fresh solve rode the batch, with its lane recorded, and
        // per-lane solver statistics mirror the scalar path exactly.
        let batched: Vec<_> = stats
            .solves
            .iter()
            .filter(|s| s.kind == SolveKind::Fresh)
            .collect();
        assert_eq!(batched.len(), m0s.len());
        for (lane, record) in batched.iter().enumerate() {
            assert_eq!(record.batch_lane, Some(lane));
            let scalar_record = &scalar.stats().solves[lane];
            assert_eq!(record.ode_steps, scalar_record.ode_steps);
            assert_eq!(record.rejected_steps, scalar_record.rejected_steps);
            assert_eq!(record.rhs_evals, scalar_record.rhs_evals);
        }
    }

    #[test]
    fn prewarm_skips_cached_duplicate_and_malformed_lanes() {
        let model = sis();
        let session = CheckSession::new(&model);
        let psi = parse_formula("E{<0.3}[ infected ]").unwrap();
        // Seed the cache with one scalar entry.
        session.csat(&psi, &m0(), 10.0).unwrap();
        let other = Occupancy::new(vec![0.5, 0.5]).unwrap();
        let third = Occupancy::new(vec![0.7, 0.3]).unwrap();
        let wrong_len = Occupancy::new(vec![0.2, 0.3, 0.5]).unwrap();
        let lanes = vec![
            m0(),              // cached — skipped
            other.clone(),     // missing
            other,             // duplicate — deduped
            wrong_len,         // wrong dimension — left to the scalar path
            third,             // missing
        ];
        assert_eq!(session.prewarm(&lanes, 10.0).unwrap(), 2);
        assert_eq!(session.stats().batch_prewarmed, 2);
        // Everything present now: nothing left to warm.
        assert_eq!(session.prewarm(&lanes, 10.0).unwrap(), 0);
        // Fewer than two missing lanes: not worth a batched drive.
        let fresh = CheckSession::new(&model);
        assert_eq!(fresh.prewarm(std::slice::from_ref(&m0()), 10.0).unwrap(), 0);
        // Invalid horizons are the scalar path's error to report.
        assert_eq!(fresh.prewarm(&lanes, -1.0).unwrap(), 0);
        assert_eq!(fresh.prewarm(&lanes, f64::NAN).unwrap(), 0);
    }

    #[test]
    fn prewarm_declines_under_fault_injection() {
        use mfcsl_ode::{FaultMode, FaultPlan};
        let model = sis();
        let checker =
            Checker::new(&model).with_fault_plan(FaultPlan::new(FaultMode::Reject, 5000, 42));
        let session = CheckSession::from_checker(checker);
        let m0s = vec![m0(), Occupancy::new(vec![0.5, 0.5]).unwrap()];
        // The fault stream is defined over scalar RHS calls; prewarm
        // refuses so chaos semantics stay exactly as without it.
        assert_eq!(session.prewarm(&m0s, 10.0).unwrap(), 0);
        let psi = parse_formula("E{<0.9}[ infected ]").unwrap();
        session.csat_sweep(&psi, &m0s, 5.0).unwrap();
        let stats = session.stats();
        assert_eq!(stats.batch_prewarmed, 0);
        assert_eq!(stats.trajectory_solves, 2);
        assert!(stats.solves.iter().all(|s| s.batch_lane.is_none()));
    }

    #[test]
    fn shared_mode_prewarm_still_answers_the_sweep() {
        let model = sis();
        let psi = parse_formula("E{<0.3}[ infected ]").unwrap();
        let m0s: Vec<Occupancy> = (1..5)
            .map(|i| Occupancy::new(vec![1.0 - 0.1 * f64::from(i), 0.1 * f64::from(i)]).unwrap())
            .collect();
        let shared = CheckSession::new(&model).with_batch_mode(BatchMode::Shared);
        assert_eq!(shared.batch_mode(), BatchMode::Shared);
        let got = shared.csat_sweep(&psi, &m0s, 10.0).unwrap();
        assert_eq!(got.len(), m0s.len());
        let stats = shared.stats();
        assert_eq!(stats.batch_prewarmed, m0s.len() as u64);
        // The shared controller is within-tolerance, not bitwise: compare
        // interval endpoints against the scalar path loosely.
        let scalar = CheckSession::new(&model);
        for (m0, b) in m0s.iter().zip(&got) {
            let a = scalar.csat(&psi, m0, 10.0).unwrap();
            assert_eq!(a.intervals().len(), b.intervals().len());
            for (ia, ib) in a.intervals().iter().zip(b.intervals()) {
                assert!((ia.lo().value - ib.lo().value).abs() < 1e-5);
                assert!((ia.hi().value - ib.hi().value).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn csat_via_session_matches_uncached() {
        let model = sis();
        let session = CheckSession::new(&model);
        let checker = Checker::new(&model);
        let psi = parse_formula("E{<0.3}[ infected ]").unwrap();
        let cached = session.csat(&psi, &m0(), 20.0).unwrap();
        let plain = checker.csat(&psi, &m0(), 20.0).unwrap();
        assert_eq!(cached.intervals().len(), plain.intervals().len());
        for (a, b) in cached.intervals().iter().zip(plain.intervals()) {
            assert_eq!(a.lo().value.to_bits(), b.lo().value.to_bits());
            assert_eq!(a.hi().value.to_bits(), b.hi().value.to_bits());
        }
        assert!(session.csat(&psi, &m0(), -1.0).is_err());
    }

    #[test]
    fn restored_entries_answer_without_solving_bitwise_identically() {
        let model = sis();
        let warm = CheckSession::new(&model);
        let psis = [
            parse_formula("E{<0.4}[ infected ]").unwrap(),
            parse_formula("EP{<0.5}[ healthy U[0,1] infected ]").unwrap(),
            parse_formula("ES{>0.45}[ infected ]").unwrap(),
        ];
        let expected: Vec<Verdict> = psis
            .iter()
            .map(|psi| warm.check(psi, &m0()).unwrap())
            .collect();
        let exported = warm.export_entries();
        assert_eq!(exported.len(), 1);
        let entry = &exported[0];
        assert!(entry.regime.is_some(), "the ES query computed a regime");
        assert!(!entry.cache.state_keys.is_empty());
        assert!(!entry.cache.sets.is_empty());
        assert!(!entry.cache.curves.is_empty());

        let restored = CheckSession::new(&model);
        assert!(restored
            .restore_entry(&entry.m0, entry.trajectory.clone(), &entry.cache)
            .unwrap());
        let regime = entry.regime.as_ref().unwrap();
        assert!(restored
            .restore_regime(&entry.m0, &regime.distribution, regime.settle_time)
            .unwrap());

        for (psi, want) in psis.iter().zip(&expected) {
            assert_eq!(restored.check(psi, &m0()).unwrap(), *want);
        }
        let stats = restored.stats();
        assert_eq!(stats.trajectory_solves, 0, "trajectory came from the snapshot");
        assert_eq!(stats.regime_solves, 0, "regime came from the snapshot");
        assert_eq!(stats.trajectory_restores, 1);
        assert!(stats.cache.set_hits > 0 || stats.cache.curve_hits > 0);
    }
}
