//! MF-CSL abstract syntax (Def. 5 of the paper).

use std::fmt;

use mfcsl_csl::{Comparison, PathFormula, StateFormula};
use serde::{Deserialize, Serialize};

use crate::CoreError;

/// An MF-CSL formula over the overall mean-field model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MfFormula {
    /// `tt` — true in every occupancy vector.
    True,
    /// Negation.
    Not(Box<MfFormula>),
    /// Conjunction.
    And(Box<MfFormula>, Box<MfFormula>),
    /// Disjunction (sugar, first-class for readability).
    Or(Box<MfFormula>, Box<MfFormula>),
    /// `E⋈p(Φ)` — the fraction of objects satisfying the CSL state formula
    /// `Φ` obeys `⋈ p`.
    Expect {
        /// The comparison `⋈`.
        cmp: Comparison,
        /// The fraction bound `p ∈ [0, 1]`.
        p: f64,
        /// The local CSL state formula.
        inner: StateFormula,
    },
    /// `ES⋈p(Φ)` — the steady-state fraction of objects satisfying `Φ`
    /// obeys `⋈ p`.
    ExpectSteady {
        /// The comparison `⋈`.
        cmp: Comparison,
        /// The fraction bound `p ∈ [0, 1]`.
        p: f64,
        /// The local CSL state formula.
        inner: StateFormula,
    },
    /// `EP⋈p(φ)` — the probability of a random object to take a `φ`-path
    /// obeys `⋈ p`.
    ExpectPath {
        /// The comparison `⋈`.
        cmp: Comparison,
        /// The probability bound `p ∈ [0, 1]`.
        p: f64,
        /// The local CSL path formula.
        path: PathFormula,
    },
}

impl MfFormula {
    /// Negation shorthand. (Named after the logic operator on purpose;
    /// this is a consuming formula constructor, not `std::ops::Not`.)
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Self {
        MfFormula::Not(Box::new(self))
    }

    /// Conjunction shorthand.
    #[must_use]
    pub fn and(self, rhs: MfFormula) -> Self {
        MfFormula::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction shorthand.
    #[must_use]
    pub fn or(self, rhs: MfFormula) -> Self {
        MfFormula::Or(Box::new(self), Box::new(rhs))
    }

    /// `E⋈p(Φ)` shorthand.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for `p ∉ [0, 1]`.
    pub fn expect(cmp: Comparison, p: f64, inner: StateFormula) -> Result<Self, CoreError> {
        check_bound(p)?;
        Ok(MfFormula::Expect { cmp, p, inner })
    }

    /// `ES⋈p(Φ)` shorthand.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for `p ∉ [0, 1]`.
    pub fn expect_steady(cmp: Comparison, p: f64, inner: StateFormula) -> Result<Self, CoreError> {
        check_bound(p)?;
        Ok(MfFormula::ExpectSteady { cmp, p, inner })
    }

    /// `EP⋈p(φ)` shorthand.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for `p ∉ [0, 1]`.
    pub fn expect_path(cmp: Comparison, p: f64, path: PathFormula) -> Result<Self, CoreError> {
        check_bound(p)?;
        Ok(MfFormula::ExpectPath { cmp, p, path })
    }

    /// The furthest time the formula looks into the future from its
    /// evaluation instant — the mean-field trajectory must be solved at
    /// least this far beyond the evaluation window.
    #[must_use]
    pub fn time_horizon(&self) -> f64 {
        match self {
            MfFormula::True => 0.0,
            MfFormula::Not(inner) => inner.time_horizon(),
            MfFormula::And(a, b) | MfFormula::Or(a, b) => a.time_horizon().max(b.time_horizon()),
            MfFormula::Expect { inner, .. } => inner.time_horizon(),
            // ES is resolved at the stationary point; no look-ahead.
            MfFormula::ExpectSteady { .. } => 0.0,
            MfFormula::ExpectPath { path, .. } => path.time_horizon(),
        }
    }

    /// `true` if evaluating the formula requires a stationary occupancy
    /// (it contains `ES`, or a CSL `S` operator inside `E`/`EP`).
    #[must_use]
    pub fn requires_stationary(&self) -> bool {
        match self {
            MfFormula::True => false,
            MfFormula::Not(inner) => inner.requires_stationary(),
            MfFormula::And(a, b) | MfFormula::Or(a, b) => {
                a.requires_stationary() || b.requires_stationary()
            }
            MfFormula::ExpectSteady { .. } => true,
            MfFormula::Expect { inner, .. } => state_uses_steady(inner),
            MfFormula::ExpectPath { path, .. } => match path {
                PathFormula::Next { inner, .. } => state_uses_steady(inner),
                PathFormula::Until { lhs, rhs, .. } => {
                    state_uses_steady(lhs) || state_uses_steady(rhs)
                }
            },
        }
    }
}

fn state_uses_steady(phi: &StateFormula) -> bool {
    match phi {
        StateFormula::True | StateFormula::Ap(_) => false,
        StateFormula::Not(inner) => state_uses_steady(inner),
        StateFormula::And(a, b) | StateFormula::Or(a, b) => {
            state_uses_steady(a) || state_uses_steady(b)
        }
        StateFormula::Steady { .. } => true,
        StateFormula::Prob { path, .. } => match path.as_ref() {
            PathFormula::Next { inner, .. } => state_uses_steady(inner),
            PathFormula::Until { lhs, rhs, .. } => state_uses_steady(lhs) || state_uses_steady(rhs),
        },
    }
}

fn check_bound(p: f64) -> Result<(), CoreError> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(CoreError::InvalidArgument(format!(
            "fraction bound must be in [0, 1], got {p}"
        )))
    }
}

impl fmt::Display for MfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MfFormula::True => write!(f, "tt"),
            MfFormula::Not(inner) => write!(f, "!({inner})"),
            MfFormula::And(a, b) => write!(f, "({a} & {b})"),
            MfFormula::Or(a, b) => write!(f, "({a} | {b})"),
            MfFormula::Expect { cmp, p, inner } => write!(f, "E{{{cmp}{p}}}[ {inner} ]"),
            MfFormula::ExpectSteady { cmp, p, inner } => write!(f, "ES{{{cmp}{p}}}[ {inner} ]"),
            MfFormula::ExpectPath { cmp, p, path } => write!(f, "EP{{{cmp}{p}}}[ {path} ]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_csl::{parse_path_formula, parse_state_formula};

    #[test]
    fn constructors_validate_bounds() {
        let phi = parse_state_formula("infected").unwrap();
        assert!(MfFormula::expect(Comparison::Gt, 0.8, phi.clone()).is_ok());
        assert!(MfFormula::expect(Comparison::Gt, 1.8, phi.clone()).is_err());
        assert!(MfFormula::expect_steady(Comparison::Ge, -0.1, phi).is_err());
        let path = parse_path_formula("tt U[0,1] infected").unwrap();
        assert!(MfFormula::expect_path(Comparison::Lt, 0.4, path).is_ok());
    }

    #[test]
    fn horizons() {
        let path = parse_path_formula("a U[0,5] P{>0.5}[ tt U[0,2] b ]").unwrap();
        let psi = MfFormula::expect_path(Comparison::Lt, 0.5, path).unwrap();
        assert_eq!(psi.time_horizon(), 7.0);
        let es = MfFormula::expect_steady(
            Comparison::Ge,
            0.1,
            parse_state_formula("P{>0.5}[ tt U[0,9] b ]").unwrap(),
        )
        .unwrap();
        assert_eq!(es.time_horizon(), 0.0);
        let combined = psi.clone().and(es);
        assert_eq!(combined.time_horizon(), 7.0);
    }

    #[test]
    fn stationary_requirements() {
        let e = MfFormula::expect(
            Comparison::Gt,
            0.5,
            parse_state_formula("S{>0.5}[ up ]").unwrap(),
        )
        .unwrap();
        assert!(e.requires_stationary());
        let plain = MfFormula::expect(
            Comparison::Gt,
            0.5,
            parse_state_formula("up & !down").unwrap(),
        )
        .unwrap();
        assert!(!plain.requires_stationary());
        let es = MfFormula::expect_steady(Comparison::Gt, 0.5, parse_state_formula("up").unwrap())
            .unwrap();
        assert!(es.requires_stationary());
        assert!(plain.clone().or(es).requires_stationary());
        assert!(!MfFormula::True.requires_stationary());
        let ep_with_s = MfFormula::expect_path(
            Comparison::Gt,
            0.5,
            parse_path_formula("S{>0.1}[ up ] U[0,1] down").unwrap(),
        )
        .unwrap();
        assert!(ep_with_s.requires_stationary());
    }

    #[test]
    fn display_shape() {
        let psi = MfFormula::expect_path(
            Comparison::Lt,
            0.3,
            parse_path_formula("not_infected U[0,1] infected").unwrap(),
        )
        .unwrap();
        let s = psi.to_string();
        assert!(s.starts_with("EP{<0.3}["));
        let both = MfFormula::True.and(psi).not();
        assert!(both.to_string().starts_with("!((tt &"));
    }
}
