//! MF-CSL satisfaction checking for a given occupancy vector (Sec. V-A of
//! the paper) and the expectation curves behind it.

use mfcsl_csl::checker::{InhomogeneousChecker, ProbCurve};
use mfcsl_csl::model::StationaryRegime;
use mfcsl_csl::nested::PiecewiseStateSet;
use mfcsl_csl::{homogeneous, PathFormula, SatCache, StateFormula, Tolerances};
use mfcsl_ode::fault::FaultPlan;

use crate::fixedpoint::{self, FixedPointOptions, Stability};
use crate::meanfield::{self, OccupancyTrajectory, TrajectoryGenerator};
use crate::mfcsl::syntax::MfFormula;
use crate::{CoreError, LocalModel, Occupancy};

/// How a marginal verdict was re-examined at tightened tolerances (the
/// analysis engine's automatic refinement; see
/// [`crate::mfcsl::CheckSession`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Refinement {
    /// Tightening rounds performed (each halves rtol/atol and the margin).
    pub rounds: u32,
    /// The margin in force when refinement stopped.
    pub final_margin: f64,
    /// Whether the re-checked value left the tightened margin — i.e. the
    /// verdict was decided — before the round budget ran out.
    pub decided: bool,
}

/// The outcome of checking an MF-CSL formula.
///
/// A verdict is *marginal* when some expectation landed within the
/// numerical margin of its bound — the boolean answer is then only as
/// trustworthy as the tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    holds: bool,
    marginal: bool,
    refinement: Option<Refinement>,
}

impl Verdict {
    /// Whether the formula holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.holds
    }

    /// Whether some compared value was within the numerical margin of its
    /// bound.
    #[must_use]
    pub fn is_marginal(&self) -> bool {
        self.marginal
    }

    /// The refinement record, when a marginal verdict was automatically
    /// re-checked at tightened tolerances. `None` for verdicts that never
    /// needed (or never went through) refinement.
    #[must_use]
    pub fn refinement(&self) -> Option<Refinement> {
        self.refinement
    }

    /// Attaches a refinement record (the analysis engine's re-check).
    pub(crate) fn with_refinement(mut self, refinement: Refinement) -> Self {
        self.refinement = Some(refinement);
        self
    }

    fn decided(holds: bool) -> Self {
        Verdict {
            holds,
            marginal: false,
            refinement: None,
        }
    }

    fn compare(value: f64, cmp: mfcsl_csl::Comparison, p: f64, margin: f64) -> Self {
        Verdict {
            holds: cmp.holds(value, p),
            marginal: (value - p).abs() <= margin,
            refinement: None,
        }
    }
}

/// MF-CSL checker for a local mean-field model.
///
/// # Example
///
/// ```
/// use mfcsl_core::mfcsl::{parse_formula, Checker};
/// use mfcsl_core::{LocalModel, Occupancy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = LocalModel::builder()
///     .state("s", ["healthy"])
///     .state("i", ["infected"])
///     .transition("s", "i", |m: &Occupancy| 2.0 * m[1])?
///     .constant_transition("i", "s", 1.0)?
///     .build()?;
/// let checker = Checker::new(&model);
/// let m0 = Occupancy::new(vec![0.9, 0.1])?;
/// // 10% of objects are infected right now:
/// assert!(checker.check(&parse_formula("E{<0.2}[ infected ]")?, &m0)?.holds());
/// // ...but the SIS endemic steady state has 50% infected:
/// assert!(checker.check(&parse_formula("ES{>0.4}[ infected ]")?, &m0)?.holds());
/// # Ok(())
/// # }
/// ```
pub struct Checker<'a> {
    model: &'a LocalModel,
    tol: Tolerances,
    settle_time: f64,
    fp_options: FixedPointOptions,
    fault: Option<FaultPlan>,
}

impl<'a> Checker<'a> {
    /// Creates a checker with default tolerances.
    #[must_use]
    pub fn new(model: &'a LocalModel) -> Self {
        Checker {
            model,
            tol: Tolerances::default(),
            settle_time: 200.0,
            fp_options: FixedPointOptions::default(),
            fault: None,
        }
    }

    /// Creates a checker with explicit tolerances.
    #[must_use]
    pub fn with_tolerances(model: &'a LocalModel, tol: Tolerances) -> Self {
        Checker {
            model,
            tol,
            settle_time: 200.0,
            fp_options: FixedPointOptions::default(),
            fault: None,
        }
    }

    /// Sets the integration horizon used to settle onto the stationary
    /// point before Newton polishing (steady-state operators only).
    #[must_use]
    pub fn with_settle_time(mut self, settle_time: f64) -> Self {
        self.settle_time = settle_time;
        self
    }

    /// Installs a deterministic fault-injection plan on the mean-field
    /// trajectory solves — the chaos-testing hook. Injected faults surface
    /// as structured [`CoreError`]s, never panics. Production callers leave
    /// this unset, in which case checking is bitwise identical to a checker
    /// without the hook.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The installed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault
    }

    /// A copy of this checker with different tolerances (the refinement
    /// re-check's checker: same model, settle time and fault hook).
    pub(crate) fn retuned(&self, tol: Tolerances) -> Checker<'a> {
        Checker {
            model: self.model,
            tol,
            settle_time: self.settle_time,
            fp_options: self.fp_options,
            fault: self.fault,
        }
    }

    /// The model under analysis.
    #[must_use]
    pub fn model(&self) -> &'a LocalModel {
        self.model
    }

    /// The tolerances in use.
    #[must_use]
    pub fn tolerances(&self) -> &Tolerances {
        &self.tol
    }

    /// Checks `m̄ ⊨ Ψ` (Def. 6 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoStationaryPoint`] if a steady-state operator
    /// is used but no *stable* stationary occupancy is reachable from `m0`,
    /// and propagates every lower-layer error.
    pub fn check(&self, psi: &MfFormula, m0: &Occupancy) -> Result<Verdict, CoreError> {
        let solution = self.solve(psi, m0, 0.0)?;
        let tv = self.tv_model(&solution, psi, m0)?;
        let csl = InhomogeneousChecker::with_tolerances(&tv, self.tol);
        self.eval(None, psi, &csl, m0)
    }

    /// Evaluates `psi` against an already-built CSL checker, optionally
    /// memoizing CSL-layer results in `cache` (the analysis engine's
    /// entry point; `Checker::check` passes `None`).
    pub(crate) fn eval(
        &self,
        cache: Option<&SatCache>,
        psi: &MfFormula,
        csl: &InhomogeneousChecker<'_, TrajectoryGenerator<'_>>,
        m0: &Occupancy,
    ) -> Result<Verdict, CoreError> {
        match psi {
            MfFormula::True => Ok(Verdict::decided(true)),
            MfFormula::Not(inner) => {
                let v = self.eval(cache, inner, csl, m0)?;
                Ok(Verdict {
                    holds: !v.holds,
                    marginal: v.marginal,
                    refinement: None,
                })
            }
            MfFormula::And(a, b) => {
                let va = self.eval(cache, a, csl, m0)?;
                let vb = self.eval(cache, b, csl, m0)?;
                Ok(Verdict {
                    holds: va.holds && vb.holds,
                    marginal: va.marginal || vb.marginal,
                    refinement: None,
                })
            }
            MfFormula::Or(a, b) => {
                let va = self.eval(cache, a, csl, m0)?;
                let vb = self.eval(cache, b, csl, m0)?;
                Ok(Verdict {
                    holds: va.holds || vb.holds,
                    marginal: va.marginal || vb.marginal,
                    refinement: None,
                })
            }
            MfFormula::Expect { cmp, p, inner } => {
                // Σ_j m_j · Ind(s_j ⊨ Φ) ⋈ p.
                let sat = match cache {
                    Some(c) => csl.sat_cached(c, inner)?,
                    None => csl.sat(inner)?,
                };
                let value = m0.mass_of(&sat);
                Ok(Verdict::compare(value, *cmp, *p, self.tol.margin))
            }
            MfFormula::ExpectPath { cmp, p, path } => {
                // Σ_j m_j · Prob(s_j, φ, m̄) ⋈ p.
                let probs = match cache {
                    Some(c) => csl.path_probabilities_cached(c, path)?,
                    None => csl.path_probabilities(path)?,
                };
                let value: f64 = m0
                    .as_slice()
                    .iter()
                    .zip(&probs)
                    .map(|(&m, &pr)| m * pr)
                    .sum();
                Ok(Verdict::compare(value, *cmp, *p, self.tol.margin))
            }
            MfFormula::ExpectSteady { cmp, p, inner } => {
                // Sec. V-A: the expected steady-state fraction collapses to
                // Σ_{s_j ∈ Sat(Φ, m̃)} m̃_j.
                let regime = csl.model().stationary().ok_or_else(|| {
                    CoreError::NoStationaryPoint(
                        "steady-state operator reached without a regime".into(),
                    )
                })?;
                let sat = homogeneous::sat(&regime.frozen, inner, &self.tol)?;
                let value: f64 = regime
                    .distribution
                    .iter()
                    .zip(&sat)
                    .filter(|(_, &s)| s)
                    .map(|(&m, _)| m)
                    .sum();
                Ok(Verdict::compare(value, *cmp, *p, self.tol.margin))
            }
        }
    }

    /// The time-dependent expected fraction of objects satisfying a CSL
    /// state formula — the value compared by `E⋈p(Φ)`, as a curve over
    /// `[0, θ]` (Table I, first row).
    ///
    /// # Errors
    ///
    /// See [`Checker::check`].
    pub fn e_curve(
        &self,
        inner: &StateFormula,
        m0: &Occupancy,
        theta: f64,
    ) -> Result<ECurve<'a>, CoreError> {
        let psi = MfFormula::Expect {
            cmp: mfcsl_csl::Comparison::Gt,
            p: 0.0,
            inner: inner.clone(),
        };
        let solution = self.solve(&psi, m0, theta)?;
        let sat = {
            let tv = self.tv_model(&solution, &psi, m0)?;
            let csl = InhomogeneousChecker::with_tolerances(&tv, self.tol);
            csl.sat_over_time(inner, theta)?
        };
        Ok(ECurve {
            sat,
            occupancies: solution,
            theta,
        })
    }

    /// The time-dependent expected path probability — the value compared
    /// by `EP⋈p(φ)`, as a curve over `[0, θ]` (Table I, third row). This
    /// is the red curve of the paper's Figure 3.
    ///
    /// # Errors
    ///
    /// See [`Checker::check`].
    pub fn ep_curve(
        &self,
        path: &PathFormula,
        m0: &Occupancy,
        theta: f64,
    ) -> Result<EpCurve<'a>, CoreError> {
        let psi = MfFormula::ExpectPath {
            cmp: mfcsl_csl::Comparison::Gt,
            p: 0.0,
            path: path.clone(),
        };
        let solution = self.solve(&psi, m0, theta)?;
        let prob = {
            let tv = self.tv_model(&solution, &psi, m0)?;
            let csl = InhomogeneousChecker::with_tolerances(&tv, self.tol);
            csl.path_prob_curve(path, theta)?
        };
        Ok(EpCurve {
            prob,
            occupancies: solution,
            theta,
        })
    }

    /// The steady-state expected fraction `Σ_{s_j ∈ Sat(Φ, m̃)} m̃_j`
    /// compared by `ES⋈p(Φ)` (constant in time, Eq. 15).
    ///
    /// # Errors
    ///
    /// See [`Checker::check`].
    pub fn steady_fraction(&self, inner: &StateFormula, m0: &Occupancy) -> Result<f64, CoreError> {
        let regime = self.stationary_regime(m0)?;
        let sat = homogeneous::sat(&regime.frozen, inner, &self.tol)?;
        Ok(regime
            .distribution
            .iter()
            .zip(&sat)
            .filter(|(_, &s)| s)
            .map(|(&m, _)| m)
            .sum())
    }

    /// Solves the mean-field trajectory far enough for `psi` evaluated
    /// anywhere in `[0, theta]`: the horizon is `theta` plus the maximum
    /// over all (nested) until/next windows of `psi`, so one solve covers
    /// every operator of the formula.
    pub(crate) fn solve(
        &self,
        psi: &MfFormula,
        m0: &Occupancy,
        theta: f64,
    ) -> Result<OccupancyTrajectory<'a>, CoreError> {
        self.solve_to(m0, theta + psi.time_horizon())
    }

    /// Solves the mean-field trajectory over `[0, horizon]` (shared by
    /// [`Checker::solve`] and the analysis engine, so both integrate the
    /// exact same system with the same options).
    pub(crate) fn solve_to(
        &self,
        m0: &Occupancy,
        horizon: f64,
    ) -> Result<OccupancyTrajectory<'a>, CoreError> {
        meanfield::solve_faulted(self.model, m0, horizon, &self.tol.ode, self.fault)
    }

    /// Builds the CSL-layer local model, attaching the stationary regime
    /// when the formula needs one.
    pub(crate) fn tv_model<'s>(
        &self,
        solution: &'s OccupancyTrajectory<'a>,
        psi: &MfFormula,
        m0: &Occupancy,
    ) -> Result<mfcsl_csl::LocalTvModel<TrajectoryGenerator<'s>>, CoreError> {
        let mut tv = solution.local_tv_model()?;
        if psi.requires_stationary() {
            tv = tv.with_stationary(self.stationary_regime(m0)?)?;
        }
        Ok(tv)
    }

    /// Locates the stable stationary occupancy reached from `m0` and the
    /// chain frozen at it (Sec. IV-D: steady-state operators are only
    /// meaningful when the fluid limit settles).
    pub(crate) fn stationary_regime(&self, m0: &Occupancy) -> Result<StationaryRegime, CoreError> {
        let fp = fixedpoint::from_initial(self.model, m0, self.settle_time, &self.fp_options)?;
        if fp.stability == Stability::Unstable {
            return Err(CoreError::NoStationaryPoint(format!(
                "the trajectory from {m0} settles near an unstable point {} \
                 (spectral abscissa {:.3e})",
                fp.occupancy, fp.spectral_abscissa
            )));
        }
        let frozen = self.model.frozen_at(&fp.occupancy)?;
        // The settle *time* is a property of a concrete trajectory, not of
        // the fixed point; the analysis engine stamps it when it holds the
        // trajectory for `m0` (see `CheckSession::stationary_regime`).
        Ok(StationaryRegime {
            distribution: fp.occupancy.into_vec(),
            frozen,
            settle_time: None,
        })
    }
}

/// The expected-fraction curve `t ↦ Σ_j m_j(t)·Ind(s_j ⊨ Φ at t)` of the
/// `E` operator.
#[derive(Debug)]
pub struct ECurve<'a> {
    sat: PiecewiseStateSet,
    occupancies: OccupancyTrajectory<'a>,
    theta: f64,
}

impl ECurve<'_> {
    /// The expected fraction at evaluation time `t`.
    #[must_use]
    pub fn expected_at(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, self.theta);
        self.occupancies.occupancy_at(t).mass_of(self.sat.set_at(t))
    }

    /// The satisfaction-set discontinuity points.
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        self.sat.boundaries()
    }

    /// The underlying time-dependent satisfaction set.
    #[must_use]
    pub fn sat_set(&self) -> &PiecewiseStateSet {
        &self.sat
    }

    /// The occupancy vector at time `t`.
    #[must_use]
    pub fn occupancy_at(&self, t: f64) -> Occupancy {
        self.occupancies.occupancy_at(t)
    }

    /// End of the evaluation window.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

/// The expected-probability curve `t ↦ Σ_j m_j(t)·Prob(s_j, φ, m̄, t)` of
/// the `EP` operator.
#[derive(Debug)]
pub struct EpCurve<'a> {
    prob: ProbCurve,
    occupancies: OccupancyTrajectory<'a>,
    theta: f64,
}

impl EpCurve<'_> {
    /// The expected path probability at evaluation time `t`.
    #[must_use]
    pub fn expected_at(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, self.theta);
        let m = self.occupancies.occupancy_at(t);
        let probs = self.prob.probs_at(t);
        m.as_slice()
            .iter()
            .zip(&probs)
            .map(|(&mj, &pj)| mj * pj)
            .sum()
    }

    /// The per-state path probability `Prob(s, φ, m̄, t)` (the green/blue
    /// curves of the paper's Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn state_prob_at(&self, s: usize, t: f64) -> f64 {
        self.prob.prob_state_at(s, t.clamp(0.0, self.theta))
    }

    /// The occupancy vector at time `t`.
    #[must_use]
    pub fn occupancy_at(&self, t: f64) -> Occupancy {
        self.occupancies.occupancy_at(t)
    }

    /// The underlying per-state probability curve.
    #[must_use]
    pub fn prob_curve(&self) -> &ProbCurve {
        &self.prob
    }

    /// End of the evaluation window.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfcsl::parse_formula;
    use mfcsl_csl::parse_path_formula;

    fn sis() -> LocalModel {
        LocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", |m: &Occupancy| 2.0 * m[1])
            .unwrap()
            .constant_transition("i", "s", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn m0() -> Occupancy {
        Occupancy::new(vec![0.9, 0.1]).unwrap()
    }

    #[test]
    fn expect_operator_is_occupancy_mass() {
        let model = sis();
        let checker = Checker::new(&model);
        assert!(checker
            .check(&parse_formula("E{>=0.1}[ infected ]").unwrap(), &m0())
            .unwrap()
            .holds());
        assert!(!checker
            .check(&parse_formula("E{>0.1}[ infected ]").unwrap(), &m0())
            .unwrap()
            .holds());
        // The bound exactly at the mass is flagged marginal.
        let v = checker
            .check(&parse_formula("E{>=0.1}[ infected ]").unwrap(), &m0())
            .unwrap();
        assert!(v.is_marginal());
    }

    #[test]
    fn boolean_connectives() {
        let model = sis();
        let checker = Checker::new(&model);
        let m = m0();
        assert!(checker
            .check(&parse_formula("tt").unwrap(), &m)
            .unwrap()
            .holds());
        assert!(!checker
            .check(&parse_formula("!tt").unwrap(), &m)
            .unwrap()
            .holds());
        assert!(checker
            .check(
                &parse_formula("E{<0.2}[ infected ] & E{>0.8}[ healthy ]").unwrap(),
                &m
            )
            .unwrap()
            .holds());
        assert!(checker
            .check(
                &parse_formula("E{>0.2}[ infected ] | E{>0.8}[ healthy ]").unwrap(),
                &m
            )
            .unwrap()
            .holds());
    }

    #[test]
    fn expect_path_weighted_sum() {
        // EP of `healthy U[0,T] infected`: infected states contribute 1,
        // healthy states their infection probability. Verify monotonicity
        // in T and bounds.
        let model = sis();
        let checker = Checker::new(&model);
        let m = m0();
        let short = parse_formula("EP{>0.5}[ healthy U[0,0.1] infected ]").unwrap();
        assert!(!checker.check(&short, &m).unwrap().holds());
        let long = parse_formula("EP{>0.5}[ healthy U[0,50] infected ]").unwrap();
        assert!(checker.check(&long, &m).unwrap().holds());
    }

    #[test]
    fn expect_steady_uses_fixed_point() {
        let model = sis();
        let checker = Checker::new(&model);
        let m = m0();
        // Endemic point: 50% infected.
        let f = checker
            .steady_fraction(&mfcsl_csl::parse_state_formula("infected").unwrap(), &m)
            .unwrap();
        assert!((f - 0.5).abs() < 1e-6, "steady fraction {f}");
        assert!(checker
            .check(&parse_formula("ES{>0.45}[ infected ]").unwrap(), &m)
            .unwrap()
            .holds());
        assert!(!checker
            .check(&parse_formula("ES{>0.55}[ infected ]").unwrap(), &m)
            .unwrap()
            .holds());
    }

    #[test]
    fn ep_curve_evaluates_over_time() {
        let model = sis();
        let checker = Checker::new(&model);
        let path = parse_path_formula("healthy U[0,1] infected").unwrap();
        let curve = checker.ep_curve(&path, &m0(), 10.0).unwrap();
        // The infected fraction grows along the SIS trajectory, so the
        // expected probability of the until grows too (more weight on
        // already-infected objects and a higher infection rate).
        let early = curve.expected_at(0.0);
        let late = curve.expected_at(10.0);
        assert!(late > early, "early {early}, late {late}");
        assert!((0.0..=1.0).contains(&early));
        assert!((0.0..=1.0).contains(&late));
        assert_eq!(curve.theta(), 10.0);
        // Per-state curve: infected state contributes 1 at all times.
        assert!((curve.state_prob_at(1, 3.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn e_curve_tracks_occupancy() {
        let model = sis();
        let checker = Checker::new(&model);
        let inner = mfcsl_csl::parse_state_formula("infected").unwrap();
        let curve = checker.e_curve(&inner, &m0(), 20.0).unwrap();
        assert!((curve.expected_at(0.0) - 0.1).abs() < 1e-9);
        // Converges to 0.5 (endemic).
        assert!((curve.expected_at(20.0) - 0.5).abs() < 1e-4);
        assert!(curve.boundaries().is_empty());
        assert!((curve.occupancy_at(0.0)[0] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn steady_operator_rejects_unstable_regimes() {
        // A model with an unstable settle point: pure growth toward an
        // absorbing corner is fine (stable), so instead craft a model
        // whose trajectory from m0 sits near the unstable disease-free
        // point: SIS started exactly at i = 0 stays there, but that point
        // is unstable for β > γ.
        let model = sis();
        let checker = Checker::new(&model);
        let at_corner = Occupancy::new(vec![1.0, 0.0]).unwrap();
        let err = checker
            .check(&parse_formula("ES{>0.4}[ infected ]").unwrap(), &at_corner)
            .unwrap_err();
        assert!(matches!(err, CoreError::NoStationaryPoint(_)));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let model = sis();
        let checker = Checker::new(&model);
        let wrong = Occupancy::new(vec![1.0]).unwrap();
        assert!(checker
            .check(&parse_formula("E{>0.5}[ infected ]").unwrap(), &wrong)
            .is_err());
    }
}
