//! Conditional satisfaction sets `cSat(Ψ, m̄, θ)` (Sec. V-B, Eq. 20 and
//! Table I of the paper).
//!
//! Once the initial occupancy is fixed, the set of time instants
//! `t ∈ [0, θ]` at which `m̄(t) ⊨ Ψ` is a finite union of intervals whose
//! endpoints are threshold crossings of expectation curves (or satisfaction
//! -set jump points). Boolean structure maps to exact interval-set algebra:
//! `∧` is intersection, `¬` is complement within `[0, θ]`.

use mfcsl_csl::checker::InhomogeneousChecker;
use mfcsl_csl::{homogeneous, Comparison, SatCache};
use mfcsl_math::roots::brent;
use mfcsl_math::{Interval, IntervalSet};

use crate::meanfield::{OccupancyTrajectory, TrajectoryGenerator};
use crate::mfcsl::check::Checker;
use crate::mfcsl::syntax::MfFormula;
use crate::{CoreError, Occupancy};

impl Checker<'_> {
    /// Computes `cSat(Ψ, m̄, θ) = { t ∈ [0, θ] | m̄(t) ⊨ Ψ }` as an exact
    /// interval set (open/closed endpoints follow the comparison
    /// operators).
    ///
    /// # Errors
    ///
    /// See [`Checker::check`]; additionally returns
    /// [`CoreError::InvalidArgument`] for a negative or non-finite `θ`.
    ///
    /// # Example
    ///
    /// ```
    /// use mfcsl_core::mfcsl::{parse_formula, Checker};
    /// use mfcsl_core::{LocalModel, Occupancy};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let model = LocalModel::builder()
    ///     .state("s", ["healthy"])
    ///     .state("i", ["infected"])
    ///     .transition("s", "i", |m: &Occupancy| 2.0 * m[1])?
    ///     .constant_transition("i", "s", 1.0)?
    ///     .build()?;
    /// let m0 = Occupancy::new(vec![0.9, 0.1])?;
    /// // The infected fraction grows from 0.1 toward 0.5, crossing 0.3
    /// // exactly once: the satisfaction set is a single interval [0, τ).
    /// let psi = parse_formula("E{<0.3}[ infected ]")?;
    /// let csat = Checker::new(&model).csat(&psi, &m0, 20.0)?;
    /// assert_eq!(csat.intervals().len(), 1);
    /// assert!(csat.contains(0.0));
    /// assert!(!csat.contains(20.0));
    /// # Ok(())
    /// # }
    /// ```
    pub fn csat(
        &self,
        psi: &MfFormula,
        m0: &Occupancy,
        theta: f64,
    ) -> Result<IntervalSet, CoreError> {
        if !(theta >= 0.0) || !theta.is_finite() {
            return Err(CoreError::InvalidArgument(format!(
                "evaluation horizon must be finite and non-negative, got {theta}"
            )));
        }
        let solution = self.solve(psi, m0, theta)?;
        let tv = self.tv_model(&solution, psi, m0)?;
        let csl = InhomogeneousChecker::with_tolerances(&tv, *self.tolerances());
        self.csat_rec(None, psi, &csl, &solution, theta)
    }

    /// The recursion behind [`Checker::csat`], with an optional CSL-layer
    /// memo cache (used by the analysis engine; `csat` passes `None`).
    pub(crate) fn csat_rec(
        &self,
        cache: Option<&SatCache>,
        psi: &MfFormula,
        csl: &InhomogeneousChecker<'_, TrajectoryGenerator<'_>>,
        solution: &OccupancyTrajectory<'_>,
        theta: f64,
    ) -> Result<IntervalSet, CoreError> {
        match psi {
            MfFormula::True => Ok(full_window(theta)),
            MfFormula::Not(inner) => Ok(self
                .csat_rec(cache, inner, csl, solution, theta)?
                .complement(0.0, theta)
                .map_err(CoreError::Math)?),
            MfFormula::And(a, b) => {
                let sa = self.csat_rec(cache, a, csl, solution, theta)?;
                let sb = self.csat_rec(cache, b, csl, solution, theta)?;
                Ok(sa.intersect(&sb))
            }
            MfFormula::Or(a, b) => {
                let sa = self.csat_rec(cache, a, csl, solution, theta)?;
                let sb = self.csat_rec(cache, b, csl, solution, theta)?;
                Ok(sa.union(&sb))
            }
            MfFormula::Expect { cmp, p, inner } => {
                // Table I row 1: Σ_j m_j(t) · Ind(s_j ⊨ Φ at t) ⋈ p, with
                // jump points where the satisfaction set changes.
                let sat = match cache {
                    Some(c) => csl.sat_over_time_cached(c, inner, theta)?,
                    None => std::sync::Arc::new(csl.sat_over_time(inner, theta)?),
                };
                let value = |t: f64| solution.occupancy_at(t).mass_of(sat.set_at(t));
                self.threshold_intervals(&value, sat.boundaries(), *cmp, *p, theta)
            }
            MfFormula::ExpectPath { cmp, p, path } => {
                // Table I row 3: Σ_j m_j(t) · Prob(s_j, φ, m̄, t) ⋈ p.
                let curve = match cache {
                    Some(c) => csl.path_prob_curve_cached(c, path, theta)?,
                    None => std::sync::Arc::new(csl.path_prob_curve(path, theta)?),
                };
                let value = move |t: f64| -> f64 {
                    let m = solution.occupancy_at(t);
                    let probs = curve.probs_at(t);
                    m.as_slice()
                        .iter()
                        .zip(&probs)
                        .map(|(&mj, &pj)| mj * pj)
                        .sum()
                };
                self.threshold_intervals(&value, &[], *cmp, *p, theta)
            }
            MfFormula::ExpectSteady { cmp, p, inner } => {
                // Sec. V-A / Eq. 15: the compared value is constant in
                // time, so the set is all-or-nothing.
                let regime = csl.model().stationary().ok_or_else(|| {
                    CoreError::NoStationaryPoint(
                        "steady-state operator reached without a regime".into(),
                    )
                })?;
                let sat = homogeneous::sat(&regime.frozen, inner, self.tolerances())?;
                let value: f64 = regime
                    .distribution
                    .iter()
                    .zip(&sat)
                    .filter(|(_, &s)| s)
                    .map(|(&m, _)| m)
                    .sum();
                if cmp.holds(value, *p) {
                    Ok(full_window(theta))
                } else {
                    Ok(IntervalSet::empty())
                }
            }
        }
    }

    /// Builds `{ t | value(t) ⋈ p }` within `[0, θ]`.
    ///
    /// `jump_points` are times where `value` may jump (satisfaction-set
    /// changes); continuous threshold crossings are located by a grid scan
    /// refined with Brent's method. Elementary open pieces plus the exact
    /// point memberships at all breakpoints are assembled by the
    /// interval-set normalizer, which merges touching pieces.
    fn threshold_intervals(
        &self,
        value: &dyn Fn(f64) -> f64,
        jump_points: &[f64],
        cmp: Comparison,
        p: f64,
        theta: f64,
    ) -> Result<IntervalSet, CoreError> {
        let tol = self.tolerances();
        if theta == 0.0 {
            return Ok(if cmp.holds(value(0.0), p) {
                IntervalSet::from_interval(Interval::point(0.0).map_err(CoreError::Math)?)
            } else {
                IntervalSet::empty()
            });
        }
        // Locate continuous crossings.
        let grid = mfcsl_math::vec_ops::linspace(0.0, theta, tol.scan_points + 1);
        let samples: Vec<f64> = grid.iter().map(|&t| value(t)).collect();
        let mut crossings: Vec<f64> = Vec::new();
        for w in 0..grid.len() - 1 {
            let f0 = samples[w] - p;
            let f1 = samples[w + 1] - p;
            if f0 != 0.0 && f1 != 0.0 && f0.signum() != f1.signum() {
                let root = brent(|t| value(t) - p, grid[w], grid[w + 1], tol.root_tol)
                    .map_err(CoreError::Math)?;
                crossings.push(root);
            } else if f0 == 0.0 {
                crossings.push(grid[w]);
            }
        }
        if (samples[grid.len() - 1] - p) == 0.0 {
            crossings.push(theta);
        }

        // Assemble the breakpoint grid. Non-finite breakpoints mean an
        // upstream curve degenerated (e.g. a NaN sample); surface that as a
        // structured error rather than silently mis-sorting or panicking.
        let mut breaks: Vec<(f64, BreakKind)> =
            vec![(0.0, BreakKind::Edge), (theta, BreakKind::Edge)];
        for &b in jump_points {
            if !b.is_finite() {
                return Err(CoreError::InvalidArgument(format!(
                    "satisfaction-set jump point is not finite: {b}"
                )));
            }
            if b > 0.0 && b < theta {
                breaks.push((b, BreakKind::Jump));
            }
        }
        for &c in &crossings {
            if !c.is_finite() {
                return Err(CoreError::InvalidArgument(format!(
                    "threshold crossing is not finite: {c}"
                )));
            }
            if c >= 0.0 && c <= theta {
                breaks.push((c, BreakKind::Crossing));
            }
        }
        breaks.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Merge near-coincident breakpoints; a Jump wins over a Crossing.
        let mut merged: Vec<(f64, BreakKind)> = Vec::with_capacity(breaks.len());
        for (t, kind) in breaks {
            match merged.last_mut() {
                Some((lt, lk)) if (t - *lt).abs() <= 2.0 * tol.root_tol => {
                    if matches!(kind, BreakKind::Jump) {
                        *lk = BreakKind::Jump;
                    }
                    if matches!(kind, BreakKind::Edge) {
                        *lk = BreakKind::Edge;
                    }
                }
                _ => merged.push((t, kind)),
            }
        }

        let mut pieces: Vec<Interval> = Vec::new();
        // Point memberships at the breakpoints.
        for &(t, kind) in &merged {
            let belongs = match kind {
                // At a located crossing the value equals the bound exactly
                // (up to root tolerance): membership follows the operator.
                BreakKind::Crossing => cmp.includes_bound(),
                // At jumps and window edges, evaluate (right-continuously).
                BreakKind::Jump | BreakKind::Edge => cmp.holds(value(t), p),
            };
            if belongs {
                pieces.push(Interval::point(t).map_err(CoreError::Math)?);
            }
        }
        // Open elementary pieces between breakpoints, decided at midpoints.
        for w in merged.windows(2) {
            let (a, b) = (w[0].0, w[1].0);
            if b - a <= 2.0 * tol.root_tol {
                continue;
            }
            let mid = 0.5 * (a + b);
            if cmp.holds(value(mid), p) {
                pieces.push(Interval::open(a, b).map_err(CoreError::Math)?);
            }
        }
        Ok(IntervalSet::from_intervals(pieces))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakKind {
    Edge,
    Jump,
    Crossing,
}

fn full_window(theta: f64) -> IntervalSet {
    IntervalSet::from_interval(Interval::closed(0.0, theta).expect("validated window"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mfcsl::parse_formula;
    use crate::LocalModel;

    fn sis() -> LocalModel {
        LocalModel::builder()
            .state("s", ["healthy"])
            .state("i", ["infected"])
            .transition("s", "i", |m: &Occupancy| 2.0 * m[1])
            .unwrap()
            .constant_transition("i", "s", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn m0() -> Occupancy {
        Occupancy::new(vec![0.9, 0.1]).unwrap()
    }

    /// Analytic SIS infected fraction from i0 = 0.1 with β = 2, γ = 1.
    fn infected_at(t: f64) -> f64 {
        0.5 / (1.0 + 4.0 * (-t).exp())
    }

    /// Analytic crossing time of the infected fraction through level `p`.
    fn crossing(p: f64) -> f64 {
        -((0.5 / p - 1.0) / 4.0).ln()
    }

    #[test]
    fn expect_crossing_matches_analytic_logistic() {
        let model = sis();
        let checker = Checker::new(&model);
        let psi = parse_formula("E{<0.3}[ infected ]").unwrap();
        let cs = checker.csat(&psi, &m0(), 20.0).unwrap();
        assert_eq!(cs.intervals().len(), 1);
        let iv = cs.intervals()[0];
        assert_eq!(iv.lo().value, 0.0);
        assert!(iv.lo().closed);
        let expected = crossing(0.3);
        assert!(
            (iv.hi().value - expected).abs() < 1e-6,
            "crossing at {} vs analytic {expected}",
            iv.hi().value
        );
        // `<` excludes the crossing instant.
        assert!(!iv.hi().closed);
        // Sanity against the analytic curve.
        assert!(infected_at(expected + 0.01) > 0.3);
    }

    #[test]
    fn closed_operator_includes_the_crossing() {
        let model = sis();
        let checker = Checker::new(&model);
        let psi = parse_formula("E{<=0.3}[ infected ]").unwrap();
        let cs = checker.csat(&psi, &m0(), 20.0).unwrap();
        assert_eq!(cs.intervals().len(), 1);
        assert!(cs.intervals()[0].hi().closed);
    }

    #[test]
    fn negation_is_complement() {
        let model = sis();
        let checker = Checker::new(&model);
        let psi = parse_formula("E{<0.3}[ infected ]").unwrap();
        let neg = parse_formula("!E{<0.3}[ infected ]").unwrap();
        let cs = checker.csat(&psi, &m0(), 20.0).unwrap();
        let csn = checker.csat(&neg, &m0(), 20.0).unwrap();
        for &t in &[0.0, 1.0, 2.0, 5.0, 19.9] {
            assert_ne!(cs.contains(t), csn.contains(t), "t = {t}");
        }
        // Measures add up to the window length.
        assert!((cs.measure() + csn.measure() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn conjunction_is_intersection() {
        let model = sis();
        let checker = Checker::new(&model);
        // 0.2 < i(t) < 0.4: a single interior window.
        let psi = parse_formula("E{>0.2}[ infected ] & E{<0.4}[ infected ]").unwrap();
        let cs = checker.csat(&psi, &m0(), 20.0).unwrap();
        assert_eq!(cs.intervals().len(), 1);
        let iv = cs.intervals()[0];
        assert!((iv.lo().value - crossing(0.2)).abs() < 1e-6);
        assert!((iv.hi().value - crossing(0.4)).abs() < 1e-6);
        assert!(!iv.lo().closed && !iv.hi().closed);
    }

    #[test]
    fn tautologies_and_contradictions() {
        let model = sis();
        let checker = Checker::new(&model);
        let cs = checker
            .csat(&parse_formula("tt").unwrap(), &m0(), 5.0)
            .unwrap();
        assert_eq!(cs.measure(), 5.0);
        let cs = checker
            .csat(&parse_formula("!tt").unwrap(), &m0(), 5.0)
            .unwrap();
        assert!(cs.is_empty());
        // p = 0 with `>=` is trivially satisfied everywhere.
        let cs = checker
            .csat(&parse_formula("E{>=0}[ infected ]").unwrap(), &m0(), 5.0)
            .unwrap();
        assert_eq!(cs.measure(), 5.0);
    }

    #[test]
    fn expect_steady_is_all_or_nothing() {
        let model = sis();
        let checker = Checker::new(&model);
        let cs = checker
            .csat(&parse_formula("ES{>0.45}[ infected ]").unwrap(), &m0(), 7.0)
            .unwrap();
        assert_eq!(cs.measure(), 7.0);
        let cs = checker
            .csat(&parse_formula("ES{>0.55}[ infected ]").unwrap(), &m0(), 7.0)
            .unwrap();
        assert!(cs.is_empty());
    }

    #[test]
    fn ep_satisfaction_window() {
        let model = sis();
        let checker = Checker::new(&model);
        // EP of the until grows along the trajectory; a `<` bound gives a
        // left window [0, τ).
        let psi = parse_formula("EP{<0.5}[ healthy U[0,1] infected ]").unwrap();
        let cs = checker.csat(&psi, &m0(), 15.0).unwrap();
        assert!(cs.contains(0.0));
        assert!(!cs.contains(15.0));
        assert_eq!(cs.intervals().len(), 1);
        // Verify the endpoint against the EP curve itself.
        let path = mfcsl_csl::parse_path_formula("healthy U[0,1] infected").unwrap();
        let curve = checker.ep_curve(&path, &m0(), 15.0).unwrap();
        let tau = cs.intervals()[0].hi().value;
        assert!((curve.expected_at(tau) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_theta_is_a_point_query() {
        let model = sis();
        let checker = Checker::new(&model);
        let psi = parse_formula("E{>=0.1}[ infected ]").unwrap();
        let cs = checker.csat(&psi, &m0(), 0.0).unwrap();
        assert!(cs.contains(0.0));
        assert_eq!(cs.measure(), 0.0);
        let psi = parse_formula("E{>0.1}[ infected ]").unwrap();
        let cs = checker.csat(&psi, &m0(), 0.0).unwrap();
        assert!(cs.is_empty());
    }

    #[test]
    fn nan_breakpoint_is_a_structured_error_not_a_panic() {
        let model = sis();
        let checker = Checker::new(&model);
        let value = |_t: f64| 0.5;
        // A NaN jump point must surface as InvalidArgument, never reach the
        // sort (where partial_cmp would have panicked).
        let err = checker
            .threshold_intervals(&value, &[f64::NAN], Comparison::Lt, 0.7, 5.0)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidArgument(_)), "{err:?}");
        let err = checker
            .threshold_intervals(&value, &[f64::INFINITY], Comparison::Lt, 0.7, 5.0)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidArgument(_)), "{err:?}");
        // Finite jump points still work.
        let cs = checker
            .threshold_intervals(&value, &[2.5], Comparison::Lt, 0.7, 5.0)
            .unwrap();
        assert_eq!(cs.measure(), 5.0);
    }

    #[test]
    fn invalid_theta_rejected() {
        let model = sis();
        let checker = Checker::new(&model);
        let psi = parse_formula("tt").unwrap();
        assert!(checker.csat(&psi, &m0(), -1.0).is_err());
        assert!(checker.csat(&psi, &m0(), f64::INFINITY).is_err());
    }
}
