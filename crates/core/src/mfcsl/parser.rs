//! A text syntax for MF-CSL formulas.
//!
//! ```text
//! mf       := or
//! or       := and ('|' and)*
//! and      := unary ('&' unary)*
//! unary    := '!' unary | primary
//! primary  := 'tt' | '(' mf ')'
//!           | 'E'  '{' cmp number '}' '[' csl-state ']'
//!           | 'ES' '{' cmp number '}' '[' csl-state ']'
//!           | 'EP' '{' cmp number '}' '[' csl-path  ']'
//! ```
//!
//! The bracketed contents are handed to the CSL parser of `mfcsl-csl`, so
//! the full CSL syntax (including nesting) is available inside the
//! expectation operators. Example from the paper:
//! `E{>0.8}[ P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ] ] & E{<0.1}[ active ]`.

use mfcsl_csl::{parse_path_formula, parse_state_formula, Comparison, CslError};

use crate::mfcsl::syntax::MfFormula;
use crate::CoreError;

/// Parses an MF-CSL formula.
///
/// # Errors
///
/// Returns [`CoreError::Parse`] on malformed input; errors from the inner
/// CSL parser are re-anchored to the enclosing bracket's position.
///
/// # Example
///
/// ```
/// use mfcsl_core::mfcsl::parse_formula;
///
/// let psi = parse_formula("EP{<0.3}[ not_infected U[0,1] infected ]")?;
/// assert_eq!(psi.time_horizon(), 1.0);
/// # Ok::<(), mfcsl_core::CoreError>(())
/// ```
pub fn parse_formula(input: &str) -> Result<MfFormula, CoreError> {
    let mut p = MfParser { input, pos: 0 };
    let psi = p.or_expr()?;
    p.skip_ws();
    if p.pos < p.input.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(psi)
}

struct MfParser<'a> {
    input: &'a str,
    pos: usize,
}

impl MfParser<'_> {
    fn error(&self, message: impl Into<String>) -> CoreError {
        CoreError::Parse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.as_bytes().get(self.pos).copied()
    }

    fn try_eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), CoreError> {
        if self.try_eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", c as char)))
        }
    }

    fn or_expr(&mut self) -> Result<MfFormula, CoreError> {
        let mut lhs = self.and_expr()?;
        while self.try_eat(b'|') {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<MfFormula, CoreError> {
        let mut lhs = self.unary()?;
        while self.try_eat(b'&') {
            let rhs = self.unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<MfFormula, CoreError> {
        if self.try_eat(b'!') {
            return Ok(self.unary()?.not());
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<MfFormula, CoreError> {
        match self.peek() {
            Some(b'(') => {
                self.eat(b'(')?;
                let inner = self.or_expr()?;
                self.eat(b')')?;
                Ok(inner)
            }
            Some(c) if c.is_ascii_alphabetic() => {
                let ident = self.ident()?;
                match ident.as_str() {
                    "tt" => Ok(MfFormula::True),
                    "ff" => Ok(MfFormula::True.not()),
                    "E" | "ES" | "EP" => {
                        let (cmp, p) = self.bound()?;
                        let body = self.bracketed_body()?;
                        self.operator(&ident, cmp, p, &body)
                    }
                    other => Err(self.error(format!(
                        "expected `tt`, `E`, `ES` or `EP`, found `{other}` (atomic \
                         propositions only occur inside E/ES/EP)"
                    ))),
                }
            }
            _ => Err(self.error("expected an MF-CSL formula")),
        }
    }

    fn ident(&mut self) -> Result<String, CoreError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected an identifier"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn bound(&mut self) -> Result<(Comparison, f64), CoreError> {
        self.eat(b'{')?;
        self.skip_ws();
        let bytes = self.input.as_bytes();
        let rest = &bytes[self.pos..];
        let (cmp, len) = match rest {
            [b'<', b'=', ..] => (Comparison::Le, 2),
            [b'>', b'=', ..] => (Comparison::Ge, 2),
            [b'<', ..] => (Comparison::Lt, 1),
            [b'>', ..] => (Comparison::Gt, 1),
            _ => return Err(self.error("expected a comparison (<=, <, >, >=)")),
        };
        self.pos += len;
        self.skip_ws();
        let start = self.pos;
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_digit()
                || bytes[self.pos] == b'.'
                || bytes[self.pos] == b'e'
                || bytes[self.pos] == b'E'
                || ((bytes[self.pos] == b'+' || bytes[self.pos] == b'-')
                    && self.pos > start
                    && (bytes[self.pos - 1] == b'e' || bytes[self.pos - 1] == b'E')))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected a number"));
        }
        let p: f64 = self.input[start..self.pos]
            .parse()
            .map_err(|e| self.error(format!("bad number: {e}")))?;
        self.eat(b'}')?;
        Ok((cmp, p))
    }

    /// Extracts the bracket-balanced body `[ … ]`, leaving the cursor after
    /// the closing bracket.
    fn bracketed_body(&mut self) -> Result<String, CoreError> {
        self.eat(b'[')?;
        let start = self.pos;
        let bytes = self.input.as_bytes();
        let mut depth = 1usize;
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        let body = self.input[start..self.pos].to_string();
                        self.pos += 1;
                        return Ok(body);
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(self.error("unbalanced `[`"))
    }

    fn operator(
        &self,
        kind: &str,
        cmp: Comparison,
        p: f64,
        body: &str,
    ) -> Result<MfFormula, CoreError> {
        let rebase = |e: CslError| match e {
            CslError::Parse { position, message } => CoreError::Parse {
                position: self.pos + position,
                message,
            },
            other => CoreError::Csl(other),
        };
        match kind {
            "E" => MfFormula::expect(cmp, p, parse_state_formula(body).map_err(rebase)?),
            "ES" => MfFormula::expect_steady(cmp, p, parse_state_formula(body).map_err(rebase)?),
            "EP" => MfFormula::expect_path(cmp, p, parse_path_formula(body).map_err(rebase)?),
            other => Err(CoreError::Parse {
                position: self.pos,
                message: format!("unknown expectation operator `{other}` (expected E, ES, or EP)"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_formulas() {
        // Example 2 of the paper.
        let psi = parse_formula("E{>0.8}[ infected ]").unwrap();
        assert!(matches!(psi, MfFormula::Expect { .. }));
        let psi = parse_formula("ES{>=0.1}[ infected ]").unwrap();
        assert!(matches!(psi, MfFormula::ExpectSteady { .. }));
        let psi = parse_formula("EP{<0.4}[ infected U[0,5] not_infected ]").unwrap();
        assert!(matches!(psi, MfFormula::ExpectPath { .. }));
        assert_eq!(psi.time_horizon(), 5.0);
    }

    #[test]
    fn parses_the_nested_example() {
        let psi = parse_formula(
            "E{>0.8}[ P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ] ] \
             & E{<0.1}[ active ]",
        )
        .unwrap();
        assert!(matches!(psi, MfFormula::And(_, _)));
        assert_eq!(psi.time_horizon(), 15.5);
    }

    #[test]
    fn boolean_structure_and_precedence() {
        let psi = parse_formula("tt | E{>0.5}[ a ] & !tt").unwrap();
        // `&` binds tighter than `|`.
        let e = MfFormula::expect(Comparison::Gt, 0.5, mfcsl_csl::StateFormula::ap("a")).unwrap();
        assert_eq!(psi, MfFormula::True.or(e.and(MfFormula::True.not())));
        let psi = parse_formula("(tt)").unwrap();
        assert_eq!(psi, MfFormula::True);
        assert_eq!(parse_formula("ff").unwrap(), MfFormula::True.not());
    }

    #[test]
    fn errors_are_positioned() {
        assert!(matches!(
            parse_formula("E{>0.5}[ a"),
            Err(CoreError::Parse { .. })
        ));
        assert!(matches!(
            parse_formula("Q{>0.5}[ a ]"),
            Err(CoreError::Parse { .. })
        ));
        assert!(matches!(
            parse_formula("E{0.5}[ a ]"),
            Err(CoreError::Parse { .. })
        ));
        assert!(matches!(
            parse_formula("tt tt"),
            Err(CoreError::Parse { .. })
        ));
        // Inner CSL error is surfaced.
        assert!(parse_formula("E{>0.5}[ U ]").is_err());
        // Bad bound surfaces as invalid argument.
        assert!(matches!(
            parse_formula("E{>1.5}[ a ]"),
            Err(CoreError::InvalidArgument(_))
        ));
    }

    #[test]
    fn display_parse_round_trip() {
        let texts = [
            "EP{<0.3}[ not_infected U[0,1] infected ]",
            "E{>0.8}[ P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ] ] & E{<0.1}[ active ]",
            "!ES{>=0.1}[ infected ] | tt",
        ];
        for text in texts {
            let psi = parse_formula(text).unwrap();
            let again = parse_formula(&psi.to_string()).unwrap();
            assert_eq!(psi, again, "round trip failed for `{text}`");
        }
    }

    #[test]
    fn nested_brackets_are_balanced() {
        // The body extractor must match nested `[ ... ]` from time bounds.
        let psi = parse_formula("EP{>0.1}[ a U[0,2] P{>0.5}[ b U[1,3] c ] ]").unwrap();
        assert_eq!(psi.time_horizon(), 5.0);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use proptest::prelude::*;

    proptest! {
        /// The MF-CSL parser never panics on arbitrary input.
        #[test]
        fn prop_parser_total(input in "\\PC{0,60}") {
            let _ = super::parse_formula(&input);
        }
    }
}
