//! The MF-CSL logic (Sec. III of the paper).
//!
//! MF-CSL reasons about the *overall* mean-field model in terms of the
//! behaviour of a random individual object:
//!
//! ```text
//! Ψ ::= tt | ¬Ψ | Ψ ∧ Ψ | E⋈p(Φ) | ES⋈p(Φ) | EP⋈p(φ)
//! ```
//!
//! where `Φ` / `φ` are CSL state / path formulas over the local model.
//! `E⋈p(Φ)` bounds the *fraction of objects currently satisfying `Φ`*;
//! `ES⋈p(Φ)` bounds that fraction in steady state; `EP⋈p(φ)` bounds the
//! probability of a random object to take a `φ`-path (Defs. 5–6).
//!
//! * [`syntax`] — the AST ([`MfFormula`]);
//! * [`parser`] — text syntax: `EP{<0.3}[ not_infected U[0,1] infected ]`;
//! * [`check`] — satisfaction of an occupancy vector (Sec. V-A) through
//!   [`Checker`], plus the expectation curves used by the benches;
//! * [`csat`] — the conditional satisfaction set `cSat(Ψ, m̄, θ)` (Eq. 20 /
//!   Table I) as an exact [`mfcsl_math::IntervalSet`];
//! * [`engine`] — the memoizing analysis engine ([`CheckSession`]):
//!   trajectories, satisfaction sets, probability curves, and stationary
//!   regimes computed once and shared across the formulas of a session.

pub mod check;
pub mod csat;
pub mod engine;
pub mod parser;
pub mod syntax;

pub use check::{Checker, ECurve, EpCurve, Refinement, Verdict};
pub use engine::{
    CheckSession, EngineStats, KernelAllocRecord, RegimeExport, SessionEntryExport, SolveKind,
    SolveRecord,
};
pub use parser::parse_formula;
pub use syntax::MfFormula;
