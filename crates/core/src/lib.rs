//! Mean-field models and the MF-CSL logic — the primary contribution of
//! *“A logic for model-checking mean-field models”* (DSN 2013).
//!
//! A mean-field model is specified once, as a [`LocalModel`] (Def. 1 of the
//! paper): `K` named, labeled states and transition rate functions that may
//! depend on the global *occupancy vector* `m̄` (the fraction of objects in
//! each state, a point on the probability simplex — [`Occupancy`]). From
//! it, everything else is derived:
//!
//! * [`meanfield`] — the overall model `𝓜ᴼ` (Def. 2): the occupancy ODE
//!   `dm̄/dt = m̄·Q(m̄)` (Eq. 1) solved into a dense
//!   [`meanfield::OccupancyTrajectory`], which doubles as the time-varying
//!   generator of a random individual object;
//! * [`fixedpoint`] — stationary occupancies `m̃·Q(m̃) = 0` (Eq. 2), found
//!   by damped Newton iteration and classified by the Jacobian spectrum;
//! * [`mfcsl`] — the MF-CSL logic (Defs. 5–6): syntax, a text parser, the
//!   satisfaction checker for a given occupancy vector (Sec. V-A), and the
//!   conditional satisfaction set `cSat(Ψ, m̄, θ)` (Eq. 20 / Table I) as an
//!   exact interval set;
//! * [`discrete`] — the discrete-time adaptation the paper sketches in
//!   Sec. II-B: DTMC local models, the occupancy recurrence, and
//!   step-bounded checking.
//!
//! # Example
//!
//! ```
//! use mfcsl_core::{LocalModel, Occupancy};
//! use mfcsl_core::mfcsl::{parse_formula, Checker};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-state SIS-like model: infection rate proportional to the
//! // infected fraction, recovery at a constant rate.
//! let model = LocalModel::builder()
//!     .state("susceptible", ["healthy"])
//!     .state("infected", ["infected"])
//!     .transition("susceptible", "infected", |m: &Occupancy| 2.0 * m[1])?
//!     .constant_transition("infected", "susceptible", 1.0)?
//!     .build()?;
//!
//! let m0 = Occupancy::new(vec![0.9, 0.1])?;
//! let psi = parse_formula("EP{<0.5}[ healthy U[0,1] infected ]")?;
//! let verdict = Checker::new(&model).check(&psi, &m0)?;
//! assert!(verdict.holds());
//! # Ok(())
//! # }
//! ```

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they classify NaN as invalid input instead of letting it
// through, which is exactly the intent of the validation sites.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod discrete;
pub mod error;
pub mod fixedpoint;
pub mod local;
pub mod meanfield;
pub mod mfcsl;
pub mod occupancy;

pub use error::CoreError;
pub use local::{LocalModel, LocalModelBuilder};
pub use occupancy::Occupancy;

// Fault injection is configured by downstream layers (the daemon's chaos
// hook, test suites) without depending on the ODE crate directly.
pub use mfcsl_ode::fault::{FaultMode, FaultPlan};
