//! Offline stub of `rand`, providing the small API surface this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over floating-point and integer ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — not the real
//! `StdRng` (ChaCha12), but a high-quality deterministic PRNG that is more
//! than adequate for test-data generation and Monte-Carlo baselines.

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator trait (stub of `rand::RngCore` + `Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A sample of a type with a canonical uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A biased coin flip.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding trait (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical "standard" uniform distribution.
pub trait Standard: Sized {
    /// Draws the standard sample from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (stub of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

/// Named generators (stub of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stub of `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn deterministic_and_uniformish() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            assert_eq!(a.next_u64(), b.next_u64());
            let mut mean = 0.0;
            for _ in 0..10_000 {
                let x = a.gen_range(0.0..1.0);
                assert!((0.0..1.0).contains(&x));
                mean += x;
            }
            mean /= 10_000.0;
            assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        }
    }
}
