//! Offline stub of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on data-structure types
//! for API completeness, but never actually serializes anything (report
//! binaries emit CSV by hand). The build container has no crates.io access,
//! so this stub provides the trait names and re-exports no-op derive macros
//! that expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
