//! Offline stub of `serde_derive`: the derive macros expand to nothing.
//!
//! The build container has no network access to crates.io, and nothing in
//! this workspace actually serializes data (report binaries write CSV by
//! hand), so the derives only need to parse — not to generate impls.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
