//! Offline stub of `criterion`.
//!
//! The build container has no crates.io access, so this crate provides the
//! minimal harness API the workspace benches compile against: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis it runs each benchmark
//! `sample_size` times and prints mean wall-time per iteration — enough to
//! eyeball relative performance; not a rigorous measurement.

use std::time::Instant;

/// Identifier combining a function name and an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u32,
    total_nanos: u128,
}

impl Bencher {
    /// Times `routine`, keeping its result alive via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take (stub: also the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u32;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let mut bencher = Bencher {
            iters: self.samples,
            total_nanos: 0,
        };
        f(&mut bencher);
        let per_iter = bencher.total_nanos as f64 / f64::from(self.samples.max(1));
        println!(
            "bench {}/{}: {:.3} ms/iter ({} iters)",
            self.name,
            label,
            per_iter / 1.0e6,
            self.samples
        );
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<LabelArg>,
        f: F,
    ) -> &mut Self {
        self.run(id.into().0, f);
        self
    }

    /// Registers a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<LabelArg>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into().0, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// String-or-`BenchmarkId` argument adapter for `bench_function`.
pub struct LabelArg(String);

impl From<&str> for LabelArg {
    fn from(s: &str) -> Self {
        LabelArg(s.to_string())
    }
}

impl From<String> for LabelArg {
    fn from(s: String) -> Self {
        LabelArg(s)
    }
}

impl From<BenchmarkId> for LabelArg {
    fn from(id: BenchmarkId) -> Self {
        LabelArg(id.name)
    }
}

/// Top-level benchmark harness (stub of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<LabelArg>,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Opaque-to-the-optimizer identity, keeping benchmarked values alive.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a runner (stub of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (stub of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
