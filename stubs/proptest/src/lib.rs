//! Offline stub of `proptest`.
//!
//! The build container has no crates.io access, so this crate re-implements
//! the slice of the proptest API the workspace uses: the [`Strategy`] trait
//! with `prop_map`/`boxed`, range/tuple/`Just`/`prop_oneof!`/collection
//! strategies, and the [`proptest!`] test macro with `prop_assert*`.
//!
//! Differences from real proptest, deliberately accepted for offline CI:
//! cases are generated from a fixed deterministic seed (per test name), no
//! shrinking is performed on failure, and no regression files are written
//! (`proptest-regressions/` directories are ignored).

use std::rc::Rc;

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test name, so each property gets its own
    /// deterministic case sequence.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty choice");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Failure of a single generated test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration (stub of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 32 keeps ODE-heavy properties
        // affordable in CI while still exploring the input space.
        ProptestConfig { cases: 32 }
    }
}

/// A generator of random values (stub of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` by resampling (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.sample(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1024 consecutive samples");
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!` backend).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds the choice; `options` must be nonempty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].sample(rng)
    }
}

/// String-pattern strategy. Real proptest treats a `&str` as a full regex;
/// the stub recognises only the `\PC{lo,hi}` shape ("printable chars,
/// bounded length") used by the workspace's parser fuzz tests, and falls
/// back to printable strings of length 0–40 for any other pattern.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let bounds = self
            .strip_suffix('}')
            .and_then(|s| s.rsplit_once('{'))
            .and_then(|(_, counts)| {
                let (lo, hi) = counts.split_once(',')?;
                Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
            });
        let (lo, hi): (usize, usize) = bounds.unwrap_or((0, 40));
        let n = lo + rng.below(hi - lo + 1);
        (0..n)
            .map(|_| {
                // Mostly printable ASCII, occasionally wider Unicode, so the
                // parsers see multi-byte input too.
                if rng.below(8) == 0 {
                    char::from_u32(0x00A0 + rng.below(0x2000) as u32).unwrap_or('§')
                } else {
                    (0x20u8 + rng.below(0x5F) as u8) as char
                }
            })
            .collect()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection strategies (stub of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted element counts for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s with elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (stub of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical fair-coin strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Test-runner types (stub of `proptest::test_runner`).
pub mod test_runner {
    pub use super::{ProptestConfig as Config, TestCaseError, TestRng};
}

/// The common imports (stub of `proptest::prelude`).
pub mod prelude {
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Skips the current case when an assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice over strategy alternatives producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn` runs `cases` deterministic random
/// samples of its `ident in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $crate::Strategy::boxed($strat);)*
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}
